//! # memsense
//!
//! Quantifying the performance impact of memory latency and bandwidth for big
//! data workloads — a full reproduction of Clapp et al., IISWC 2015.
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`model`] — the analytic performance model (Eqs. 1–5 of the paper):
//!   latency-limited CPI, bandwidth demand, queueing delay, the fixed-point
//!   loaded-latency solver, and the sensitivity/equivalence analyses.
//! * [`sim`] — the simulated "testbed": multicore with caches, a stream
//!   prefetcher, and a DDR-style memory controller, instrumented with
//!   performance counters.
//! * [`workloads`] — synthetic big data / enterprise / HPC workload
//!   generators matching the paper's twelve workloads.
//! * [`mlc`] — a Memory Latency Checker analogue for loaded-latency curves.
//! * [`stats`] — regression, clustering, and summary statistics.
//! * [`experiments`] — calibration, validation, classification, and
//!   reproduction of every table and figure.
//! * [`plan`] — fleet-scale capacity planner: design-space search over a
//!   hardware menu against per-class SLAs, cost-ranked with a Pareto
//!   frontier (cost vs worst-class slack).
//!
//! # Quickstart
//!
//! Predict how a workload class responds to a memory subsystem change:
//!
//! ```
//! use memsense::model::{
//!     queueing::QueueingCurve, solver::solve_cpi, system::SystemConfig,
//!     workload::WorkloadParams,
//! };
//!
//! // The paper's big data class (Tab. 6) on the paper's baseline platform:
//! // 8 cores, 4 channels of DDR3-1867 at ~70% efficiency, 75 ns unloaded.
//! let class = WorkloadParams::big_data_class();
//! let system = SystemConfig::paper_baseline();
//! let curve = QueueingCurve::composite_default();
//!
//! let solved = solve_cpi(&class, &system, &curve).unwrap();
//! assert!(solved.cpi_eff > class.cpi_cache);
//! ```

pub use memsense_experiments as experiments;
pub use memsense_mlc as mlc;
pub use memsense_model as model;
pub use memsense_plan as plan;
pub use memsense_sim as sim;
pub use memsense_stats as stats;
pub use memsense_workloads as workloads;
