//! `repro` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! repro all                 # everything (slow; use a release build)
//! repro fig1 ... fig11      # individual figures
//! repro tab2 ... tab7       # individual tables
//! repro hierarchy           # Sec. VII tiered-memory demo
//! repro ablation            # DESIGN.md ablation studies
//! repro --report all        # append run telemetry (table + JSON)
//! ```
//!
//! Each experiment prints an ASCII table and writes a CSV under
//! `target/repro/`.
//!
//! Stages run concurrently on the experiment executor (thread count from
//! `MEMSENSE_THREADS`; unset or `0` means all cores). Output is buffered
//! per stage and printed in deterministic target order, so stdout is
//! byte-identical to a serial run. `--report` additionally prints per-stage
//! wall-clock/job/solver telemetry and writes `run_report.json`.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::sync::OnceLock;
use std::time::Instant;

use memsense_experiments::calibrate::{calibrate_all, CalibratedWorkload, CalibrationBudget};
use memsense_experiments::executor::{self, RunReport};
use memsense_experiments::figures;
use memsense_experiments::render::{default_output_dir, Table};
use memsense_experiments::tables;
use memsense_experiments::timeseries::{class_series, summary_table, SeriesBudget};
use memsense_experiments::validate;
use memsense_experiments::{ablation, classify};
use memsense_model::queueing::QueueingCurve;
use memsense_model::solver::telemetry;
use memsense_model::system::SystemConfig;
use memsense_model::units::{GigaHertz, Nanoseconds};
use memsense_workloads::{Class, Workload};

/// Stage errors cross executor threads, so they must be `Send + Sync`.
type StageError = Box<dyn std::error::Error + Send + Sync>;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let want_report = args.iter().any(|a| a == "--report");
    args.retain(|a| a != "--report");
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!(
            "usage: repro [--report] <target>...\n  targets: all fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 \
             fig9 fig10 fig11 tab2 tab3 tab4 tab5 tab6 tab7 hierarchy ablation futuretech numa tornado cpistack report channels scorecard design fidelity colocation io plan\n  \
             --report: print per-stage run telemetry and write run_report.json\n  \
             MEMSENSE_THREADS=<n>: executor threads (1 = serial, 0/unset = all cores)"
        );
        return ExitCode::from(2);
    }
    let mut targets: BTreeSet<String> = args.iter().map(|s| s.to_lowercase()).collect();
    if targets.remove("all") {
        for t in [
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "tab2",
            "tab3",
            "tab4",
            "tab5",
            "tab6",
            "tab7",
            "hierarchy",
            "ablation",
            "futuretech",
            "numa",
            "tornado",
            "cpistack",
            "report",
            "channels",
            "scorecard",
            "design",
            "fidelity",
            "colocation",
            "io",
            "plan",
        ] {
            targets.insert(t.to_string());
        }
    }
    let order: Vec<String> = targets.into_iter().collect();

    let out = default_output_dir();
    let started = Instant::now();
    executor::drain_job_log();
    let solver_before = telemetry::snapshot();

    // Every stage is one executor job writing into its own stdout buffer;
    // buffers are printed in target order below, so output matches a
    // serial run byte for byte.
    let outcomes: Vec<Result<String, String>> = executor::par_map_full(
        order.clone(),
        |_, target| format!("{}{target}", executor::STAGE_LABEL_PREFIX),
        |target| {
            let mut buf = String::new();
            match run_target(&target, &out, &mut buf) {
                Ok(()) => Ok(buf),
                Err(e) => Err(e.to_string()),
            }
        },
    );

    let report = RunReport::from_run(
        executor::thread_count(),
        started.elapsed(),
        executor::drain_job_log(),
        &order,
        telemetry::snapshot().since(&solver_before),
    );

    let mut failed = false;
    for (target, outcome) in order.iter().zip(outcomes) {
        match outcome {
            Ok(buf) => print!("{buf}"),
            Err(e) => {
                eprintln!("error running {target}: {e}");
                failed = true;
                break;
            }
        }
    }

    if want_report {
        println!("{}", report.to_table().to_ascii());
        match write_report_json(&report, &out) {
            Ok(path) => println!("[wrote {path}]"),
            Err(e) => {
                eprintln!("error writing run report: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn write_report_json(report: &RunReport, out: &Path) -> Result<String, std::io::Error> {
    std::fs::create_dir_all(out)?;
    let path = out.join("run_report.json");
    std::fs::write(&path, report.to_json())?;
    Ok(path.display().to_string())
}

fn emit(buf: &mut String, table: &Table, out: &Path, name: &str) -> Result<(), StageError> {
    writeln!(buf, "{}", table.to_ascii())?;
    let path = table.write_csv(out, name)?;
    writeln!(buf, "[wrote {}]\n", path.display())?;
    Ok(())
}

fn calibrations() -> Result<&'static Vec<CalibratedWorkload>, StageError> {
    static CACHE: OnceLock<Result<Vec<CalibratedWorkload>, String>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            eprintln!("[calibrating all 12 workloads: frequency × memory sweeps …]");
            calibrate_all(&CalibrationBudget::default())
                .map_err(|e| format!("calibration failed: {e}"))
        })
        .as_ref()
        .map_err(|e| StageError::from(e.clone()))
}

fn model_inputs() -> (
    Vec<memsense_model::WorkloadParams>,
    SystemConfig,
    QueueingCurve,
) {
    (
        figures::paper_classes(),
        SystemConfig::paper_baseline(),
        QueueingCurve::composite_default(),
    )
}

fn run_target(target: &str, out: &Path, buf: &mut String) -> Result<(), StageError> {
    match target {
        "fig1" => emit(buf, &figures::fig1_table(8), out, "fig1")?,
        "fig2" | "fig4" | "fig5" => {
            let (class, name) = match target {
                "fig2" => (Class::BigData, "fig2"),
                "fig4" => (Class::Enterprise, "fig4"),
                _ => (Class::Hpc, "fig5"),
            };
            let series = class_series(class, &SeriesBudget::default())?;
            // Terminal view of the figure: CPI over time per workload.
            let plot_series: Vec<memsense_experiments::plot::Series> = series
                .iter()
                .map(|s| {
                    memsense_experiments::plot::Series::new(
                        s.workload.name(),
                        s.samples
                            .iter()
                            .map(|p| (p.time_s * 1e3, p.measurement.cpi_eff))
                            .collect(),
                    )
                })
                .collect();
            writeln!(
                buf,
                "{}",
                memsense_experiments::plot::ascii_plot(
                    &format!("{name} (shape): effective CPI over time"),
                    "simulated time (ms)",
                    "CPI",
                    &plot_series,
                    64,
                    14,
                )
            )?;
            emit(
                buf,
                &summary_table(&format!("{name}: characterization summary"), &series),
                out,
                name,
            )?;
            for s in &series {
                let slug = s.workload.name().to_lowercase().replace(' ', "_");
                s.to_table().write_csv(out, &format!("{name}_{slug}"))?;
            }
        }
        "fig3" => emit(buf, &tables::fig3(calibrations()?), out, "fig3")?,
        "fig6" => emit(buf, &classify::fig6_table(calibrations()?)?, out, "fig6")?,
        "fig7" => {
            let fig = figures::fig7()?;
            for sweep in &fig.sweeps {
                writeln!(
                    buf,
                    "{}: unloaded {:.1} ns, max stable {:.1} GB/s ({:.0}% efficiency)",
                    sweep.label,
                    sweep.unloaded_latency_ns,
                    sweep.max_stable_gbps,
                    sweep.efficiency() * 100.0
                )?;
            }
            emit(buf, &figures::fig7_table(&fig), out, "fig7")?;
        }
        "fig8" => {
            let (classes, sys, curve) = model_inputs();
            let series: Vec<memsense_experiments::plot::Series> = classes
                .iter()
                .map(|class| {
                    let sweep = memsense_model::sensitivity::bandwidth_sweep(
                        class,
                        &sys,
                        &curve,
                        &memsense_model::sensitivity::default_bandwidth_deltas(),
                    )?;
                    Ok(memsense_experiments::plot::Series::new(
                        class.name.clone(),
                        sweep
                            .iter()
                            .map(|p| (p.bandwidth_per_core, (p.cpi_ratio - 1.0) * 100.0))
                            .collect(),
                    ))
                })
                .collect::<Result<_, memsense_experiments::ExperimentError>>()?;
            writeln!(
                buf,
                "{}",
                memsense_experiments::plot::ascii_plot(
                    "Fig. 8 (shape): CPI increase vs available bandwidth per core",
                    "GB/s per core",
                    "dCPI %",
                    &series,
                    64,
                    16,
                )
            )?;
            emit(
                buf,
                &figures::fig8_table(&classes, &sys, &curve)?,
                out,
                "fig8",
            )?;
        }
        "fig9" => {
            let (classes, sys, curve) = model_inputs();
            emit(
                buf,
                &figures::fig9_table(&classes, &sys, &curve)?,
                out,
                "fig9",
            )?;
        }
        "fig10" => {
            let (classes, sys, curve) = model_inputs();
            let series: Vec<memsense_experiments::plot::Series> = classes
                .iter()
                .map(|class| {
                    let sweep = memsense_model::sensitivity::latency_sweep(
                        class,
                        &sys,
                        &curve,
                        &memsense_model::sensitivity::default_latency_steps(),
                    )?;
                    Ok(memsense_experiments::plot::Series::new(
                        class.name.clone(),
                        sweep
                            .iter()
                            .map(|p| (p.unloaded_latency_ns, (p.cpi_ratio - 1.0) * 100.0))
                            .collect(),
                    ))
                })
                .collect::<Result<_, memsense_experiments::ExperimentError>>()?;
            writeln!(
                buf,
                "{}",
                memsense_experiments::plot::ascii_plot(
                    "Fig. 10 (shape): CPI increase vs compulsory latency",
                    "compulsory latency ns",
                    "dCPI %",
                    &series,
                    64,
                    16,
                )
            )?;
            emit(
                buf,
                &figures::fig10_table(&classes, &sys, &curve)?,
                out,
                "fig10",
            )?;
        }
        "fig11" => {
            let (classes, sys, curve) = model_inputs();
            emit(
                buf,
                &figures::fig11_table(&classes, &sys, &curve)?,
                out,
                "fig11",
            )?;
        }
        "tab2" => emit(buf, &tables::tab2(calibrations()?), out, "tab2")?,
        "tab3" => {
            let cal = calibrations()?
                .iter()
                .find(|c| c.workload == Workload::StructuredData)
                .ok_or("structured data missing from calibration set")?
                .clone();
            let v = validate::validate_calibration(cal);
            emit(buf, &v.to_table(), out, "tab3")?;
        }
        "tab4" => emit(buf, &tables::tab4(calibrations()?), out, "tab4")?,
        "tab5" => emit(buf, &tables::tab5(calibrations()?), out, "tab5")?,
        "tab6" => emit(buf, &classify::tab6_table(calibrations()?)?, out, "tab6")?,
        "tab7" => {
            let (classes, sys, curve) = model_inputs();
            emit(
                buf,
                &figures::tab7_table(&classes, &sys, &curve)?,
                out,
                "tab7",
            )?;
        }
        "plan" => {
            // The fleet-scale capacity planner over the built-in example
            // mix; candidate evaluations fan out through the executor and
            // attribute to this stage via the `plan/` job-label prefix.
            use memsense_plan::spec::PlanSpec;
            use memsense_plan::{planner, report};
            let plan = planner::plan(&PlanSpec::example())?;
            writeln!(
                buf,
                "plan: {:.2} Mreq/s over {} candidates ({} pruned), mode: {}",
                plan.total_mreq_per_s,
                plan.candidates.len(),
                plan.pruned.len(),
                if plan.colocate {
                    "colocated"
                } else {
                    "dedicated"
                },
            )?;
            for p in &plan.pruned {
                writeln!(buf, "pruned: {} (dominated by {})", p.name, p.dominated_by)?;
            }
            match &plan.recommendation {
                Some(name) => writeln!(buf, "recommendation: {name}")?,
                None => writeln!(buf, "recommendation: none (no candidate meets every SLA)")?,
            }
            writeln!(buf)?;
            emit(
                buf,
                &report::candidates_table(&plan),
                out,
                "plan_candidates",
            )?;
            emit(buf, &report::frontier_table(&plan), out, "plan_frontier")?;
            std::fs::create_dir_all(out)?;
            let path = out.join("plan.json");
            std::fs::write(&path, format!("{}\n", report::plan_json(&plan).canonical()))?;
            writeln!(buf, "[wrote {}]\n", path.display())?;
        }
        "io" => {
            emit(
                buf,
                &memsense_experiments::io_pressure::io_pressure_table(8, 120_000, 200_000.0)?,
                out,
                "io_pressure",
            )?;
        }
        "colocation" => {
            use memsense_model::colocation::{solve_colocated, Tenant};
            let (_, sys, curve) = model_inputs();
            let classes = memsense_model::WorkloadParams::all_classes();
            let mut t = Table::new(
                "Colocation: interference when classes share the baseline's channels (8+8 threads)",
                &[
                    "tenant_a",
                    "tenant_b",
                    "cpi_a",
                    "interference_a",
                    "cpi_b",
                    "interference_b",
                    "util",
                ],
            );
            // Every tenant pairing solves independently; run the pair grid
            // on the executor in row-major order.
            let pairs: Vec<(
                memsense_model::WorkloadParams,
                memsense_model::WorkloadParams,
            )> = classes
                .iter()
                .flat_map(|a| classes.iter().map(move |b| (a.clone(), b.clone())))
                .collect();
            let rows = executor::par_map_full(
                pairs,
                |_, (a, b)| format!("colocation/{} + {}", a.name, b.name),
                |(a, b)| -> Result<Vec<String>, memsense_experiments::ExperimentError> {
                    let solved = solve_colocated(
                        &[
                            Tenant {
                                workload: a.clone(),
                                threads: 8,
                            },
                            Tenant {
                                workload: b.clone(),
                                threads: 8,
                            },
                        ],
                        &sys,
                        &curve,
                    )?;
                    Ok(vec![
                        a.name.clone(),
                        b.name.clone(),
                        format!("{:.3}", solved.tenants[0].cpi_eff),
                        format!("{:.3}", solved.tenants[0].interference),
                        format!("{:.3}", solved.tenants[1].cpi_eff),
                        format!("{:.3}", solved.tenants[1].interference),
                        format!("{:.0}%", solved.utilization * 100.0),
                    ])
                },
            )
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
            for row in rows {
                t.row(row);
            }
            emit(buf, &t, out, "colocation")?;
        }
        "design" => {
            use memsense_model::design::{
                best_per_cost, default_grid, evaluate, pareto_frontier, Mix,
            };
            let (_, sys, curve) = model_inputs();
            let mut t = Table::new(
                "Design-space Pareto frontier (balanced class mix)",
                &["design", "cost", "rel_throughput", "perf_per_cost"],
            );
            let ev = evaluate(&default_grid(), &Mix::balanced(), &sys, &curve)?;
            for e in pareto_frontier(&ev) {
                t.row(vec![
                    e.point.label(),
                    format!("{:.2}", e.point.cost),
                    format!("{:.3}", e.throughput),
                    format!("{:.3}", e.efficiency),
                ]);
            }
            emit(buf, &t, out, "design_pareto")?;
            let mut picks = Table::new(
                "Best perf-per-cost design by dominant class (Sec. VI.D guidance)",
                &[
                    "dominant_class",
                    "design",
                    "rel_throughput",
                    "perf_per_cost",
                ],
            );
            // One grid evaluation per dominant class, in class order.
            let pick_rows = executor::par_map_full(
                memsense_model::WorkloadParams::all_classes(),
                |_, class| format!("design/{}", class.name),
                |class| -> Result<Vec<String>, memsense_experiments::ExperimentError> {
                    let name = class.name.clone();
                    let pick = best_per_cost(&Mix::dominated_by(class), &sys, &curve)?;
                    Ok(vec![
                        name,
                        pick.point.label(),
                        format!("{:.3}", pick.throughput),
                        format!("{:.3}", pick.efficiency),
                    ])
                },
            )
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
            for row in pick_rows {
                picks.row(row);
            }
            emit(buf, &picks, out, "design_picks")?;
        }
        "fidelity" => {
            // Ablation: how much do the opt-in fidelity features change the
            // measured queueing curve and a workload's CPI?
            use memsense_mlc::{loaded_latency_sweep, MlcConfig};
            use memsense_sim::config::{MemoryConfig, RefreshConfig, RowPolicy};
            let variants: Vec<(&str, MemoryConfig)> = vec![
                (
                    "baseline (closed page, no refresh)",
                    MemoryConfig::ddr3_1867(),
                ),
                ("open page", {
                    let mut c = MemoryConfig::ddr3_1867();
                    c.row_policy = RowPolicy::open_page_ddr3();
                    c
                }),
                ("refresh", {
                    let mut c = MemoryConfig::ddr3_1867();
                    c.refresh = Some(RefreshConfig::ddr3_4gb());
                    c
                }),
            ];
            let mut t = Table::new(
                "Fidelity ablation: MLC sweep under optional memory features",
                &["variant", "unloaded_ns", "max_stable_gbps", "efficiency"],
            );
            // Each variant simulates its own MLC sweep; run them on the
            // executor in slate order (infallible jobs).
            let rows = executor::par_map_full(
                variants,
                |_, (label, _)| format!("fidelity/{label}"),
                |(label, memory)| -> Result<Vec<String>, core::convert::Infallible> {
                    let sweep = loaded_latency_sweep(&MlcConfig {
                        memory,
                        ..MlcConfig::default()
                    });
                    Ok(vec![
                        label.to_string(),
                        format!("{:.1}", sweep.unloaded_latency_ns),
                        format!("{:.1}", sweep.max_stable_gbps),
                        format!("{:.0}%", sweep.efficiency() * 100.0),
                    ])
                },
            );
            for row in rows {
                let Ok(row) = row;
                t.row(row);
            }
            emit(buf, &t, out, "fidelity")?;
        }
        "scorecard" => {
            let sc = memsense_experiments::scorecard::scorecard(calibrations()?)?;
            emit(buf, &sc.to_table(), out, "scorecard")?;
            if !sc.all_pass() {
                return Err("scorecard has failing checks".into());
            }
        }
        "channels" => {
            let (classes, sys, curve) = model_inputs();
            emit(
                buf,
                &memsense_experiments::sweeps::channel_sweep_table(&classes, &sys, &curve)?,
                out,
                "channels",
            )?;
            emit(
                buf,
                &memsense_experiments::sweeps::speed_sweep_table(&classes, &sys, &curve)?,
                out,
                "speeds",
            )?;
            emit(
                buf,
                &memsense_experiments::sweeps::frequency_sweep_table(&classes, &sys, &curve)?,
                out,
                "frequencies",
            )?;
        }
        "cpistack" => {
            let (classes, sys, curve) = model_inputs();
            let mut t = Table::new(
                "CPI stacks on the paper baseline",
                &[
                    "class",
                    "core",
                    "compulsory",
                    "queueing",
                    "bw_wall",
                    "total",
                    "mem_frac",
                ],
            );
            for class in &classes {
                let solved = memsense_model::solver::solve_cpi(class, &sys, &curve)?;
                let stack = solved.cpi_stack(class, &sys);
                t.row(vec![
                    class.name.clone(),
                    format!("{:.3}", stack.cpi_cache),
                    format!("{:.3}", stack.compulsory_stall),
                    format!("{:.3}", stack.queueing_stall),
                    format!("{:.3}", stack.bandwidth_residual),
                    format!("{:.3}", stack.total()),
                    format!("{:.0}%", stack.memory_fraction() * 100.0),
                ]);
            }
            emit(buf, &t, out, "cpistack")?;
        }
        "tornado" => {
            let (classes, sys, curve) = model_inputs();
            emit(
                buf,
                &memsense_experiments::tornado::tornado_table(&classes, &sys, &curve, 0.2)?,
                out,
                "tornado",
            )?;
        }
        "futuretech" => {
            let (classes, _, curve) = model_inputs();
            emit(
                buf,
                &figures::future_tech_table(&classes, &curve)?,
                out,
                "futuretech",
            )?;
        }
        "numa" => {
            let (classes, _, curve) = model_inputs();
            emit(buf, &figures::numa_table(&classes, &curve)?, out, "numa")?;
        }
        "hierarchy" => {
            let (classes, _, _) = model_inputs();
            let t = figures::hierarchy_table(
                &classes,
                Nanoseconds(50.0),
                Nanoseconds(300.0),
                Nanoseconds(75.0),
                GigaHertz(2.7),
            )?;
            emit(buf, &t, out, "hierarchy")?;
        }
        "ablation" => {
            emit(
                buf,
                &ablation::constant_bf_table(calibrations()?),
                out,
                "ablation_bf",
            )?;
            let (classes, sys, _) = model_inputs();
            emit(
                buf,
                &ablation::queueing_curve_table(&classes, &sys)?,
                out,
                "ablation_queueing",
            )?;
            let mut t = Table::new(
                "Ablation: prefetcher effect on blocking factor",
                &["workload", "bf_on", "bf_off"],
            );
            // The two prefetch ablations calibrate independent machines.
            let rows = executor::par_map_full(
                vec![Workload::Bwaves, Workload::StructuredData],
                |_, w| format!("ablation/prefetch {}", w.name()),
                |w| -> Result<Vec<String>, memsense_experiments::ExperimentError> {
                    let ab = ablation::prefetch_ablation(w, &CalibrationBudget::default())?;
                    Ok(vec![
                        w.name().to_string(),
                        format!("{:.3}", ab.bf_prefetch_on),
                        format!("{:.3}", ab.bf_prefetch_off),
                    ])
                },
            )
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
            for row in rows {
                t.row(row);
            }
            emit(buf, &t, out, "ablation_prefetch")?;
        }
        "report" => {
            // A single markdown report combining every reproduced artifact.
            let mut md = String::from(
                "# memsense reproduction report\n\nGenerated by `repro report`. \
                 All values measured on the simulated testbed / analytic model.\n\n",
            );
            let push = |md: &mut String, t: &Table| {
                md.push_str("```text\n");
                md.push_str(&t.to_ascii());
                md.push_str("```\n\n");
            };
            push(&mut md, &figures::fig1_table(8));
            let (classes, sys, curve) = model_inputs();
            push(&mut md, &tables::tab2(calibrations()?));
            let cal = calibrations()?
                .iter()
                .find(|c| c.workload == Workload::StructuredData)
                .ok_or("structured data missing from calibration set")?
                .clone();
            push(&mut md, &validate::validate_calibration(cal).to_table());
            push(&mut md, &tables::tab4(calibrations()?));
            push(&mut md, &tables::tab5(calibrations()?));
            push(&mut md, &classify::fig6_table(calibrations()?)?);
            push(&mut md, &classify::tab6_table(calibrations()?)?);
            let fig = figures::fig7()?;
            push(&mut md, &figures::fig7_table(&fig));
            push(&mut md, &figures::fig8_table(&classes, &sys, &curve)?);
            push(&mut md, &figures::fig9_table(&classes, &sys, &curve)?);
            push(&mut md, &figures::fig10_table(&classes, &sys, &curve)?);
            push(&mut md, &figures::fig11_table(&classes, &sys, &curve)?);
            push(&mut md, &figures::tab7_table(&classes, &sys, &curve)?);
            push(&mut md, &figures::future_tech_table(&classes, &curve)?);
            push(&mut md, &figures::numa_table(&classes, &curve)?);
            push(
                &mut md,
                &memsense_experiments::tornado::tornado_table(&classes, &sys, &curve, 0.2)?,
            );
            std::fs::create_dir_all(out)?;
            let path = out.join("REPORT.md");
            std::fs::write(&path, md)?;
            writeln!(buf, "[wrote {}]", path.display())?;
        }
        other => return Err(format!("unknown target: {other}").into()),
    }
    Ok(())
}
