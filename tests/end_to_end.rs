//! End-to-end pipeline test: simulate → calibrate → classify → model,
//! crossing every crate boundary the way the `repro` binary does.

use memsense::experiments::calibrate::{calibrate, calibrate_all, CalibrationBudget};
use memsense::experiments::classify::{class_means, clustering_agreement};
use memsense::experiments::validate::validate_calibration;
use memsense::mlc::{composite_queueing_curve, loaded_latency_sweep, MlcConfig};
use memsense::model::solver::{solve_cpi, Regime};
use memsense::model::system::SystemConfig;
use memsense::workloads::{Class, Workload};
use std::sync::OnceLock;

fn cals() -> &'static Vec<memsense::experiments::calibrate::CalibratedWorkload> {
    static CACHE: OnceLock<Vec<memsense::experiments::calibrate::CalibratedWorkload>> =
        OnceLock::new();
    CACHE.get_or_init(|| calibrate_all(&CalibrationBudget::quick()).unwrap())
}

#[test]
fn full_pipeline_reproduces_class_structure() {
    // 1. Calibrate all fourteen workloads on the simulated testbed.
    let calibrations = cals();
    assert_eq!(calibrations.len(), 14);

    // 2. Class means land in the Tab. 6 neighbourhood and in the right order.
    let means = class_means(calibrations).unwrap();
    let get = |c: Class| means.iter().find(|m| m.class == c).unwrap();
    let ent = get(Class::Enterprise);
    let big = get(Class::BigData);
    let hpc = get(Class::Hpc);
    assert!(ent.bf > big.bf && big.bf > hpc.bf, "BF continuum");
    assert!(hpc.mpki > 3.0 * big.mpki, "HPC bandwidth appetite");

    // 3. Unsupervised clustering recovers the segments.
    assert!(clustering_agreement(calibrations).unwrap() > 0.7);

    // 4. Feed the *measured* class means into the analytic model on the
    //    paper baseline: regimes must match Sec. VI.
    let sys = SystemConfig::paper_baseline();
    let curve = {
        // Calibrate queueing from the simulated MLC, exactly as the paper
        // calibrates from the real MLC.
        let sweeps = vec![
            loaded_latency_sweep(&MlcConfig::default()),
            loaded_latency_sweep(&MlcConfig {
                read_fraction: 0.67,
                ..MlcConfig::default()
            }),
        ];
        composite_queueing_curve(&sweeps).unwrap()
    };
    let ent_solved = solve_cpi(&ent.to_params().unwrap(), &sys, &curve).unwrap();
    let hpc_solved = solve_cpi(&hpc.to_params().unwrap(), &sys, &curve).unwrap();
    assert_eq!(ent_solved.regime, Regime::LatencyLimited);
    assert_eq!(hpc_solved.regime, Regime::BandwidthBound);
}

#[test]
fn validation_errors_small_for_big_data() {
    // Tab. 3 discipline applied to every big data workload: the fitted
    // (CPI_cache, BF) pair predicts each sweep point's CPI from counters.
    for c in cals()
        .iter()
        .filter(|c| c.workload.class() == Class::BigData && c.workload != Workload::Proximity)
    {
        let v = validate_calibration(c.clone());
        assert!(
            v.max_abs_error() < 0.08,
            "{}: max error {}",
            c.workload,
            v.max_abs_error()
        );
    }
}

#[test]
fn simulator_and_model_agree_on_measured_operating_point() {
    // Cross-validation: take OLTP's calibrated parameters, ask the analytic
    // model for CPI on the characterization platform, and compare with the
    // CPI the simulator actually measured at the matching sweep point.
    let budget = CalibrationBudget::quick();
    let cal = calibrate(Workload::Oltp, &budget).unwrap();
    let params = cal.to_params().unwrap();

    // The measured 2.7 GHz / DDR3-1867 sample.
    let sample = cal
        .samples
        .iter()
        .find(|s| (s.core_ghz - 2.7).abs() < 1e-9 && s.memory_mts > 1500.0)
        .unwrap();

    // Model side: 4-thread machine, DDR3-1867 at the simulator's measured
    // efficiency, unloaded latency from the memory config.
    let mlc = loaded_latency_sweep(&MlcConfig::default());
    let sys = SystemConfig::new(
        1,
        budget.threads / 2, // 4 threads = 2 "cores" with 2 threads each
        2,
        memsense::model::units::GigaHertz(2.7),
        4,
        1866.7,
        mlc.efficiency(),
        memsense::model::units::Nanoseconds(mlc.unloaded_latency_ns),
    )
    .unwrap();
    let curve = mlc.to_queueing_curve().unwrap();
    let solved = solve_cpi(&params, &sys, &curve).unwrap();

    let measured = sample.measurement.cpi_eff;
    let predicted = solved.cpi_eff;
    assert!(
        (predicted / measured - 1.0).abs() < 0.15,
        "analytic model {predicted} vs simulator {measured}"
    );
}

#[test]
fn numa_model_agrees_with_numa_simulation() {
    // The Sec. VIII multi-socket extension, cross-validated: run JVM on a
    // simulated dual-socket machine with local vs interleaved placement and
    // compare the measured CPI penalty against the analytic NUMA model fed
    // the calibrated parameters.
    use memsense::model::numa::{numa_penalty, NumaConfig};
    use memsense::model::queueing::QueueingCurve;
    use memsense::model::units::Nanoseconds;
    use memsense::sim::config::NumaSimConfig;
    use memsense::sim::{Machine, SimConfig};

    let threads = 4;
    let measure = |numa: NumaSimConfig| {
        let cfg = SimConfig::xeon_like(threads).with_numa(numa);
        let mut m = Machine::new(cfg, Workload::Jvm.streams(threads, 0x9e9e)).unwrap();
        m.run_ops(90_000);
        m.measure_for_ns(120_000.0).unwrap().cpi_eff
    };
    let local = measure(NumaSimConfig::dual_socket(false));
    let interleaved = measure(NumaSimConfig::dual_socket(true));
    let sim_penalty = interleaved / local;

    // Analytic side: calibrated JVM parameters, 50% remote at a 60 ns
    // round-trip hop on a two-socket platform.
    let cal = calibrate(Workload::Jvm, &CalibrationBudget::quick()).unwrap();
    let params = cal.to_params().unwrap();
    let sys = memsense::model::system::SystemConfig::characterization_platform();
    let curve = QueueingCurve::composite_default();
    let model_penalty = numa_penalty(
        &params,
        &sys,
        &curve,
        &NumaConfig::new(0.5, Nanoseconds(60.0)).unwrap(),
    )
    .unwrap();

    assert!(sim_penalty > 1.01, "simulated NUMA penalty {sim_penalty}");
    assert!(
        (sim_penalty - model_penalty).abs() < 0.08,
        "simulated {sim_penalty} vs modeled {model_penalty}"
    );
}

#[test]
fn phase_weighted_model_predicts_multiphase_job() {
    // Sec. IV.D end to end: characterize each phase of a two-phase
    // Spark-like job separately, combine by instruction weight, and compare
    // against the CPI measured when the *whole job* runs on the testbed.
    use memsense::model::phases::{solve_phased, PhasedWorkload};
    use memsense::model::queueing::QueueingCurve;
    use memsense::model::units::{GigaHertz, Nanoseconds};
    use memsense::model::workload::{Segment, WorkloadParams};
    use memsense::sim::{Machine, SimConfig};
    use memsense::workloads::mix::MixWorkload;
    use memsense::workloads::multiphase::spark_job;

    let threads = 4u32;
    let measure = |streams: Vec<memsense::sim::trace::BoxedStream>| {
        let cfg = SimConfig::xeon_like(threads);
        let mut m = Machine::new(cfg, streams).unwrap();
        m.run_ops(150_000);
        m.measure_for_ns(200_000.0).unwrap()
    };

    // Whole job.
    let whole = measure(
        (0..threads)
            .map(|t| Box::new(spark_job(42 + t as u64)) as memsense::sim::trace::BoxedStream)
            .collect(),
    );

    // Per-phase characterization at the same operating point.
    let job = spark_job(42);
    let weights = job.weights();
    let phase_measurements: Vec<_> = job
        .phase_specs()
        .into_iter()
        .map(|spec| {
            measure(
                (0..threads)
                    .map(|t| {
                        Box::new(MixWorkload::new(spec.clone(), 42 + t as u64))
                            as memsense::sim::trace::BoxedStream
                    })
                    .collect(),
            )
        })
        .collect();

    // The instruction-weighted combination of the per-phase CPIs must
    // reproduce the whole-job CPI (the paper's Sec. IV.D claim).
    let total_w: f64 = weights.iter().sum();
    let predicted: f64 = phase_measurements
        .iter()
        .zip(&weights)
        .map(|(m, w)| m.cpi_eff * w / total_w)
        .sum();
    assert!(
        (predicted / whole.cpi_eff - 1.0).abs() < 0.12,
        "phase-weighted {predicted} vs whole-job {}",
        whole.cpi_eff
    );

    // And the analytic phased solver agrees with its collapsed
    // approximation within 10% for a synthetic two-phase class.
    let shuffle = WorkloadParams::new("shuffle", Segment::BigData, 0.85, 0.30, 9.0, 0.8).unwrap();
    let map = WorkloadParams::new("map", Segment::BigData, 1.0, 0.10, 1.5, 0.3).unwrap();
    let phased = PhasedWorkload::new("job", vec![(shuffle, 1.0), (map, 3.0)]).unwrap();
    let sys = memsense::model::system::SystemConfig::new(
        1,
        8,
        2,
        GigaHertz(2.7),
        4,
        1866.7,
        0.7,
        Nanoseconds(75.0),
    )
    .unwrap();
    let solved = solve_phased(&phased, &sys, &QueueingCurve::composite_default()).unwrap();
    assert!(solved.collapse_error().abs() < 0.10);
}

#[test]
fn colocation_model_agrees_with_mixed_simulation() {
    // Noisy-neighbour cross-validation: run 4 OLTP threads alone, then
    // alongside 4 bwaves threads, on the simulated testbed; compare the
    // measured interference with the shared-queueing colocation model fed
    // the calibrated parameters.
    use memsense::model::colocation::{solve_colocated, Tenant};
    use memsense::model::queueing::QueueingCurve;
    use memsense::sim::{Machine, SimConfig};

    let oltp_threads = 4u32;
    let budget = CalibrationBudget::quick();

    // Simulator: OLTP alone (4 threads on a 4-thread machine).
    let alone = {
        let cfg = SimConfig::xeon_like(oltp_threads);
        let mut m = Machine::new(cfg, Workload::Oltp.streams(oltp_threads, 0xc0)).unwrap();
        m.run_ops(90_000);
        // Per-thread CPI of the OLTP threads only.
        m.measure_for_ns(150_000.0).unwrap().cpi_eff
    };

    // Simulator: OLTP + bwaves co-located on an 8-thread machine.
    let mixed = {
        let cfg = SimConfig::xeon_like(8);
        let mut streams = Workload::Oltp.streams(oltp_threads, 0xc0);
        streams.extend(Workload::Bwaves.streams(4, 0xb1));
        let mut m = Machine::new(cfg, streams).unwrap();
        m.run_ops(90_000);
        let before: Vec<_> = m.core_counters();
        m.run_until_ns(m.now_ns() + 150_000.0);
        let after: Vec<_> = m.core_counters();
        // OLTP threads are indices 0..4.
        let mut cpi_sum = 0.0;
        for i in 0..oltp_threads as usize {
            let d = after[i].delta(&before[i]);
            cpi_sum += d.busy_ns * m.config().core_clock_ghz / d.instructions as f64;
        }
        cpi_sum / oltp_threads as f64
    };
    let sim_interference = mixed / alone;

    // Model side with calibrated parameters.
    let oltp = calibrate(Workload::Oltp, &budget)
        .unwrap()
        .to_params()
        .unwrap();
    let bwaves = calibrate(Workload::Bwaves, &budget)
        .unwrap()
        .to_params()
        .unwrap();
    let sys = memsense::model::system::SystemConfig::new(
        1,
        4,
        2,
        memsense::model::units::GigaHertz(2.7),
        4,
        1866.7,
        0.63, // simulator-measured efficiency
        memsense::model::units::Nanoseconds(74.5),
    )
    .unwrap();
    let curve = QueueingCurve::composite_default();
    let solved = solve_colocated(
        &[
            Tenant {
                workload: oltp,
                threads: oltp_threads,
            },
            Tenant {
                workload: bwaves,
                threads: 4,
            },
        ],
        &sys,
        &curve,
    )
    .unwrap();
    let model_interference = solved.tenants[0].interference;

    assert!(
        sim_interference > 1.02,
        "bwaves neighbours must slow OLTP: {sim_interference}"
    );
    assert!(
        model_interference > 1.02,
        "model predicts interference in the right direction: {model_interference}"
    );
    // Documented limitation (EXPERIMENTS.md): an average-utilization
    // queueing curve underestimates interference from *bursty* neighbours —
    // the simulator's prefetch bursts queue worse than smooth MLC traffic.
    // The model must be directionally right but is expected to undershoot.
    assert!(
        model_interference < sim_interference + 0.05,
        "model should not overshoot: {model_interference} vs {sim_interference}"
    );
    assert!(
        sim_interference / model_interference < 2.0,
        "within 2x of the simulated penalty: {sim_interference} vs {model_interference}"
    );
}

#[test]
fn prefetch_ablation_consistent_with_paper_section_7() {
    // "an improved prefetching technique will increase memory-level
    //  parallelism and will lower the blocking factor" — run in reverse.
    let ab = memsense::experiments::ablation::prefetch_ablation(
        Workload::Wrf,
        &CalibrationBudget::quick(),
    )
    .unwrap();
    assert!(
        ab.bf_prefetch_off > ab.bf_prefetch_on,
        "disabling the prefetcher must raise BF: {} -> {}",
        ab.bf_prefetch_on,
        ab.bf_prefetch_off
    );
}
