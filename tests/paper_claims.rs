//! Integration tests asserting the paper's headline quantitative claims,
//! using the published Tab. 6 class constants through the analytic model —
//! the same path the paper's Sec. VI takes.

use memsense::model::queueing::QueueingCurve;
use memsense::model::sensitivity::{
    bandwidth_sweep, default_bandwidth_deltas, default_latency_steps, equivalence,
    latency_derivative, latency_sweep,
};
use memsense::model::solver::{solve_cpi, Regime};
use memsense::model::system::SystemConfig;
use memsense::model::units::{Cycles, GigaHertz, Nanoseconds};
use memsense::model::workload::WorkloadParams;

fn setup() -> (SystemConfig, QueueingCurve) {
    (
        SystemConfig::paper_baseline(),
        QueueingCurve::composite_default(),
    )
}

#[test]
fn tab3_computed_cpi_matches_paper_within_rounding() {
    // The eight (MPI, MP) columns of Tab. 3 and the paper's computed CPI.
    let rows = [
        (0.0056, 402.0, 1.33),
        (0.0056, 462.0, 1.39),
        (0.0059, 543.0, 1.52),
        (0.0057, 631.0, 1.60),
        (0.0056, 383.0, 1.31),
        (0.0056, 448.0, 1.38),
        (0.0055, 502.0, 1.43),
        (0.0055, 598.0, 1.53),
    ];
    for (mpi, mp, expected) in rows {
        let got = memsense::model::cpi::effective_cpi_raw(0.89, mpi, Cycles(mp), 0.20);
        assert!((got - expected).abs() < 0.02, "{got} vs {expected}");
    }
}

#[test]
fn baseline_regimes_match_section_6() {
    let (sys, curve) = setup();
    let ent = solve_cpi(&WorkloadParams::enterprise_class(), &sys, &curve).unwrap();
    let big = solve_cpi(&WorkloadParams::big_data_class(), &sys, &curve).unwrap();
    let hpc = solve_cpi(&WorkloadParams::hpc_class(), &sys, &curve).unwrap();
    assert_eq!(ent.regime, Regime::LatencyLimited);
    assert_eq!(big.regime, Regime::LatencyLimited);
    assert_eq!(hpc.regime, Regime::BandwidthBound);
    // Fig. 6 continuum: enterprise lowest utilization, HPC saturating.
    assert!(ent.utilization < big.utilization);
    assert!(big.utilization < hpc.utilization);
}

#[test]
fn fig8_bandwidth_impact_ordering() {
    let (sys, curve) = setup();
    let deltas = default_bandwidth_deltas();
    let at_worst = |w: &WorkloadParams| {
        bandwidth_sweep(w, &sys, &curve, &deltas)
            .unwrap()
            .last()
            .unwrap()
            .cpi_increase_pct()
    };
    let ent = at_worst(&WorkloadParams::enterprise_class());
    let big = at_worst(&WorkloadParams::big_data_class());
    let hpc = at_worst(&WorkloadParams::hpc_class());
    assert!(hpc > big && big > ent, "HPC {hpc} > big {big} > ent {ent}");
    // "the HPC class shows the most impact, while the enterprise class
    //  shows the least" — and the impact is dramatic for HPC.
    assert!(
        hpc > 100.0,
        "HPC CPI more than doubles at −3.5 GB/s/core: {hpc}"
    );
    assert!(ent < 10.0, "enterprise suffers modestly: {ent}");
}

#[test]
fn big_data_knee_at_2_5_gbps_per_core() {
    // "Big data can tolerate some bandwidth reduction, but does show
    //  significant impact when peak bandwidth is reduced by more than
    //  2.5 GB/s per core vs. our baseline."
    let (sys, curve) = setup();
    let sweep = bandwidth_sweep(
        &WorkloadParams::big_data_class(),
        &sys,
        &curve,
        &default_bandwidth_deltas(),
    )
    .unwrap();
    for p in &sweep {
        if p.delta >= -2.0 {
            assert!(
                p.cpi_increase_pct() < 8.0,
                "tolerates {} GB/s/core cut: {}%",
                p.delta,
                p.cpi_increase_pct()
            );
        }
        if p.delta <= -3.0 {
            assert_eq!(
                p.solved.regime,
                Regime::BandwidthBound,
                "past the knee at {}",
                p.delta
            );
        }
    }
}

#[test]
fn fig11_per_10ns_magnitudes() {
    // "enterprise … approximately 3.5% CPI increase for every 10 ns …
    //  big data … about 2.5%" — HPC shows none.
    let (sys, curve) = setup();
    let steps = default_latency_steps();
    let avg = |w: &WorkloadParams| {
        let sweep = latency_sweep(w, &sys, &curve, &steps).unwrap();
        let d = latency_derivative(&sweep).unwrap();
        d.iter().map(|p| p.pct_per_unit).sum::<f64>() / d.len() as f64
    };
    let ent = avg(&WorkloadParams::enterprise_class());
    let big = avg(&WorkloadParams::big_data_class());
    let hpc = avg(&WorkloadParams::hpc_class());
    assert!((ent - 3.5).abs() < 0.8, "enterprise {ent}%/10ns");
    assert!((big - 2.5).abs() < 0.8, "big data {big}%/10ns");
    assert!(hpc.abs() < 1e-9, "HPC {hpc}%/10ns");
}

#[test]
fn tab7_equivalences() {
    let (sys, curve) = setup();
    let ent = equivalence(&WorkloadParams::enterprise_class(), &sys, &curve).unwrap();
    let big = equivalence(&WorkloadParams::big_data_class(), &sys, &curve).unwrap();
    let hpc = equivalence(&WorkloadParams::hpc_class(), &sys, &curve).unwrap();

    // Paper: 10 ns ≈ 39.7 GB/s (enterprise) and 27.1 GB/s (big data).
    let ent_bw = ent.bandwidth_equivalent_of_10ns.unwrap();
    let big_bw = big.bandwidth_equivalent_of_10ns.unwrap();
    assert!(
        (ent_bw - 39.7).abs() < 12.0,
        "enterprise {ent_bw} GB/s vs 39.7"
    );
    assert!(
        (big_bw - 27.1).abs() < 14.0,
        "big data {big_bw} GB/s vs 27.1"
    );
    assert!(ent_bw > big_bw);
    // Paper: 8 GB/s/socket ≈ 2.0 ns (enterprise), 2.9 ns (big data).
    let ent_ns = ent.latency_equivalent_of_bandwidth.unwrap();
    let big_ns = big.latency_equivalent_of_bandwidth.unwrap();
    assert!((ent_ns - 2.0).abs() < 1.5, "enterprise {ent_ns} ns vs 2.0");
    assert!((big_ns - 2.9).abs() < 2.0, "big data {big_ns} ns vs 2.9");
    assert!(big_ns > ent_ns);
    // Paper: HPC ~24% from bandwidth, nothing from latency; "no amount of
    // latency reduction can compensate for bandwidth constraints".
    assert!((hpc.benefit_of_bandwidth_pct - 24.0).abs() < 4.0);
    assert_eq!(hpc.bandwidth_equivalent_of_10ns, Some(0.0));
    assert_eq!(hpc.latency_equivalent_of_bandwidth, None);
}

#[test]
fn frequency_scaling_direction() {
    // Faster cores see a larger cycle-denominated miss penalty: CPI rises,
    // even though wall-clock performance improves (Sec. V.A).
    let (sys, curve) = setup();
    let w = WorkloadParams::structured_data();
    let mut last_cpi = 0.0;
    let mut last_perf = f64::INFINITY;
    for ghz in [2.1, 2.4, 2.7, 3.1] {
        let s = solve_cpi(
            &w,
            &sys.clone().with_core_clock(GigaHertz(ghz)).unwrap(),
            &curve,
        )
        .unwrap();
        assert!(s.cpi_eff > last_cpi, "CPI rises with clock");
        let time_per_instr = s.cpi_eff / ghz;
        assert!(time_per_instr < last_perf, "wall-clock still improves");
        last_cpi = s.cpi_eff;
        last_perf = time_per_instr;
    }
}

#[test]
fn hierarchical_model_reduces_to_flat() {
    use memsense::model::hierarchy::{hierarchical_cpi, TieredMemory};
    let w = WorkloadParams::big_data_class();
    let clock = GigaHertz(2.7);
    let flat = TieredMemory::flat(Nanoseconds(75.0)).unwrap();
    let split = TieredMemory::two_tier(0.5, Nanoseconds(75.0), Nanoseconds(75.0)).unwrap();
    assert!(
        (hierarchical_cpi(&w, &flat, clock) - hierarchical_cpi(&w, &split, clock)).abs() < 1e-12,
        "equal tiers collapse to flat"
    );
}
