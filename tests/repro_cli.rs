//! End-to-end tests of the `repro` command-line binary.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn repro_with_threads(threads: &str, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .env("MEMSENSE_THREADS", threads)
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn help_lists_targets() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    for target in ["fig1", "fig11", "tab7", "hierarchy", "scorecard", "design"] {
        assert!(err.contains(target), "help mentions {target}: {err}");
    }
}

#[test]
fn unknown_target_fails() {
    let out = repro(&["nonsense"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown target"));
}

#[test]
fn fig1_prints_and_writes_csv() {
    let out = repro(&["fig1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fig. 1"));
    assert!(stdout.contains("cpu_capability"));
    assert!(stdout.contains("[wrote "));
}

#[test]
fn model_only_targets_run_quickly() {
    // These need no calibration, so they must run fast and cleanly.
    for target in [
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "tab7",
        "hierarchy",
        "numa",
        "futuretech",
        "tornado",
        "cpistack",
        "design",
    ] {
        let out = repro(&[target]);
        assert!(
            out.status.success(),
            "{target}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(!out.stdout.is_empty(), "{target} produced output");
    }
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    // The executor's serial-equivalence guarantee: tables and figures
    // rendered with 1 thread and with 8 threads must match byte for byte,
    // including stage ordering (the model-only targets cover solver-backed
    // tables, sweeps, and multi-table stages).
    let targets = [
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "tab7",
        "hierarchy",
        "numa",
        "futuretech",
        "tornado",
        "cpistack",
        "design",
        "channels",
    ];
    let serial = repro_with_threads("1", &targets);
    let parallel = repro_with_threads("8", &targets);
    assert!(
        serial.status.success(),
        "{}",
        String::from_utf8_lossy(&serial.stderr)
    );
    assert!(
        parallel.status.success(),
        "{}",
        String::from_utf8_lossy(&parallel.stderr)
    );
    assert!(!serial.stdout.is_empty());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "1-thread and 8-thread stdout must be byte-identical"
    );
}

#[test]
fn report_flag_prints_telemetry_and_writes_json() {
    let out = repro_with_threads("4", &["--report", "fig8", "tornado"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Run report: 2 stages on 4 threads"),
        "{stdout}"
    );
    for column in ["stage", "wall_ms", "jobs", "failures"] {
        assert!(stdout.contains(column), "report table has {column}");
    }
    assert!(stdout.contains("solves"), "solver tallies included");
    let json_line = stdout
        .lines()
        .find(|l| l.contains("run_report.json"))
        .expect("JSON path echoed");
    let path = json_line
        .trim_start_matches("[wrote ")
        .trim_end_matches(']');
    let json = std::fs::read_to_string(path).expect("run_report.json written");
    for key in [
        "\"threads\": 4",
        "\"stages\"",
        "\"jobs\"",
        "\"solver\"",
        "\"total_wall_ms\"",
    ] {
        assert!(json.contains(key), "JSON has {key}: {json}");
    }
    assert!(json.contains("\"name\": \"fig8\""));
    assert!(json.contains("\"name\": \"tornado\""));
}

#[test]
fn invalid_thread_count_is_a_one_line_diagnostic() {
    for bad in ["abc", "-2", "1.5", ""] {
        let out = repro_with_threads(bad, &["fig1"]);
        assert_eq!(out.status.code(), Some(2), "MEMSENSE_THREADS={bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("invalid MEMSENSE_THREADS value"),
            "MEMSENSE_THREADS={bad:?}: {err}"
        );
        assert_eq!(err.lines().count(), 1, "one-line diagnostic: {err}");
        assert!(!err.contains("panicked"), "{err}");
    }
}

#[test]
fn failing_stage_exits_via_error_path_not_panic() {
    // An unknown target must produce the one-line diagnostic and a failure
    // exit code — never a panic backtrace.
    let out = repro(&["fig8", "zzz"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error running zzz"), "{err}");
    assert!(!err.contains("panicked"), "no panic on bad target: {err}");
}

#[test]
fn fig10_includes_ascii_plot() {
    let out = repro(&["fig10"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fig. 10 (shape)"));
    assert!(stdout.contains("Enterprise class"));
    assert!(stdout.contains("[x: compulsory latency ns]"));
}
