//! Golden determinism snapshot for the simulator hot path.
//!
//! The cache, TLB, scheduler, and prefetch-table data structures are
//! performance-tuned under one contract: bit-identical behavior. This test
//! pins a mixed multi-core scenario (OLTP + Spark on a 4-core Xeon-like
//! machine) to the exact `f64` bit patterns and counter values the engine
//! produced when the snapshot was recorded. Any change to replacement
//! decisions, scheduling order, prefetch bookkeeping, or phase accounting
//! shows up here as a bit-level diff — before it silently shifts a figure
//! or table downstream.
//!
//! If this test fails, the fix is almost never to update the constants:
//! the engine is supposed to be deterministic, and every repro artifact is
//! downstream of these bits. Update them only for an *intentional*
//! modeling change, in the same commit that regenerates the affected
//! tables and figures.

use memsense::sim::{Machine, SimConfig};
use memsense::workloads::Workload;

/// Asserts two `f64`s are the *same bits*, printing both patterns on
/// mismatch (a plain `assert_eq!` on floats would accept -0.0 vs 0.0 and
/// hide how far apart the values drifted).
fn assert_bits(name: &str, got: f64, want_bits: u64) {
    assert_eq!(
        got.to_bits(),
        want_bits,
        "{name} drifted: got {got} (0x{:016x}), want 0x{want_bits:016x} ({})",
        got.to_bits(),
        f64::from_bits(want_bits),
    );
}

#[test]
fn mixed_workload_measurement_is_bit_stable() {
    let cfg = SimConfig::xeon_like(4);
    let mut streams = Workload::Oltp.streams(2, 0xc0);
    streams.extend(Workload::Spark.streams(2, 0xb1));
    let mut m = Machine::new(cfg, streams).expect("valid config");
    m.run_ops(30_000);
    let meas = m.measure_for_ns(60_000.0).expect("non-empty window");

    assert_bits("cpi_eff", meas.cpi_eff, 0x3ffd7f00952bb7f8);
    assert_bits("mpki", meas.mpki, 0x401ecf844dbf95d5);
    assert_bits("miss_penalty_ns", meas.miss_penalty_ns, 0x405725f50bb9a168);
    assert_bits("wbr", meas.wbr, 0x3fcbfae4408d2d65);
    assert_bits("bandwidth_gbps", meas.bandwidth_gbps, 0x4007682cc86e51a6);
    assert_bits("cpu_utilization", meas.cpu_utilization, 0x3fea0f911e89045a);
    assert_eq!(meas.instructions, 286_265, "instruction count drifted");

    let counters = m.total_counters();
    assert_eq!(
        counters.llc_demand_misses, 1_877,
        "LLC demand-miss count drifted"
    );
    assert_bits("busy_ns", counters.busy_ns, 0x41113a0f0dbec43c);
}

#[test]
fn phase_instruction_counts_are_exact_and_ordered() {
    let cfg = SimConfig::xeon_like(4);
    let mut streams = Workload::Oltp.streams(2, 0xc0);
    streams.extend(Workload::Spark.streams(2, 0xb1));
    let mut m = Machine::new(cfg, streams).expect("valid config");
    m.run_ops(30_000);
    m.measure_for_ns(60_000.0).expect("non-empty window");

    // The public API promises name-sorted (BTreeMap) iteration no matter
    // how phases are interned internally, and the per-phase totals are part
    // of the determinism contract.
    let phases: Vec<(String, u64)> = m.phase_instruction_counts().into_iter().collect();
    let want = [("map", 145_136u64), ("reduce", 80_681), ("steady", 180_448)];
    assert_eq!(phases.len(), want.len(), "phase set changed: {phases:?}");
    for ((got_name, got_count), (want_name, want_count)) in phases.iter().zip(want) {
        assert_eq!(got_name, want_name, "phase ordering/naming drifted");
        assert_eq!(
            got_count, &want_count,
            "phase {want_name} instruction count drifted"
        );
    }
}
