//! Property-based tests on the core invariants, spanning the model, stats,
//! and simulator crates.

use memsense::model::bandwidth::{bandwidth_limited_cpi, demand_system};
use memsense::model::cpi::{blocking_factor, chou_cpi, effective_cpi_raw};
use memsense::model::queueing::QueueingCurve;
use memsense::model::solver::solve_cpi;
use memsense::model::system::SystemConfig;
use memsense::model::units::{Cycles, GigaHertz, GigabytesPerSecond, Nanoseconds};
use memsense::model::workload::{Segment, WorkloadParams};
use memsense::stats::{fit_line, PiecewiseLinear};
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = WorkloadParams> {
    (
        0.3f64..3.0,  // cpi_cache
        0.0f64..0.8,  // bf
        0.1f64..40.0, // mpki
        0.0f64..1.5,  // wbr
    )
        .prop_map(|(cpi_cache, bf, mpki, wbr)| {
            WorkloadParams::new("prop", Segment::BigData, cpi_cache, bf, mpki, wbr).unwrap()
        })
}

fn arb_system() -> impl Strategy<Value = SystemConfig> {
    (
        1u32..=2,         // sockets
        2u32..=16,        // cores/socket
        1u32..=2,         // threads/core
        1.0f64..4.0,      // GHz
        1u32..=8,         // channels/socket
        800.0f64..3200.0, // MT/s
        0.5f64..1.0,      // efficiency
        40.0f64..150.0,   // unloaded ns
    )
        .prop_map(|(s, c, t, ghz, ch, mts, eff, lat)| {
            SystemConfig::new(s, c, t, GigaHertz(ghz), ch, mts, eff, Nanoseconds(lat)).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_always_converges_and_is_sane(w in arb_workload(), sys in arb_system()) {
        let curve = QueueingCurve::composite_default();
        let s = solve_cpi(&w, &sys, &curve).unwrap();
        // CPI can never be below the infinite-cache CPI.
        prop_assert!(s.cpi_eff >= w.cpi_cache - 1e-9);
        // Miss penalty at least the compulsory latency.
        prop_assert!(s.miss_penalty.value() >= sys.unloaded_latency().value() - 1e-9);
        // Demand never exceeds supply at the converged point (Eq. 4 with
        // BW = available is the ceiling).
        prop_assert!(s.utilization <= 1.0 + 1e-6);
        prop_assert!(s.bandwidth_demand.value() >= 0.0);
    }

    #[test]
    fn solver_monotone_in_latency(w in arb_workload(), sys in arb_system(), extra in 1.0f64..100.0) {
        let curve = QueueingCurve::composite_default();
        let base = solve_cpi(&w, &sys, &curve).unwrap();
        let slower = sys.clone().with_unloaded_latency(
            Nanoseconds(sys.unloaded_latency().value() + extra)).unwrap();
        let worse = solve_cpi(&w, &slower, &curve).unwrap();
        prop_assert!(worse.cpi_eff >= base.cpi_eff - 1e-9,
            "adding latency cannot reduce CPI: {} -> {}", base.cpi_eff, worse.cpi_eff);
    }

    #[test]
    fn solver_monotone_in_bandwidth(w in arb_workload(), sys in arb_system(), factor in 1.05f64..4.0) {
        let curve = QueueingCurve::composite_default();
        let base = solve_cpi(&w, &sys, &curve).unwrap();
        let wider = sys.clone().with_channel_speed(
            sys.channel_mega_transfers() * factor).unwrap();
        let better = solve_cpi(&w, &wider, &curve).unwrap();
        prop_assert!(better.cpi_eff <= base.cpi_eff + 1e-9,
            "adding bandwidth cannot raise CPI: {} -> {}", base.cpi_eff, better.cpi_eff);
    }

    #[test]
    fn eq1_eq2_equivalence(
        cpi_cache in 0.3f64..3.0,
        overlap in 0.0f64..0.95,
        mpi in 0.0005f64..0.05,
        mp in 50.0f64..1000.0,
        mlp in 1.0f64..16.0,
    ) {
        let bf = blocking_factor(cpi_cache, overlap, mpi, Cycles(mp), mlp);
        let via1 = effective_cpi_raw(cpi_cache, mpi, Cycles(mp), bf);
        let via2 = chou_cpi(cpi_cache, overlap, mpi, Cycles(mp), mlp);
        prop_assert!((via1 - via2).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_limited_cpi_inverts_demand(
        w in arb_workload(),
        avail in 1.0f64..200.0,
        ghz in 1.0f64..4.0,
        threads in 1u32..64,
    ) {
        let cpi = bandwidth_limited_cpi(&w, GigabytesPerSecond(avail), GigaHertz(ghz), threads).unwrap();
        let demand = demand_system(&w, cpi, GigaHertz(ghz), threads);
        prop_assert!((demand.value() - avail).abs() < 1e-6);
    }

    #[test]
    fn queueing_curve_monotone_everywhere(points in proptest::collection::vec((0.0f64..1.0, 0.0f64..200.0), 2..20)) {
        // Sort by utilization, force monotone delays, then the curve must
        // evaluate monotonically.
        let mut pts = points;
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut maxd = 0.0f64;
        for p in &mut pts {
            maxd = maxd.max(p.1);
            p.1 = maxd;
        }
        if let Ok(curve) = QueueingCurve::from_measurements(pts, 0.95) {
            let mut last = -1.0;
            for i in 0..=100 {
                let d = curve.delay(i as f64 / 100.0).value();
                prop_assert!(d >= last - 1e-12);
                last = d;
            }
        }
    }

    #[test]
    fn line_fit_recovers_exact_lines(
        slope in -5.0f64..5.0,
        intercept in -10.0f64..10.0,
        xs in proptest::collection::vec(-100.0f64..100.0, 3..30),
    ) {
        // Need variance in x.
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assume!(spread > 1e-6);
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6);
        prop_assert!((fit.intercept - intercept).abs() < 1e-4);
    }

    #[test]
    fn piecewise_linear_within_knot_bounds(
        knots in proptest::collection::vec((0.0f64..100.0, -50.0f64..50.0), 2..12),
        x in -10.0f64..110.0,
    ) {
        let mut ks = knots;
        ks.sort_by(|a, b| a.0.total_cmp(&b.0));
        ks.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
        prop_assume!(ks.len() >= 2);
        let f = PiecewiseLinear::new(ks.clone()).unwrap();
        let lo = ks.iter().map(|k| k.1).fold(f64::MAX, f64::min);
        let hi = ks.iter().map(|k| k.1).fold(f64::MIN, f64::max);
        let y = f.eval(x);
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9, "interpolation stays in bounds");
    }

    #[test]
    fn units_roundtrip(ns in 0.1f64..1000.0, ghz in 0.5f64..5.0) {
        let cycles = Nanoseconds(ns).to_cycles(GigaHertz(ghz));
        let back = cycles.to_nanoseconds(GigaHertz(ghz));
        prop_assert!((back.value() - ns).abs() < 1e-9);
    }
}

mod extension_properties {
    use super::*;
    use memsense::model::hierarchy::{hierarchical_cpi, TieredMemory};
    use memsense::model::numa::{solve_numa, NumaConfig};
    use memsense::stats::Histogram;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn numa_penalty_bounded_by_hop(
            w in arb_workload(),
            frac in 0.0f64..1.0,
            hop in 0.0f64..200.0,
        ) {
            let sys = SystemConfig::characterization_platform();
            let curve = QueueingCurve::composite_default();
            let numa = NumaConfig::new(frac, Nanoseconds(hop)).unwrap();
            let local = solve_numa(&w, &sys, &curve, &NumaConfig::local_only()).unwrap();
            let mixed = solve_numa(&w, &sys, &curve, &numa).unwrap();
            // Remote traffic can only hurt, and by no more than the full
            // hop applied to every miss.
            prop_assert!(mixed.cpi_eff >= local.cpi_eff - 1e-9);
            let ghz = sys.core_clock().value();
            let ceiling = local.cpi_eff + w.mpi() * hop * ghz * w.bf + 1e-6;
            prop_assert!(mixed.cpi_eff <= ceiling,
                "penalty bounded: {} vs ceiling {}", mixed.cpi_eff, ceiling);
        }

        #[test]
        fn hierarchy_cpi_monotone_in_far_latency(
            w in arb_workload(),
            near_hit in 0.0f64..1.0,
            far_a in 50.0f64..300.0,
            extra in 1.0f64..500.0,
        ) {
            let clock = GigaHertz(2.7);
            let a = TieredMemory::two_tier(near_hit, Nanoseconds(40.0), Nanoseconds(far_a)).unwrap();
            let b = TieredMemory::two_tier(near_hit, Nanoseconds(40.0), Nanoseconds(far_a + extra)).unwrap();
            prop_assert!(hierarchical_cpi(&w, &b, clock) >= hierarchical_cpi(&w, &a, clock) - 1e-12);
        }

        #[test]
        fn hierarchy_average_latency_is_convex_combination(
            near_hit in 0.0f64..1.0,
            near in 10.0f64..100.0,
            far in 100.0f64..500.0,
        ) {
            let mem = TieredMemory::two_tier(near_hit, Nanoseconds(near), Nanoseconds(far)).unwrap();
            let avg = mem.average_latency().value();
            prop_assert!(avg >= near - 1e-9 && avg <= far + 1e-9);
        }

        #[test]
        fn histogram_conserves_samples(
            samples in proptest::collection::vec(-1000.0f64..1000.0, 1..300),
            bins in 1usize..40,
        ) {
            let h = Histogram::from_samples(&samples, bins).unwrap();
            let binned: u64 = h.bins().iter().sum();
            let (below, above) = h.outliers();
            prop_assert_eq!(binned + below + above, samples.len() as u64);
            prop_assert_eq!(h.count(), samples.len() as u64);
        }

        #[test]
        fn colocation_interference_at_least_one(
            a in arb_workload(),
            b in arb_workload(),
            ta in 1u32..8,
            tb in 1u32..8,
        ) {
            use memsense::model::colocation::{solve_colocated, Tenant};
            let sys = SystemConfig::paper_baseline();
            let curve = QueueingCurve::composite_default();
            let solved = solve_colocated(
                &[
                    Tenant { workload: a, threads: ta },
                    Tenant { workload: b, threads: tb },
                ],
                &sys,
                &curve,
            ).unwrap();
            for t in &solved.tenants {
                prop_assert!(t.interference >= 1.0 - 1e-6,
                    "a neighbour cannot speed you up: {}", t.interference);
                prop_assert!(t.cpi_eff.is_finite() && t.cpi_eff > 0.0);
            }
            prop_assert!(solved.utilization <= 1.0 + 1e-6);
        }

        #[test]
        fn zipf_sampler_always_in_range(
            n in 1usize..5000,
            theta in 0.0f64..2.0,
            seed in any::<u64>(),
        ) {
            let mut z = memsense::workloads::patterns::ZipfSampler::new(n, theta, seed);
            for _ in 0..50 {
                prop_assert!(z.sample() < n);
            }
        }
    }
}

mod sim_properties {
    use super::*;
    use memsense::sim::cache::{CacheHierarchy, HitLevel};
    use memsense::sim::config::{MemoryConfig, SimConfig};
    use memsense::sim::mem::MemoryController;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn cache_second_access_always_hits(addrs in proptest::collection::vec(0u64..(1<<24), 1..200)) {
            let cfg = SimConfig::xeon_like(1);
            let mut h = CacheHierarchy::new(&cfg);
            for &a in &addrs {
                h.access(a, false);
                let again = h.access(a, false);
                prop_assert_eq!(again.level, HitLevel::L1, "immediate re-access is an L1 hit");
            }
        }

        #[test]
        fn memory_latency_at_least_unloaded(
            reqs in proptest::collection::vec((0u64..(1<<28), any::<bool>(), 0.0f64..10_000.0), 1..300)
        ) {
            let mut m = MemoryController::new(MemoryConfig::ddr3_1867(), 64);
            let unloaded = m.unloaded_latency_ns();
            let mut sorted = reqs;
            sorted.sort_by(|a, b| a.2.total_cmp(&b.2));
            for (addr, write, t) in sorted {
                let r = m.request(t, addr & !63, write);
                prop_assert!(r.latency_ns >= unloaded - 1e-6);
                prop_assert!(r.complete_ns >= t);
            }
        }

        #[test]
        fn memory_stats_conserve_bytes(
            n_reads in 1u64..200, n_writes in 1u64..200
        ) {
            let mut m = MemoryController::new(MemoryConfig::ddr3_1867(), 64);
            for i in 0..n_reads {
                m.request(i as f64, i * 64, false);
            }
            for i in 0..n_writes {
                m.request(i as f64, (i + 10_000) * 64, true);
            }
            let s = m.stats();
            prop_assert_eq!(s.reads, n_reads);
            prop_assert_eq!(s.writes, n_writes);
            prop_assert_eq!(s.total_bytes(), (n_reads + n_writes) * 64);
        }
    }
}

// ---------------------------------------------------------------------------
// Executor-facing invariants: the solver must be safe to call concurrently.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `solve_cpi` takes only shared references and keeps no mutable state
    /// besides the relaxed telemetry counters, so concurrent calls sharing
    /// one `SystemConfig` and one `QueueingCurve` must return exactly the
    /// serial results — the invariant the parallel experiment executor
    /// relies on for byte-identical tables.
    #[test]
    fn solve_cpi_is_thread_safe_under_shared_inputs(
        ws in proptest::collection::vec(arb_workload(), 4..12),
        sys in arb_system()
    ) {
        let curve = QueueingCurve::composite_default();
        let serial: Vec<_> = ws.iter()
            .map(|w| solve_cpi(w, &sys, &curve).unwrap())
            .collect();
        let concurrent: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = ws.iter()
                .map(|w| {
                    let (sys, curve) = (&sys, &curve);
                    scope.spawn(move || solve_cpi(w, sys, curve).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (s, c) in serial.iter().zip(&concurrent) {
            prop_assert_eq!(s.cpi_eff.to_bits(), c.cpi_eff.to_bits(),
                "CPI must be bitwise identical: {} vs {}", s.cpi_eff, c.cpi_eff);
            prop_assert_eq!(s.iterations, c.iterations);
            prop_assert_eq!(s.regime, c.regime);
            prop_assert_eq!(s.miss_penalty.value().to_bits(),
                c.miss_penalty.value().to_bits());
        }
    }
}
