//! Golden-plan determinism: the CLI must emit a byte-identical, committed
//! plan body regardless of `MEMSENSE_THREADS`.
//!
//! The executor reads `MEMSENSE_THREADS` once per process, so each thread
//! count gets its own subprocess — an in-process loop would silently test
//! one setting three times.

use std::path::PathBuf;
use std::process::Command;

use memsense_experiments::json::Json;
use memsense_plan::spec::PlanSpec;
use memsense_plan::{planner, report};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_cli(args: &[&str], threads: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_memsense-plan"))
        .args(args)
        .env("MEMSENSE_THREADS", threads)
        .output()
        .expect("spawn memsense-plan")
}

#[test]
fn golden_plan_is_byte_identical_across_thread_counts() {
    let golden = std::fs::read(fixture("golden_plan.json")).expect("committed golden plan");
    let spec = fixture("golden_spec.json");
    let spec = spec.to_str().expect("utf-8 fixture path");
    for threads in ["1", "2", "8"] {
        let out = run_cli(&["--spec", spec], threads);
        assert!(
            out.status.success(),
            "MEMSENSE_THREADS={threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stdout, golden,
            "plan body must be byte-identical to the committed golden at \
             MEMSENSE_THREADS={threads}"
        );
    }
}

#[test]
fn golden_plan_matches_the_library_and_is_canonical() {
    // The committed fixture is not stale: re-planning the committed spec
    // through the library reproduces it, and the body is canonical JSON.
    let spec_text = std::fs::read_to_string(fixture("golden_spec.json")).expect("spec fixture");
    let spec = PlanSpec::parse(&spec_text).expect("fixture spec is valid");
    let body = format!(
        "{}\n",
        report::plan_json(&planner::plan(&spec).unwrap()).canonical()
    );
    let golden = std::fs::read_to_string(fixture("golden_plan.json")).expect("plan fixture");
    assert_eq!(
        body, golden,
        "committed golden plan is stale; regenerate it"
    );
    let parsed = Json::parse(golden.trim_end()).expect("golden plan parses");
    assert_eq!(format!("{}\n", parsed.canonical()), golden);
}

#[test]
fn default_invocation_plans_the_example_spec() {
    let out = run_cli(&[], "2");
    assert!(out.status.success());
    let expected = format!(
        "{}\n",
        report::plan_json(&planner::plan(&PlanSpec::example()).unwrap()).canonical()
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), expected);

    // --example prints a spec that parses back into the same plan input.
    let out = run_cli(&["--example"], "2");
    assert!(out.status.success());
    let spec_text = String::from_utf8(out.stdout).expect("utf-8 spec");
    assert!(PlanSpec::parse(&spec_text).is_ok(), "{spec_text}");
}

#[test]
fn invalid_spec_exits_2_with_a_structured_error() {
    let dir = std::env::temp_dir();
    let path = dir.join("memsense-plan-golden-bad-spec.json");
    std::fs::write(
        &path,
        r#"{"traffic": [{"workload": "big data", "mreq_per_s": 1,
            "instructions_per_request": -5}],
            "hardware": [{"channels": 4, "mega_transfers": 1866.7,
            "unloaded_latency_ns": 75, "capacity_gb": 256, "cost": 1}]}"#,
    )
    .expect("write bad spec");
    let out = run_cli(&["--spec", path.to_str().expect("utf-8 temp path")], "2");
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(2), "spec errors must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let error = Json::parse(stderr.trim()).expect("structured stderr");
    assert_eq!(
        error.get("field").and_then(Json::as_str),
        Some("traffic[0].instructions_per_request"),
        "{stderr}"
    );
    assert!(error.get("error").and_then(Json::as_str).is_some());
}
