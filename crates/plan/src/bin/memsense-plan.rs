//! `memsense-plan` — fleet-scale capacity planning from the command line.
//!
//! ```text
//! memsense-plan [--spec FILE] [--out FILE] [--report] [--example]
//! ```
//!
//! * `--spec FILE` — plan spec (canonical JSON). Defaults to the built-in
//!   "millions of users" example mix.
//! * `--out FILE` — write the plan body (canonical JSON) to FILE.
//! * `--report` — print the human-readable tables instead of JSON.
//! * `--example` — print the built-in example spec and exit.
//!
//! Exit codes: 0 on success, 2 for an invalid spec (with a structured
//! `{"error", "field"}` JSON line on stderr), 1 for everything else. The
//! plan body is byte-identical at any `MEMSENSE_THREADS` setting.

use std::fs;
use std::process::ExitCode;

use memsense_plan::spec::PlanSpec;
use memsense_plan::{planner, report, PlanError};

struct Args {
    spec: Option<String>,
    out: Option<String>,
    report: bool,
    example: bool,
}

fn usage() -> &'static str {
    "usage: memsense-plan [--spec FILE] [--out FILE] [--report] [--example]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec: None,
        out: None,
        report: false,
        example: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--spec" => {
                args.spec = Some(iter.next().ok_or("--spec needs a file argument")?);
            }
            "--out" => {
                args.out = Some(iter.next().ok_or("--out needs a file argument")?);
            }
            "--report" => args.report = true,
            "--example" => args.example = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn run() -> Result<(), (u8, String)> {
    let args = parse_args().map_err(|m| (1, m))?;
    if args.example {
        println!("{}", PlanSpec::example_json().canonical());
        return Ok(());
    }
    let spec = match &args.spec {
        None => PlanSpec::example(),
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| (1, format!("cannot read spec {path:?}: {e}")))?;
            PlanSpec::parse(&text).map_err(spec_exit)?
        }
    };
    let plan = planner::plan(&spec).map_err(spec_exit)?;
    let body = report::plan_json(&plan).canonical();
    if let Some(path) = &args.out {
        fs::write(path, format!("{body}\n"))
            .map_err(|e| (1, format!("cannot write plan {path:?}: {e}")))?;
    }
    if args.report {
        print!("{}", report::render_report(&plan));
    } else if args.out.is_none() {
        println!("{body}");
    }
    Ok(())
}

/// Spec errors exit 2 with the structured JSON body; model errors exit 1.
fn spec_exit(e: PlanError) -> (u8, String) {
    let code = if e.is_spec() { 2 } else { 1 };
    (code, e.to_json().canonical())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, message)) => {
            eprintln!("{message}");
            ExitCode::from(code)
        }
    }
}
