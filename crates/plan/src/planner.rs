//! Design-space search: prune the menu, evaluate candidates, rank by cost.
//!
//! Every surviving menu entry is evaluated as one job through the shared
//! work-stealing executor, so large menus parallelize while the plan stays
//! byte-identical at any `MEMSENSE_THREADS` (the executor reassembles
//! results in submission order, and all ranking keys are content-derived).
//!
//! Sizing model: a class's instruction demand is
//! `mreq_per_s × 10⁶ × instructions_per_request`; a node running the class
//! at effective CPI `c` retires `threads × clock / c` instructions per
//! second. Dedicated mode sizes one node pool per class (throughput- or
//! capacity-driven, whichever needs more nodes); colocated mode packs every
//! class onto each node via the shared-memory fixed point
//! (`memsense_model::colocation`) and sizes the single pool by the most
//! demanding class.

use memsense_experiments::executor;
use memsense_model::colocation::{solve_colocated, Tenant};
use memsense_model::cpi;
use memsense_model::design::{pareto_indices, PARETO_EPS};
use memsense_model::queueing::QueueingCurve;
use memsense_model::solver::solve_cpi;
use memsense_model::system::SystemConfig;
use memsense_model::units::Nanoseconds;

use crate::spec::{HardwareOption, PlanSpec, TrafficClass};
use crate::PlanError;

/// Executor job label for candidate evaluation; the `plan/` prefix
/// attributes these jobs to the `plan` stage in repro run reports.
pub const EVAL_LABEL: &str = "plan/candidates";

/// A CPI breakdown for one class on one candidate (mirrors
/// `memsense_model::solver::CpiStack`, which colocated solves rebuild from
/// the shared queueing delay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackOut {
    /// Infinite-cache CPI.
    pub cpi_cache: f64,
    /// Stall CPI from the compulsory latency.
    pub compulsory_stall: f64,
    /// Stall CPI from queueing delay.
    pub queueing_stall: f64,
    /// CPI beyond the latency model when the bandwidth ceiling binds.
    pub bandwidth_residual: f64,
}

/// One traffic class evaluated on one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassOutcome {
    /// Workload name.
    pub name: String,
    /// Workload segment token.
    pub segment: &'static str,
    /// Offered load (millions of requests per second).
    pub mreq_per_s: f64,
    /// Instruction demand, G instructions per second.
    pub demand_gips: f64,
    /// Hardware threads running this class per node.
    pub threads: u32,
    /// Nodes serving this class (dedicated: its pool; colocated: the
    /// shared pool).
    pub nodes: u64,
    /// What sized this class's node count: `"throughput"` or `"capacity"`.
    pub node_driver: &'static str,
    /// Effective CPI under the candidate (including interference when
    /// colocated).
    pub cpi_eff: f64,
    /// CPI breakdown.
    pub stack: StackOut,
    /// Loaded memory latency (compulsory + queueing), ns.
    pub loaded_latency_ns: f64,
    /// Channel utilization of the node type serving this class.
    pub utilization: f64,
    /// CPI penalty vs running alone (1.0 when dedicated).
    pub interference: f64,
    /// `(max_cpi − cpi) / max_cpi`, when a CPI ceiling is set.
    pub cpi_slack: Option<f64>,
    /// `(max_latency − loaded) / max_latency`, when a latency ceiling is set.
    pub latency_slack: Option<f64>,
    /// True when every per-class ceiling holds.
    pub sla_pass: bool,
}

/// One fully evaluated candidate configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateOutcome {
    /// The menu entry.
    pub hardware: HardwareOption,
    /// Total nodes to deploy (sum of pools when dedicated).
    pub nodes: u64,
    /// What sized the largest pool: `"throughput"` or `"capacity"`.
    pub node_driver: &'static str,
    /// `nodes × cost_per_node`.
    pub total_cost: f64,
    /// Total cost per satisfied million requests per second.
    pub cost_per_mreq_s: f64,
    /// Worst channel utilization across pools.
    pub utilization: f64,
    /// `(ceiling − utilization) / ceiling` where
    /// `ceiling = 1 − min_bandwidth_headroom`.
    pub bandwidth_slack: f64,
    /// True when every SLA holds (worst slack ≥ 0).
    pub feasible: bool,
    /// The minimum slack across all constraints.
    pub worst_slack: f64,
    /// Which constraint produced the worst slack, e.g. `"cpi:HPC class"`
    /// or `"bandwidth_headroom"`.
    pub binding_constraint: String,
    /// Per-class outcomes, in traffic order.
    pub classes: Vec<ClassOutcome>,
}

/// A menu entry removed before evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedOption {
    /// The pruned entry's name.
    pub name: String,
    /// The menu entry that dominates it.
    pub dominated_by: String,
}

/// The finished plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Whether classes share nodes.
    pub colocate: bool,
    /// Total offered load, millions of requests per second.
    pub total_mreq_per_s: f64,
    /// Candidates ranked best-first: feasible before infeasible, then by
    /// ascending total cost, descending worst slack, name.
    pub candidates: Vec<CandidateOutcome>,
    /// Menu entries pruned as dominated, in menu order.
    pub pruned: Vec<PrunedOption>,
    /// Indices into `candidates` on the (total cost ↓, worst slack ↑)
    /// Pareto frontier, by ascending cost.
    pub frontier: Vec<usize>,
    /// Name of the cheapest feasible candidate, if any is feasible.
    pub recommendation: Option<String>,
}

/// Plans the fleet: prune → evaluate (fanned through the executor) → rank.
///
/// The caller owns the executor job log: long-lived daemons must drain it,
/// the repro stage harvests it for run reports.
///
/// # Errors
///
/// * [`PlanError::Spec`] for inconsistencies only visible at plan time
///   (e.g. colocated threads oversubscribing the node).
/// * [`PlanError::Model`] when a candidate evaluation fails to converge.
pub fn plan(spec: &PlanSpec) -> Result<Plan, PlanError> {
    let node = spec.node_config()?;
    let threads = assign_threads(spec, node.hardware_threads())?;
    let (kept, pruned) = prune_menu(&spec.hardware);
    let total_mreq_per_s: f64 = spec.traffic.iter().map(|t| t.mreq_per_s).sum();

    let mut candidates = executor::par_map(EVAL_LABEL, kept, |hw| {
        evaluate_candidate(spec, &node, &threads, hw, total_mreq_per_s)
    })?;

    // Rank best-first on content-only keys, so the order is identical for
    // any evaluation schedule and any spec permutation.
    candidates.sort_by(|a, b| {
        b.feasible
            .cmp(&a.feasible)
            .then(a.total_cost.total_cmp(&b.total_cost))
            .then(b.worst_slack.total_cmp(&a.worst_slack))
            .then(a.hardware.name.cmp(&b.hardware.name))
    });

    let points: Vec<(f64, f64)> = candidates
        .iter()
        .map(|c| (c.total_cost, c.worst_slack))
        .collect();
    let frontier = pareto_indices(&points);
    let recommendation = candidates
        .iter()
        .find(|c| c.feasible)
        .map(|c| c.hardware.name.clone());

    Ok(Plan {
        colocate: spec.colocate,
        total_mreq_per_s,
        candidates,
        pruned,
        frontier,
        recommendation,
    })
}

/// Colocated-mode thread assignment: explicit counts are honored, the
/// remaining threads are split evenly over unassigned classes (earlier
/// classes absorb the remainder). Dedicated mode gives every class the
/// whole node.
fn assign_threads(spec: &PlanSpec, hardware_threads: u32) -> Result<Vec<u32>, PlanError> {
    if !spec.colocate {
        return Ok(vec![hardware_threads; spec.traffic.len()]);
    }
    let explicit: u32 = spec.traffic.iter().filter_map(|t| t.threads).sum();
    if explicit > hardware_threads {
        return Err(PlanError::spec(
            "traffic[].threads",
            format!("explicit threads sum to {explicit}, node has {hardware_threads}"),
        ));
    }
    let unassigned = spec.traffic.iter().filter(|t| t.threads.is_none()).count() as u32;
    let remaining = hardware_threads - explicit;
    if unassigned > 0 && remaining < unassigned {
        return Err(PlanError::spec(
            "traffic",
            format!(
                "{unassigned} classes need threads but only {remaining} of \
                 {hardware_threads} node threads remain"
            ),
        ));
    }
    let share = remaining.checked_div(unassigned).unwrap_or(0);
    let mut leftover = remaining.checked_rem(unassigned).unwrap_or(0);
    let mut out = Vec::with_capacity(spec.traffic.len());
    for t in &spec.traffic {
        match t.threads {
            Some(explicit) => out.push(explicit),
            None => {
                let extra = u32::from(leftover > 0);
                leftover = leftover.saturating_sub(1);
                out.push(share + extra);
            }
        }
    }
    Ok(out)
}

/// Menu pruning: an entry strictly dominated on all four axes (cost ↓,
/// aggregate channel rate ↑, latency ↓, capacity ↑) by another entry can
/// never appear in the final ranking's prefix, so it is reported instead
/// of evaluated. Scans in menu order; the first dominator wins.
fn prune_menu(menu: &[HardwareOption]) -> (Vec<HardwareOption>, Vec<PrunedOption>) {
    let bw = |h: &HardwareOption| h.channels as f64 * h.mega_transfers;
    let dominates = |a: &HardwareOption, b: &HardwareOption| {
        a.cost <= b.cost + PARETO_EPS
            && bw(a) >= bw(b) - PARETO_EPS
            && a.unloaded_latency_ns <= b.unloaded_latency_ns + PARETO_EPS
            && a.capacity_gb >= b.capacity_gb - PARETO_EPS
            && (a.cost < b.cost - PARETO_EPS
                || bw(a) > bw(b) + PARETO_EPS
                || a.unloaded_latency_ns < b.unloaded_latency_ns - PARETO_EPS
                || a.capacity_gb > b.capacity_gb + PARETO_EPS)
    };
    let mut kept = Vec::new();
    let mut pruned = Vec::new();
    for h in menu {
        match menu.iter().find(|other| dominates(other, h)) {
            Some(dominator) => pruned.push(PrunedOption {
                name: h.name.clone(),
                dominated_by: dominator.name.clone(),
            }),
            None => kept.push(h.clone()),
        }
    }
    (kept, pruned)
}

/// Nodes needed to serve `demand` at `per_node` capacity; at least one.
fn nodes_for(demand: f64, per_node: f64) -> u64 {
    if per_node <= 0.0 {
        return u64::MAX;
    }
    let n = (demand / per_node).ceil();
    if n <= 1.0 {
        1
    } else if n >= u64::MAX as f64 {
        u64::MAX
    } else {
        n as u64
    }
}

/// Tracks the minimum slack and which constraint produced it. First-seen
/// wins ties, and constraints are visited in traffic order then aggregate,
/// so attribution is deterministic.
struct WorstSlack {
    slack: f64,
    label: String,
}

impl WorstSlack {
    fn new() -> WorstSlack {
        WorstSlack {
            slack: f64::INFINITY,
            label: String::new(),
        }
    }

    fn observe(&mut self, label: String, slack: f64) {
        if slack < self.slack {
            self.slack = slack;
            self.label = label;
        }
    }
}

fn evaluate_candidate(
    spec: &PlanSpec,
    node: &SystemConfig,
    threads: &[u32],
    hw: HardwareOption,
    total_mreq_per_s: f64,
) -> Result<CandidateOutcome, PlanError> {
    let sys = node
        .clone()
        .with_channels(hw.channels)?
        .with_channel_speed(hw.mega_transfers)?
        .with_unloaded_latency(Nanoseconds(hw.unloaded_latency_ns))?;
    let curve = QueueingCurve::composite_default();

    let mut worst = WorstSlack::new();
    let mut classes = Vec::with_capacity(spec.traffic.len());
    let (nodes, node_driver, utilization) = if spec.colocate {
        evaluate_colocated(spec, &sys, &curve, threads, &hw, &mut classes)?
    } else {
        evaluate_dedicated(spec, &sys, &curve, &hw, &mut classes)?
    };

    for c in &classes {
        if let Some(slack) = c.cpi_slack {
            worst.observe(format!("cpi:{}", c.name), slack);
        }
        if let Some(slack) = c.latency_slack {
            worst.observe(format!("latency:{}", c.name), slack);
        }
    }
    let ceiling = 1.0 - spec.min_bandwidth_headroom;
    let bandwidth_slack = (ceiling - utilization) / ceiling;
    worst.observe("bandwidth_headroom".to_string(), bandwidth_slack);

    let total_cost = nodes as f64 * hw.cost;
    Ok(CandidateOutcome {
        hardware: hw,
        nodes,
        node_driver,
        total_cost,
        cost_per_mreq_s: total_cost / total_mreq_per_s,
        utilization,
        bandwidth_slack,
        feasible: worst.slack >= 0.0,
        worst_slack: worst.slack,
        binding_constraint: worst.label,
        classes,
    })
}

/// Instruction demand of a class, G instructions per second.
fn demand_gips(t: &TrafficClass) -> f64 {
    t.mreq_per_s * 1e6 * t.instructions_per_request / 1e9
}

fn class_slacks(
    t: &TrafficClass,
    cpi_eff: f64,
    loaded_latency_ns: f64,
) -> (Option<f64>, Option<f64>) {
    let cpi_slack = t.sla.max_cpi.map(|max| (max - cpi_eff) / max);
    let latency_slack = t
        .sla
        .max_loaded_latency_ns
        .map(|max| (max - loaded_latency_ns) / max);
    (cpi_slack, latency_slack)
}

fn evaluate_dedicated(
    spec: &PlanSpec,
    sys: &SystemConfig,
    curve: &QueueingCurve,
    hw: &HardwareOption,
    classes: &mut Vec<ClassOutcome>,
) -> Result<(u64, &'static str, f64), PlanError> {
    let node_threads = sys.hardware_threads();
    let clock = sys.core_clock().value();
    let mut total_nodes: u64 = 0;
    let mut biggest_pool: u64 = 0;
    let mut driver: &'static str = "throughput";
    let mut max_util: f64 = 0.0;
    for t in &spec.traffic {
        let solved = solve_cpi(&t.workload, sys, curve)?;
        let stack = solved.cpi_stack(&t.workload, sys);
        let node_gips = node_threads as f64 * clock / solved.cpi_eff;
        let demand = demand_gips(t);
        let by_throughput = nodes_for(demand, node_gips);
        let by_capacity = if t.dataset_gb > 0.0 {
            nodes_for(t.dataset_gb, hw.capacity_gb)
        } else {
            0
        };
        let (nodes, class_driver) = if by_capacity > by_throughput {
            (by_capacity, "capacity")
        } else {
            (by_throughput, "throughput")
        };
        total_nodes = total_nodes.saturating_add(nodes);
        if nodes > biggest_pool {
            biggest_pool = nodes;
            driver = class_driver;
        }
        max_util = max_util.max(solved.utilization);
        let loaded_latency_ns = solved.miss_penalty.value();
        let (cpi_slack, latency_slack) = class_slacks(t, solved.cpi_eff, loaded_latency_ns);
        classes.push(ClassOutcome {
            name: t.workload.name.clone(),
            segment: t.workload.segment.token(),
            mreq_per_s: t.mreq_per_s,
            demand_gips: demand,
            threads: node_threads,
            nodes,
            node_driver: class_driver,
            cpi_eff: solved.cpi_eff,
            stack: StackOut {
                cpi_cache: stack.cpi_cache,
                compulsory_stall: stack.compulsory_stall,
                queueing_stall: stack.queueing_stall,
                bandwidth_residual: stack.bandwidth_residual,
            },
            loaded_latency_ns,
            utilization: solved.utilization,
            interference: 1.0,
            cpi_slack,
            latency_slack,
            sla_pass: cpi_slack.unwrap_or(0.0) >= 0.0 && latency_slack.unwrap_or(0.0) >= 0.0,
        });
    }
    Ok((total_nodes, driver, max_util))
}

fn evaluate_colocated(
    spec: &PlanSpec,
    sys: &SystemConfig,
    curve: &QueueingCurve,
    threads: &[u32],
    hw: &HardwareOption,
    classes: &mut Vec<ClassOutcome>,
) -> Result<(u64, &'static str, f64), PlanError> {
    let tenants: Vec<Tenant> = spec
        .traffic
        .iter()
        .zip(threads)
        .map(|(t, &threads)| Tenant {
            workload: t.workload.clone(),
            threads,
        })
        .collect();
    let solved = solve_colocated(&tenants, sys, curve)?;
    let clock = sys.core_clock();
    let q = solved.queueing_delay;
    let loaded_latency_ns = sys.unloaded_latency().value() + q.value();
    let unloaded_cycles = sys.unloaded_latency().to_cycles(clock);
    let queueing_cycles = q.to_cycles(clock);

    let mut by_throughput_max: u64 = 1;
    for ((t, tenant_solved), &class_threads) in
        spec.traffic.iter().zip(&solved.tenants).zip(threads)
    {
        let demand = demand_gips(t);
        let node_gips = class_threads as f64 * clock.value() / tenant_solved.cpi_eff;
        let nodes = nodes_for(demand, node_gips);
        by_throughput_max = by_throughput_max.max(nodes);
        // Rebuild the CPI stack at the shared loaded latency, mirroring
        // SolvedCpi::cpi_stack: anything the latency model cannot explain
        // is the bandwidth-wall residual (the fair-share scaling).
        let compulsory = cpi::memory_cpi_component(&t.workload, unloaded_cycles);
        let queueing = cpi::memory_cpi_component(&t.workload, queueing_cycles);
        let explained = t.workload.cpi_cache + compulsory + queueing;
        let (cpi_slack, latency_slack) = class_slacks(t, tenant_solved.cpi_eff, loaded_latency_ns);
        classes.push(ClassOutcome {
            name: t.workload.name.clone(),
            segment: t.workload.segment.token(),
            mreq_per_s: t.mreq_per_s,
            demand_gips: demand,
            threads: class_threads,
            nodes,
            node_driver: "throughput",
            cpi_eff: tenant_solved.cpi_eff,
            stack: StackOut {
                cpi_cache: t.workload.cpi_cache,
                compulsory_stall: compulsory,
                queueing_stall: queueing,
                bandwidth_residual: (tenant_solved.cpi_eff - explained).max(0.0),
            },
            loaded_latency_ns,
            utilization: solved.utilization,
            interference: tenant_solved.interference,
            cpi_slack,
            latency_slack,
            sla_pass: cpi_slack.unwrap_or(0.0) >= 0.0 && latency_slack.unwrap_or(0.0) >= 0.0,
        });
    }
    let total_dataset: f64 = spec.traffic.iter().map(|t| t.dataset_gb).sum();
    let by_capacity = if total_dataset > 0.0 {
        nodes_for(total_dataset, hw.capacity_gb)
    } else {
        0
    };
    let (nodes, driver) = if by_capacity > by_throughput_max {
        (by_capacity, "capacity")
    } else {
        (by_throughput_max, "throughput")
    };
    // Every class shares one pool, so each serves from `nodes` nodes.
    for c in classes.iter_mut() {
        c.nodes = nodes;
        c.node_driver = driver;
    }
    Ok((nodes, driver, solved.utilization))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PlanSpec;

    #[test]
    fn example_plan_is_ranked_and_recommends() {
        let plan = plan(&PlanSpec::example()).unwrap();
        assert_eq!(plan.candidates.len(), 5, "one menu entry is pruned");
        assert_eq!(plan.pruned.len(), 1);
        assert_eq!(plan.pruned[0].name, "4ch-1333-overpriced");
        assert_eq!(plan.pruned[0].dominated_by, "4ch-1333-value");
        // Feasible candidates precede infeasible ones; each block is
        // cost-ascending.
        let first_infeasible = plan
            .candidates
            .iter()
            .position(|c| !c.feasible)
            .unwrap_or(plan.candidates.len());
        assert!(plan.candidates[..first_infeasible]
            .windows(2)
            .all(|w| w[0].total_cost <= w[1].total_cost));
        assert!(plan.candidates[first_infeasible..]
            .iter()
            .all(|c| !c.feasible));
        let recommendation = plan.recommendation.as_deref().expect("a feasible plan");
        assert_eq!(recommendation, plan.candidates[0].hardware.name);
        assert!(plan.candidates[0].feasible);
    }

    #[test]
    fn every_candidate_attributes_a_binding_constraint() {
        let plan = plan(&PlanSpec::example()).unwrap();
        for c in &plan.candidates {
            assert!(!c.binding_constraint.is_empty(), "{}", c.hardware.name);
            assert!(c.worst_slack.is_finite());
            assert_eq!(c.feasible, c.worst_slack >= 0.0);
            assert!(c.nodes >= 1);
            assert!(c.total_cost > 0.0);
            // The stack components must add back up to the effective CPI.
            for class in &c.classes {
                let total = class.stack.cpi_cache
                    + class.stack.compulsory_stall
                    + class.stack.queueing_stall
                    + class.stack.bandwidth_residual;
                assert!(
                    (total - class.cpi_eff).abs() < 1e-6,
                    "{}: stack {total} vs cpi {}",
                    class.name,
                    class.cpi_eff
                );
            }
        }
    }

    #[test]
    fn frontier_points_are_mutually_nondominated() {
        let plan = plan(&PlanSpec::example()).unwrap();
        assert!(!plan.frontier.is_empty());
        for &i in &plan.frontier {
            for &j in &plan.frontier {
                if i == j {
                    continue;
                }
                let (a, b) = (&plan.candidates[i], &plan.candidates[j]);
                assert!(
                    !(a.total_cost < b.total_cost - PARETO_EPS
                        && a.worst_slack > b.worst_slack + PARETO_EPS),
                    "{} dominates {}",
                    a.hardware.name,
                    b.hardware.name
                );
            }
        }
    }

    #[test]
    fn plan_is_invariant_under_menu_permutation() {
        let mut spec = PlanSpec::example();
        let baseline = plan(&spec).unwrap();
        spec.hardware.reverse();
        let permuted = plan(&spec).unwrap();
        assert_eq!(baseline.candidates, permuted.candidates);
        assert_eq!(baseline.frontier, permuted.frontier);
        assert_eq!(baseline.recommendation, permuted.recommendation);
        // Pruned entries keep menu order, so only the set matches.
        let names = |p: &Plan| {
            let mut v: Vec<String> = p.pruned.iter().map(|x| x.name.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(names(&baseline), names(&permuted));
    }

    #[test]
    fn colocation_reports_interference_and_shares_one_pool() {
        let mut spec = PlanSpec::example();
        spec.colocate = true;
        let plan = plan(&spec).unwrap();
        for c in &plan.candidates {
            let nodes = c.classes.first().map(|x| x.nodes).unwrap_or(0);
            assert!(c.classes.iter().all(|x| x.nodes == nodes));
            assert_eq!(c.nodes, nodes);
            assert!(
                c.classes.iter().any(|x| x.interference > 1.0),
                "{}: someone pays for the neighbours",
                c.hardware.name
            );
        }
    }

    #[test]
    fn capacity_can_outvote_throughput() {
        let mut spec = PlanSpec::example();
        // Tiny per-node capacity: the analytics dataset forces the pool.
        for hw in &mut spec.hardware {
            hw.capacity_gb = 1.0;
        }
        let plan = plan(&spec).unwrap();
        for c in &plan.candidates {
            let analytics = c
                .classes
                .iter()
                .find(|x| x.segment == "big_data")
                .expect("analytics class present");
            assert_eq!(analytics.node_driver, "capacity");
            assert!(analytics.nodes >= 4096, "4096 GB / 1 GB per node");
        }
    }

    #[test]
    fn oversubscribed_colocated_threads_fail_with_spec_error() {
        let mut spec = PlanSpec::example();
        spec.colocate = true;
        for t in &mut spec.traffic {
            t.threads = Some(100);
        }
        let err = plan(&spec).unwrap_err();
        assert!(err.is_spec(), "{err:?}");
    }
}
