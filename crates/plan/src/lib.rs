//! Fleet-scale memory capacity planning over the calibrated CPI model.
//!
//! The paper calibrates per-class CPI models; what operators actually do
//! with such models is pick memory configurations for a fleet. This crate
//! closes that loop: a **plan spec** describes a traffic mix (requests/s
//! per workload class — millions of users), SLA targets (per-class CPI and
//! loaded-latency ceilings, an aggregate bandwidth-headroom floor), and a
//! hardware menu (channel count × speed × latency × capacity points with
//! per-node costs). The planner prunes dominated menu entries, evaluates
//! every surviving candidate as batched model solves fanned through the
//! shared work-stealing executor, and emits a deterministic, cost-ranked
//! plan: per-config CPI stacks, SLA pass/fail with binding-constraint
//! attribution, cost per satisfied request, and a Pareto frontier over
//! (total cost, worst-class slack).
//!
//! Three surfaces share this library: the `memsense-plan` CLI, the `plan`
//! repro stage, and `POST /v1/plan` on `memsense-serve`.
//!
//! ```
//! use memsense_plan::planner;
//! use memsense_plan::spec::PlanSpec;
//!
//! let plan = planner::plan(&PlanSpec::example()).unwrap();
//! assert!(plan.recommendation.is_some(), "the example mix is plannable");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod planner;
pub mod report;
pub mod spec;

use std::fmt;

use memsense_experiments::json::Json;
use memsense_model::ModelError;

/// Planning failure: either the spec is invalid (caller mistake) or the
/// model could not evaluate a candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The plan spec failed validation; `field` names the offending input.
    Spec {
        /// Dotted path of the invalid field, e.g. `traffic[0].mreq_per_s`.
        field: String,
        /// What was wrong with it.
        message: String,
    },
    /// The model rejected a candidate evaluation.
    Model(ModelError),
}

impl PlanError {
    /// A spec-validation error for `field`.
    pub fn spec(field: impl Into<String>, message: impl Into<String>) -> PlanError {
        PlanError::Spec {
            field: field.into(),
            message: message.into(),
        }
    }

    /// True for caller mistakes in the spec (CLI exit 2, HTTP 400).
    pub fn is_spec(&self) -> bool {
        matches!(self, PlanError::Spec { .. })
    }

    /// The structured error body: `{"error": …, "field": …}` for spec
    /// errors, `{"error": …}` for model failures. Canonical JSON.
    pub fn to_json(&self) -> Json {
        match self {
            PlanError::Spec { field, message } => Json::obj(vec![
                ("error", Json::str(message)),
                ("field", Json::str(field)),
            ]),
            PlanError::Model(e) => {
                Json::obj(vec![("error", Json::str(format!("model error: {e}")))])
            }
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Spec { field, message } => {
                write!(f, "invalid plan spec: {field}: {message}")
            }
            PlanError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<ModelError> for PlanError {
    fn from(e: ModelError) -> PlanError {
        PlanError::Model(e)
    }
}
