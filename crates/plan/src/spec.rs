//! The plan spec: traffic mix + SLA targets + hardware menu.
//!
//! Specs travel as canonical JSON (`memsense_experiments::json`). Parsing
//! is strict in the same way `memsense-serve` is strict about
//! Content-Length: unknown fields are rejected so typos cannot silently
//! fall back to defaults, and every rate, cost, and SLA value must be
//! finite and inside its domain — a spec that parses is a spec the planner
//! can evaluate.

use memsense_experiments::json::{fmt_f64, Json};
use memsense_model::units::{GigaHertz, Nanoseconds};
use memsense_model::workload::{Segment, WorkloadParams};
use memsense_model::{ModelError, SystemConfig};

use crate::PlanError;

/// Most traffic classes accepted in one spec.
pub const MAX_TRAFFIC_CLASSES: usize = 64;

/// Most hardware menu entries accepted in one spec.
pub const MAX_HARDWARE_OPTIONS: usize = 256;

/// Per-class SLA ceilings. Absent ceilings are unconstrained.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassSla {
    /// Ceiling on effective CPI.
    pub max_cpi: Option<f64>,
    /// Ceiling on loaded memory latency (compulsory + queueing), in ns.
    pub max_loaded_latency_ns: Option<f64>,
}

/// One traffic class: a workload plus how much of it the fleet must carry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficClass {
    /// The workload's calibrated model parameters.
    pub workload: WorkloadParams,
    /// Offered load, in millions of requests per second.
    pub mreq_per_s: f64,
    /// Average instructions retired per request.
    pub instructions_per_request: f64,
    /// Resident dataset this class must hold in memory (GB); 0 = none.
    pub dataset_gb: f64,
    /// Hardware threads per node for this class (colocated mode only).
    pub threads: Option<u32>,
    /// Per-class SLA ceilings.
    pub sla: ClassSla,
}

/// One hardware menu entry: a memory configuration with a per-node cost.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareOption {
    /// Display name, unique within the menu.
    pub name: String,
    /// Memory channels per socket.
    pub channels: u32,
    /// Channel transfer rate (MT/s).
    pub mega_transfers: f64,
    /// Compulsory (unloaded) latency, ns.
    pub unloaded_latency_ns: f64,
    /// Memory capacity per node, GB.
    pub capacity_gb: f64,
    /// Technology tier label (e.g. `"ddr"`, `"hbm"`, `"cxl"`); free-form.
    pub tier: String,
    /// Relative cost per node.
    pub cost: f64,
}

/// Compute-side node description shared by every menu entry.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Sockets per node.
    pub sockets: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// Core clock, GHz.
    pub core_clock_ghz: f64,
    /// Achievable fraction of peak channel bandwidth, in `(0, 1]`.
    pub efficiency: f64,
}

impl Default for NodeSpec {
    fn default() -> NodeSpec {
        let base = SystemConfig::paper_baseline();
        NodeSpec {
            sockets: base.sockets(),
            cores_per_socket: base.cores() / base.sockets(),
            threads_per_core: base.hardware_threads() / base.cores(),
            core_clock_ghz: base.core_clock().value(),
            efficiency: base.efficiency(),
        }
    }
}

/// A validated plan spec.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// The traffic mix, in input order.
    pub traffic: Vec<TrafficClass>,
    /// Aggregate SLA: fraction of effective bandwidth that must stay free,
    /// in `[0, 1)`. Utilization above `1 - headroom` fails the plan.
    pub min_bandwidth_headroom: f64,
    /// The hardware menu, in input order.
    pub hardware: Vec<HardwareOption>,
    /// Share each node across all classes (true) or dedicate node pools
    /// per class (false).
    pub colocate: bool,
    /// Compute-side node description.
    pub node: NodeSpec,
}

impl PlanSpec {
    /// Builds the node-level [`SystemConfig`] (memory side still at the
    /// paper baseline; the planner overrides it per menu entry).
    ///
    /// # Errors
    ///
    /// [`PlanError::Spec`] when the node description is inconsistent.
    pub fn node_config(&self) -> Result<SystemConfig, PlanError> {
        SystemConfig::new(
            self.node.sockets,
            self.node.cores_per_socket,
            self.node.threads_per_core,
            GigaHertz(self.node.core_clock_ghz),
            // Placeholder memory side; every candidate overrides it.
            4,
            1866.7,
            self.node.efficiency,
            Nanoseconds(75.0),
        )
        .map_err(|e: ModelError| PlanError::spec("node", format!("{e}")))
    }

    /// Parses and validates a spec from raw JSON text.
    ///
    /// # Errors
    ///
    /// [`PlanError::Spec`] naming the first invalid field.
    pub fn parse(text: &str) -> Result<PlanSpec, PlanError> {
        let json = Json::parse(text)
            .map_err(|e| PlanError::spec("(root)", format!("invalid JSON: {e}")))?;
        PlanSpec::from_json(&json)
    }

    /// Parses and validates a spec from parsed JSON.
    ///
    /// # Errors
    ///
    /// [`PlanError::Spec`] naming the first invalid field.
    pub fn from_json(body: &Json) -> Result<PlanSpec, PlanError> {
        check_keys(
            body,
            "(root)",
            &["traffic", "sla", "hardware", "colocate", "node"],
        )?;
        let traffic = parse_traffic(body)?;
        let min_bandwidth_headroom = parse_aggregate_sla(body)?;
        let hardware = parse_hardware(body)?;
        let colocate = parse_bool(body, "colocate", false)?;
        let node = parse_node(body)?;
        let spec = PlanSpec {
            traffic,
            min_bandwidth_headroom,
            hardware,
            colocate,
            node,
        };
        if !spec.colocate {
            if let Some((i, _)) = spec
                .traffic
                .iter()
                .enumerate()
                .find(|(_, t)| t.threads.is_some())
            {
                return Err(PlanError::spec(
                    format!("traffic[{i}].threads"),
                    "threads is only meaningful with \"colocate\": true",
                ));
            }
        }
        // The node description must be self-consistent before any candidate
        // is evaluated, so a bad spec fails at parse time with exit 2.
        spec.node_config()?;
        Ok(spec)
    }

    /// The worked "millions of users" example mix: a latency-sensitive web
    /// tier, a dataset-heavy analytics tier, and a bandwidth-hungry ML
    /// tier, planned over a six-entry DDR menu (one entry deliberately
    /// dominated, to exercise pruning).
    pub fn example() -> PlanSpec {
        // memsense-lint: allow(no-panic-in-lib) — compile-time constants, pinned by tests
        PlanSpec::from_json(&PlanSpec::example_json()).expect("example spec is valid")
    }

    /// The example spec as JSON (what `memsense-plan --example` prints).
    pub fn example_json() -> Json {
        let class =
            |workload: &str, mreq: f64, ipr: f64, dataset: f64, sla: Option<Json>| -> Json {
                let mut fields = vec![
                    ("workload", Json::str(workload)),
                    ("mreq_per_s", Json::num(mreq)),
                    ("instructions_per_request", Json::num(ipr)),
                ];
                if dataset > 0.0 {
                    fields.push(("dataset_gb", Json::num(dataset)));
                }
                if let Some(sla) = sla {
                    fields.push(("sla", sla));
                }
                Json::obj(fields)
            };
        let hw = |name: &str, ch: f64, mts: f64, lat: f64, cap: f64, cost: f64| -> Json {
            Json::obj(vec![
                ("name", Json::str(name)),
                ("channels", Json::num(ch)),
                ("mega_transfers", Json::num(mts)),
                ("unloaded_latency_ns", Json::num(lat)),
                ("capacity_gb", Json::num(cap)),
                ("cost", Json::num(cost)),
            ])
        };
        Json::obj(vec![
            (
                "traffic",
                Json::Arr(vec![
                    class(
                        "enterprise",
                        40.0,
                        50e3,
                        0.0,
                        Some(Json::obj(vec![
                            ("max_cpi", Json::num(5.0)),
                            ("max_loaded_latency_ns", Json::num(140.0)),
                        ])),
                    ),
                    class(
                        "big data",
                        2.0,
                        5e6,
                        4096.0,
                        Some(Json::obj(vec![("max_cpi", Json::num(8.0))])),
                    ),
                    class("hpc", 0.5, 2e7, 0.0, None),
                ]),
            ),
            (
                "sla",
                Json::obj(vec![("min_bandwidth_headroom", Json::num(0.1))]),
            ),
            (
                "hardware",
                Json::Arr(vec![
                    hw("2ch-1333-budget", 2.0, 1333.0, 95.0, 128.0, 0.55),
                    hw("4ch-1333-value", 4.0, 1333.0, 85.0, 256.0, 0.80),
                    hw("4ch-1867-baseline", 4.0, 1866.7, 75.0, 256.0, 1.0),
                    // Dominated on every axis by 4ch-1867-baseline: the
                    // pruning pass must report it instead of evaluating it.
                    hw("4ch-1333-overpriced", 4.0, 1333.0, 85.0, 256.0, 1.1),
                    hw("6ch-1867-wide", 6.0, 1866.7, 75.0, 384.0, 1.25),
                    hw("8ch-2400-max", 8.0, 2400.0, 75.0, 512.0, 1.7),
                ]),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Strict field parsing
// ---------------------------------------------------------------------------

fn check_keys(body: &Json, path: &str, allowed: &[&str]) -> Result<(), PlanError> {
    let Json::Obj(fields) = body else {
        return Err(PlanError::spec(path, "must be a JSON object"));
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(PlanError::spec(
                format!("{path}.{key}"),
                format!("unknown field (expected one of: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn parse_bool(obj: &Json, key: &str, default: bool) -> Result<bool, PlanError> {
    match obj.get(key) {
        None => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(PlanError::spec(key, "must be a boolean")),
    }
}

/// A required, finite number.
fn need_num(obj: &Json, path: &str, key: &str) -> Result<f64, PlanError> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| PlanError::spec(format!("{path}.{key}"), "must be a number"))?;
    if !v.is_finite() {
        return Err(PlanError::spec(
            format!("{path}.{key}"),
            "must be finite (no NaN or infinity)",
        ));
    }
    Ok(v)
}

/// An optional, finite number.
fn opt_num(obj: &Json, path: &str, key: &str, default: f64) -> Result<f64, PlanError> {
    if obj.get(key).is_none() {
        return Ok(default);
    }
    need_num(obj, path, key)
}

/// A required finite number that must be strictly positive.
fn need_pos(obj: &Json, path: &str, key: &str) -> Result<f64, PlanError> {
    let v = need_num(obj, path, key)?;
    if v <= 0.0 {
        return Err(PlanError::spec(
            format!("{path}.{key}"),
            format!("must be > 0 (got {})", fmt_f64(v)),
        ));
    }
    Ok(v)
}

fn need_u32(obj: &Json, path: &str, key: &str) -> Result<u32, PlanError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| PlanError::spec(format!("{path}.{key}"), "must be a non-negative integer"))
}

fn opt_u32(obj: &Json, path: &str, key: &str, default: u32) -> Result<u32, PlanError> {
    if obj.get(key).is_none() {
        return Ok(default);
    }
    need_u32(obj, path, key)
}

fn parse_workload(value: &Json, path: &str) -> Result<WorkloadParams, PlanError> {
    match value {
        Json::Str(name) => WorkloadParams::by_name(name)
            .ok_or_else(|| PlanError::spec(path, format!("unknown workload {name:?}"))),
        Json::Obj(_) => {
            check_keys(
                value,
                path,
                &[
                    "name",
                    "segment",
                    "cpi_cache",
                    "bf",
                    "mpki",
                    "wbr",
                    "iopi",
                    "iosz",
                ],
            )?;
            let name = match value.get("name") {
                None => "custom",
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| PlanError::spec(format!("{path}.name"), "must be a string"))?,
            };
            let segment = match value.get("segment") {
                None => Segment::BigData,
                Some(v) => v.as_str().and_then(Segment::from_token).ok_or_else(|| {
                    PlanError::spec(
                        format!("{path}.segment"),
                        "must be \"big_data\", \"enterprise\", or \"hpc\"",
                    )
                })?,
            };
            let workload = WorkloadParams::new(
                name,
                segment,
                need_num(value, path, "cpi_cache")?,
                need_num(value, path, "bf")?,
                need_num(value, path, "mpki")?,
                need_num(value, path, "wbr")?,
            )
            .map_err(|e| PlanError::spec(path, format!("{e}")))?;
            if value.get("iopi").is_some() || value.get("iosz").is_some() {
                workload
                    .with_io(
                        opt_num(value, path, "iopi", 0.0)?,
                        opt_num(value, path, "iosz", 0.0)?,
                    )
                    .map_err(|e| PlanError::spec(path, format!("{e}")))
            } else {
                Ok(workload)
            }
        }
        _ => Err(PlanError::spec(
            path,
            "must be a workload name or a parameter object",
        )),
    }
}

fn parse_class_sla(value: &Json, path: &str) -> Result<ClassSla, PlanError> {
    check_keys(value, path, &["max_cpi", "max_loaded_latency_ns"])?;
    let ceiling = |key: &str| -> Result<Option<f64>, PlanError> {
        if value.get(key).is_none() {
            return Ok(None);
        }
        Ok(Some(need_pos(value, path, key)?))
    };
    Ok(ClassSla {
        max_cpi: ceiling("max_cpi")?,
        max_loaded_latency_ns: ceiling("max_loaded_latency_ns")?,
    })
}

fn parse_traffic(body: &Json) -> Result<Vec<TrafficClass>, PlanError> {
    let value = body
        .get("traffic")
        .ok_or_else(|| PlanError::spec("traffic", "required field is missing"))?;
    let items = value
        .as_arr()
        .ok_or_else(|| PlanError::spec("traffic", "must be an array"))?;
    if items.is_empty() {
        return Err(PlanError::spec("traffic", "must not be empty"));
    }
    if items.len() > MAX_TRAFFIC_CLASSES {
        return Err(PlanError::spec(
            "traffic",
            format!("accepts at most {MAX_TRAFFIC_CLASSES} classes"),
        ));
    }
    let mut traffic = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let path = format!("traffic[{i}]");
        check_keys(
            item,
            &path,
            &[
                "workload",
                "mreq_per_s",
                "instructions_per_request",
                "dataset_gb",
                "threads",
                "sla",
            ],
        )?;
        let workload = parse_workload(
            item.get("workload").ok_or_else(|| {
                PlanError::spec(format!("{path}.workload"), "required field is missing")
            })?,
            &format!("{path}.workload"),
        )?;
        let mreq_per_s = need_pos(item, &path, "mreq_per_s")?;
        let instructions_per_request = need_pos(item, &path, "instructions_per_request")?;
        let dataset_gb = opt_num(item, &path, "dataset_gb", 0.0)?;
        if dataset_gb < 0.0 {
            return Err(PlanError::spec(
                format!("{path}.dataset_gb"),
                format!("must be >= 0 (got {})", fmt_f64(dataset_gb)),
            ));
        }
        let threads = match item.get("threads") {
            None => None,
            Some(_) => {
                let t = need_u32(item, &path, "threads")?;
                if t == 0 {
                    return Err(PlanError::spec(format!("{path}.threads"), "must be > 0"));
                }
                Some(t)
            }
        };
        let sla = match item.get("sla") {
            None => ClassSla::default(),
            Some(v) => parse_class_sla(v, &format!("{path}.sla"))?,
        };
        traffic.push(TrafficClass {
            workload,
            mreq_per_s,
            instructions_per_request,
            dataset_gb,
            threads,
            sla,
        });
    }
    Ok(traffic)
}

fn parse_aggregate_sla(body: &Json) -> Result<f64, PlanError> {
    let Some(value) = body.get("sla") else {
        return Ok(0.0);
    };
    check_keys(value, "sla", &["min_bandwidth_headroom"])?;
    let headroom = opt_num(value, "sla", "min_bandwidth_headroom", 0.0)?;
    if !(0.0..1.0).contains(&headroom) {
        return Err(PlanError::spec(
            "sla.min_bandwidth_headroom",
            format!("must be in [0, 1) (got {})", fmt_f64(headroom)),
        ));
    }
    Ok(headroom)
}

fn parse_hardware(body: &Json) -> Result<Vec<HardwareOption>, PlanError> {
    let value = body
        .get("hardware")
        .ok_or_else(|| PlanError::spec("hardware", "required field is missing"))?;
    let items = value
        .as_arr()
        .ok_or_else(|| PlanError::spec("hardware", "must be an array"))?;
    if items.is_empty() {
        return Err(PlanError::spec("hardware", "must not be empty"));
    }
    if items.len() > MAX_HARDWARE_OPTIONS {
        return Err(PlanError::spec(
            "hardware",
            format!("accepts at most {MAX_HARDWARE_OPTIONS} entries"),
        ));
    }
    let mut hardware: Vec<HardwareOption> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let path = format!("hardware[{i}]");
        check_keys(
            item,
            &path,
            &[
                "name",
                "channels",
                "mega_transfers",
                "unloaded_latency_ns",
                "capacity_gb",
                "tier",
                "cost",
            ],
        )?;
        let channels = need_u32(item, &path, "channels")?;
        if channels == 0 {
            return Err(PlanError::spec(format!("{path}.channels"), "must be > 0"));
        }
        let mega_transfers = need_pos(item, &path, "mega_transfers")?;
        let unloaded_latency_ns = need_num(item, &path, "unloaded_latency_ns")?;
        if unloaded_latency_ns < 0.0 {
            return Err(PlanError::spec(
                format!("{path}.unloaded_latency_ns"),
                format!("must be >= 0 (got {})", fmt_f64(unloaded_latency_ns)),
            ));
        }
        let capacity_gb = need_pos(item, &path, "capacity_gb")?;
        let cost = need_pos(item, &path, "cost")?;
        let name = match item.get("name") {
            // Default names reach plan bodies (and thus serve cache keys),
            // so floats must go through the canonical formatter.
            None => format!("{channels}ch-{}mts", fmt_f64(mega_transfers)),
            Some(v) => v
                .as_str()
                .ok_or_else(|| PlanError::spec(format!("{path}.name"), "must be a string"))?
                .to_string(),
        };
        if hardware.iter().any(|h| h.name == name) {
            return Err(PlanError::spec(
                format!("{path}.name"),
                format!("duplicate name {name:?}"),
            ));
        }
        let tier = match item.get("tier") {
            None => "ddr".to_string(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| PlanError::spec(format!("{path}.tier"), "must be a string"))?
                .to_string(),
        };
        hardware.push(HardwareOption {
            name,
            channels,
            mega_transfers,
            unloaded_latency_ns,
            capacity_gb,
            tier,
            cost,
        });
    }
    Ok(hardware)
}

fn parse_node(body: &Json) -> Result<NodeSpec, PlanError> {
    let defaults = NodeSpec::default();
    let Some(value) = body.get("node") else {
        return Ok(defaults);
    };
    check_keys(
        value,
        "node",
        &[
            "sockets",
            "cores_per_socket",
            "threads_per_core",
            "core_clock_ghz",
            "efficiency",
        ],
    )?;
    Ok(NodeSpec {
        sockets: opt_u32(value, "node", "sockets", defaults.sockets)?,
        cores_per_socket: opt_u32(value, "node", "cores_per_socket", defaults.cores_per_socket)?,
        threads_per_core: opt_u32(value, "node", "threads_per_core", defaults.threads_per_core)?,
        core_clock_ghz: opt_num(value, "node", "core_clock_ghz", defaults.core_clock_ghz)?,
        efficiency: opt_num(value, "node", "efficiency", defaults.efficiency)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_text() -> String {
        PlanSpec::example_json().canonical()
    }

    #[test]
    fn example_spec_parses_and_round_trips() {
        let spec = PlanSpec::parse(&example_text()).unwrap();
        assert_eq!(spec.traffic.len(), 3);
        assert_eq!(spec.hardware.len(), 6);
        assert!(!spec.colocate);
        assert!((spec.min_bandwidth_headroom - 0.1).abs() < 1e-12);
        assert_eq!(spec, PlanSpec::example());
    }

    #[test]
    fn unknown_fields_are_rejected_with_field_paths() {
        let err = PlanSpec::parse(r#"{"trafic": []}"#).unwrap_err();
        let PlanError::Spec { field, .. } = &err else {
            panic!("expected spec error, got {err:?}");
        };
        assert_eq!(field, "(root).trafic");
    }

    #[test]
    fn negative_and_nonfinite_values_are_rejected() {
        let mut base = PlanSpec::example_json();
        // Negative rate.
        if let Json::Obj(fields) = &mut base {
            for (key, value) in fields.iter_mut() {
                if key == "traffic" {
                    if let Json::Arr(items) = value {
                        if let Some(Json::Obj(class)) = items.first_mut() {
                            for (k, v) in class.iter_mut() {
                                if k == "mreq_per_s" {
                                    *v = Json::num(-1.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = PlanSpec::from_json(&base).unwrap_err();
        let PlanError::Spec { field, message } = &err else {
            panic!("expected spec error, got {err:?}");
        };
        assert_eq!(field, "traffic[0].mreq_per_s");
        assert!(message.contains("> 0"), "{message}");

        // Non-finite rate: the strict JSON parser refuses NaN/infinity
        // literals at the wire, so validation is probed on parsed JSON.
        let infinite = Json::parse(
            r#"{"traffic": [{"workload": "hpc", "mreq_per_s": 1,
                "instructions_per_request": 1000}],
                "hardware": [{"channels": 4, "mega_transfers": 1600,
                "unloaded_latency_ns": 80, "capacity_gb": 128, "cost": 1}]}"#,
        )
        .map(|mut json| {
            if let Json::Obj(fields) = &mut json {
                for (key, value) in fields.iter_mut() {
                    if key == "hardware" {
                        if let Json::Arr(items) = value {
                            if let Some(Json::Obj(hw)) = items.first_mut() {
                                for (k, v) in hw.iter_mut() {
                                    if k == "cost" {
                                        *v = Json::Num(f64::INFINITY);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            json
        })
        .unwrap();
        match PlanSpec::from_json(&infinite) {
            Err(PlanError::Spec { field, message }) => {
                assert_eq!(field, "hardware[0].cost");
                assert!(message.contains("finite"), "{message}");
            }
            other => panic!("expected a spec error, got {other:?}"),
        }
    }

    #[test]
    fn sla_ceilings_must_be_positive() {
        let text = r#"{"traffic": [{"workload": "hpc", "mreq_per_s": 1,
            "instructions_per_request": 1000, "sla": {"max_cpi": 0}}],
            "hardware": [{"channels": 4, "mega_transfers": 1600,
            "unloaded_latency_ns": 80, "capacity_gb": 128, "cost": 1}]}"#;
        let err = PlanSpec::parse(text).unwrap_err();
        assert!(err.is_spec());
        assert!(format!("{err}").contains("max_cpi"), "{err}");
    }

    #[test]
    fn headroom_outside_unit_interval_is_rejected() {
        for bad in ["1", "-0.1", "2"] {
            let text = format!(
                r#"{{"traffic": [{{"workload": "hpc", "mreq_per_s": 1,
                "instructions_per_request": 1000}}],
                "sla": {{"min_bandwidth_headroom": {bad}}},
                "hardware": [{{"channels": 4, "mega_transfers": 1600,
                "unloaded_latency_ns": 80, "capacity_gb": 128, "cost": 1}}]}}"#
            );
            assert!(PlanSpec::parse(&text).is_err(), "headroom {bad} accepted");
        }
    }

    #[test]
    fn threads_require_colocate_mode() {
        let text = r#"{"traffic": [{"workload": "hpc", "mreq_per_s": 1,
            "instructions_per_request": 1000, "threads": 8}],
            "hardware": [{"channels": 4, "mega_transfers": 1600,
            "unloaded_latency_ns": 80, "capacity_gb": 128, "cost": 1}]}"#;
        let err = PlanSpec::parse(text).unwrap_err();
        assert!(format!("{err}").contains("colocate"), "{err}");
    }

    #[test]
    fn duplicate_hardware_names_are_rejected() {
        let text = r#"{"traffic": [{"workload": "hpc", "mreq_per_s": 1,
            "instructions_per_request": 1000}],
            "hardware": [
              {"name": "a", "channels": 4, "mega_transfers": 1600,
               "unloaded_latency_ns": 80, "capacity_gb": 128, "cost": 1},
              {"name": "a", "channels": 2, "mega_transfers": 1333,
               "unloaded_latency_ns": 95, "capacity_gb": 64, "cost": 0.5}
            ]}"#;
        let err = PlanSpec::parse(text).unwrap_err();
        assert!(format!("{err}").contains("duplicate"), "{err}");
    }

    #[test]
    fn structured_error_body_is_canonical_json() {
        let err = PlanSpec::parse("{not json").unwrap_err();
        let body = err.to_json().canonical();
        let parsed = Json::parse(&body).unwrap();
        assert!(parsed.get("error").is_some());
        assert_eq!(parsed.get("field").and_then(Json::as_str), Some("(root)"));
    }
}
