//! Plan rendering: the canonical JSON body and the human-readable report.
//!
//! The JSON body is the wire format for all three surfaces (CLI `--out`,
//! the `plan` repro stage, `POST /v1/plan`), so every float goes through
//! the canonical serializer and field order is fixed — the same plan is
//! byte-identical everywhere, which is what makes serve's result cache and
//! the golden fixture meaningful.

use memsense_experiments::json::Json;
use memsense_experiments::render::{f, pct, Table};

use crate::planner::{CandidateOutcome, ClassOutcome, Plan};

/// Schema tag carried by every plan body.
pub const SCHEMA: &str = "memsense-plan/1";

fn class_json(c: &ClassOutcome) -> Json {
    let opt = |v: Option<f64>| v.map(Json::num).unwrap_or(Json::Null);
    Json::obj(vec![
        ("workload", Json::str(&c.name)),
        ("segment", Json::str(c.segment)),
        ("mreq_per_s", Json::num(c.mreq_per_s)),
        ("demand_gips", Json::num(c.demand_gips)),
        ("threads", Json::num(c.threads as f64)),
        ("nodes", Json::num(c.nodes as f64)),
        ("node_driver", Json::str(c.node_driver)),
        ("cpi_eff", Json::num(c.cpi_eff)),
        (
            "cpi_stack",
            Json::obj(vec![
                ("cpi_cache", Json::num(c.stack.cpi_cache)),
                ("compulsory_stall", Json::num(c.stack.compulsory_stall)),
                ("queueing_stall", Json::num(c.stack.queueing_stall)),
                ("bandwidth_residual", Json::num(c.stack.bandwidth_residual)),
            ]),
        ),
        ("loaded_latency_ns", Json::num(c.loaded_latency_ns)),
        ("utilization", Json::num(c.utilization)),
        ("interference", Json::num(c.interference)),
        ("cpi_slack", opt(c.cpi_slack)),
        ("latency_slack", opt(c.latency_slack)),
        ("sla_pass", Json::Bool(c.sla_pass)),
    ])
}

fn candidate_json(c: &CandidateOutcome) -> Json {
    Json::obj(vec![
        ("name", Json::str(&c.hardware.name)),
        ("tier", Json::str(&c.hardware.tier)),
        ("channels", Json::num(c.hardware.channels as f64)),
        ("mega_transfers", Json::num(c.hardware.mega_transfers)),
        (
            "unloaded_latency_ns",
            Json::num(c.hardware.unloaded_latency_ns),
        ),
        ("capacity_gb", Json::num(c.hardware.capacity_gb)),
        ("cost_per_node", Json::num(c.hardware.cost)),
        ("nodes", Json::num(c.nodes as f64)),
        ("node_driver", Json::str(c.node_driver)),
        ("total_cost", Json::num(c.total_cost)),
        ("cost_per_mreq_s", Json::num(c.cost_per_mreq_s)),
        ("utilization", Json::num(c.utilization)),
        ("bandwidth_slack", Json::num(c.bandwidth_slack)),
        ("feasible", Json::Bool(c.feasible)),
        ("worst_slack", Json::num(c.worst_slack)),
        ("binding_constraint", Json::str(&c.binding_constraint)),
        (
            "classes",
            Json::Arr(c.classes.iter().map(class_json).collect()),
        ),
    ])
}

/// Renders the full plan body.
pub fn plan_json(plan: &Plan) -> Json {
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        ("colocate", Json::Bool(plan.colocate)),
        ("total_mreq_per_s", Json::num(plan.total_mreq_per_s)),
        (
            "candidates",
            Json::Arr(plan.candidates.iter().map(candidate_json).collect()),
        ),
        (
            "pruned",
            Json::Arr(
                plan.pruned
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("name", Json::str(&p.name)),
                            ("dominated_by", Json::str(&p.dominated_by)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "frontier",
            Json::Arr(
                plan.frontier
                    .iter()
                    .filter_map(|&i| plan.candidates.get(i))
                    .map(|c| {
                        Json::obj(vec![
                            ("name", Json::str(&c.hardware.name)),
                            ("total_cost", Json::num(c.total_cost)),
                            ("worst_slack", Json::num(c.worst_slack)),
                            ("feasible", Json::Bool(c.feasible)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "recommendation",
            plan.recommendation
                .as_deref()
                .map(Json::str)
                .unwrap_or(Json::Null),
        ),
    ])
}

/// The ranked-candidates table.
pub fn candidates_table(plan: &Plan) -> Table {
    let mut table = Table::new(
        "memsense-plan · cost-ranked candidates",
        &[
            "rank",
            "config",
            "tier",
            "nodes",
            "driver",
            "total cost",
            "cost/Mreq/s",
            "util",
            "feasible",
            "worst slack",
            "binding constraint",
        ],
    );
    for (rank, c) in plan.candidates.iter().enumerate() {
        table.row(vec![
            format!("{}", rank + 1),
            c.hardware.name.clone(),
            c.hardware.tier.clone(),
            format!("{}", c.nodes),
            c.node_driver.to_string(),
            f(c.total_cost, 2),
            f(c.cost_per_mreq_s, 4),
            pct(c.utilization, 1),
            if c.feasible { "yes" } else { "no" }.to_string(),
            f(c.worst_slack, 3),
            c.binding_constraint.clone(),
        ]);
    }
    table
}

/// The Pareto frontier table (cost vs worst-class slack).
pub fn frontier_table(plan: &Plan) -> Table {
    let mut table = Table::new(
        "Pareto frontier · total cost vs worst-class slack",
        &["config", "total cost", "worst slack", "feasible"],
    );
    for &i in &plan.frontier {
        if let Some(c) = plan.candidates.get(i) {
            table.row(vec![
                c.hardware.name.clone(),
                f(c.total_cost, 2),
                f(c.worst_slack, 3),
                if c.feasible { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    table
}

/// The per-class breakdown table for the best (first-ranked) candidate.
pub fn best_candidate_table(plan: &Plan) -> Option<Table> {
    let c = plan.candidates.first()?;
    let mut table = Table::new(
        format!("per-class outcome on {}", c.hardware.name),
        &[
            "class",
            "Mreq/s",
            "threads",
            "nodes",
            "CPI",
            "stall CPI",
            "loaded ns",
            "interference",
            "SLA",
        ],
    );
    for class in &c.classes {
        let stall = class.stack.compulsory_stall
            + class.stack.queueing_stall
            + class.stack.bandwidth_residual;
        table.row(vec![
            class.name.clone(),
            f(class.mreq_per_s, 2),
            format!("{}", class.threads),
            format!("{}", class.nodes),
            f(class.cpi_eff, 3),
            f(stall, 3),
            f(class.loaded_latency_ns, 1),
            f(class.interference, 3),
            if class.sla_pass { "pass" } else { "FAIL" }.to_string(),
        ]);
    }
    Some(table)
}

/// The full human-readable report.
pub fn render_report(plan: &Plan) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "mode: {} | traffic: {} Mreq/s across {} classes\n",
        if plan.colocate {
            "colocated"
        } else {
            "dedicated"
        },
        f(plan.total_mreq_per_s, 2),
        plan.candidates
            .first()
            .map(|c| c.classes.len())
            .unwrap_or(0),
    ));
    match &plan.recommendation {
        Some(name) => out.push_str(&format!("recommendation: {name}\n")),
        None => out.push_str("recommendation: none (no candidate meets every SLA)\n"),
    }
    for p in &plan.pruned {
        out.push_str(&format!(
            "pruned: {} (dominated by {})\n",
            p.name, p.dominated_by
        ));
    }
    out.push('\n');
    out.push_str(&candidates_table(plan).to_ascii());
    out.push('\n');
    out.push_str(&frontier_table(plan).to_ascii());
    if let Some(table) = best_candidate_table(plan) {
        out.push('\n');
        out.push_str(&table.to_ascii());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan;
    use crate::spec::PlanSpec;

    #[test]
    fn plan_json_is_canonical_and_complete() {
        let plan = plan(&PlanSpec::example()).unwrap();
        let body = plan_json(&plan).canonical();
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("memsense-plan/1")
        );
        assert_eq!(
            parsed
                .get("candidates")
                .and_then(Json::as_arr)
                .map(|a| a.len()),
            Some(plan.candidates.len())
        );
        assert_eq!(
            parsed.get("pruned").and_then(Json::as_arr).map(|a| a.len()),
            Some(1)
        );
        assert!(parsed
            .get("recommendation")
            .and_then(Json::as_str)
            .is_some());
        // Canonical: re-serializing the parse is a fixed point.
        assert_eq!(parsed.canonical(), body);
    }

    #[test]
    fn report_names_every_candidate_and_the_frontier() {
        let plan = plan(&PlanSpec::example()).unwrap();
        let report = render_report(&plan);
        for c in &plan.candidates {
            assert!(report.contains(&c.hardware.name), "{}", c.hardware.name);
        }
        assert!(report.contains("Pareto frontier"));
        assert!(report.contains("recommendation:"));
        assert!(report.contains("pruned: 4ch-1333-overpriced"));
    }
}
