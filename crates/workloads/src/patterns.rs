//! Address-pattern building blocks shared by the workload generators.
//!
//! Each paper workload is characterized by *how* it touches memory: columnar
//! scans are sequential, OLTP probes B-trees with dependent pointer walks,
//! memcached hits a hash table with Zipf-popular keys, SPECfp kernels stride
//! through large arrays. These small samplers produce those shapes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Aligns an address down to a 64-byte line.
pub fn line_align(addr: u64) -> u64 {
    addr & !63
}

/// A sequential scanner over a wrapping region: returns consecutive byte
/// addresses `element_size` apart, starting at `base`.
#[derive(Debug, Clone)]
pub struct SequentialScan {
    base: u64,
    region: u64,
    element: u64,
    offset: u64,
}

impl SequentialScan {
    /// Creates a scanner over `region` bytes starting at `base`, advancing
    /// `element_size` bytes per step.
    ///
    /// # Panics
    ///
    /// Panics if `region` or `element_size` is zero.
    pub fn new(base: u64, region: u64, element_size: u64) -> Self {
        assert!(
            region > 0 && element_size > 0,
            "region and element must be > 0"
        );
        SequentialScan {
            base,
            region,
            element: element_size,
            offset: 0,
        }
    }

    /// Next element address.
    pub fn next_addr(&mut self) -> u64 {
        let a = self.base + self.offset;
        self.offset = (self.offset + self.element) % self.region;
        a
    }
}

/// A strided scanner: like [`SequentialScan`] but with a configurable stride
/// between consecutive accesses (lattice/stencil sweeps).
#[derive(Debug, Clone)]
pub struct StridedScan {
    base: u64,
    region: u64,
    stride: u64,
    offset: u64,
}

impl StridedScan {
    /// Creates a strided scanner.
    ///
    /// # Panics
    ///
    /// Panics if `region` or `stride` is zero.
    pub fn new(base: u64, region: u64, stride: u64) -> Self {
        assert!(region > 0 && stride > 0, "region and stride must be > 0");
        StridedScan {
            base,
            region,
            stride,
            offset: 0,
        }
    }

    /// Next address.
    pub fn next_addr(&mut self) -> u64 {
        let a = self.base + self.offset;
        self.offset += self.stride;
        if self.offset >= self.region {
            // Restart at a shifted phase so successive sweeps touch the
            // other lines of each stride window.
            self.offset = (self.offset + 64) % self.stride.max(64);
        }
        a
    }
}

/// Uniform random line addresses within a region — the NITS bloom-filter
/// probes and MLC's random traffic.
#[derive(Debug, Clone)]
pub struct UniformRandom {
    base: u64,
    region: u64,
    rng: SmallRng,
}

impl UniformRandom {
    /// Creates a sampler over `region` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is zero.
    pub fn new(base: u64, region: u64, seed: u64) -> Self {
        assert!(region > 0, "region must be > 0");
        UniformRandom {
            base,
            region,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next line-aligned random address.
    pub fn next_addr(&mut self) -> u64 {
        line_align(self.base + self.rng.gen_range(0..self.region))
    }
}

/// Zipf-distributed item popularity over `n` items — web-cache keys and
/// OLTP hot rows. Uses the standard inverse-CDF method over precomputed
/// cumulative weights.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: SmallRng,
}

impl ZipfSampler {
    /// Creates a sampler for ranks `0..n` with exponent `theta`
    /// (`theta = 0` is uniform; web workloads are typically ~0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "n must be > 0");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler {
            cdf,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Samples an item rank in `0..n` (0 = most popular).
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A pseudo-random pointer chase: a permutation-like walk over the lines of
/// a region where each next address is a hash of the current one — the
/// dependent-load backbone of OLTP/JVM/graph traversals.
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: u64,
    lines: u64,
    state: u64,
}

impl PointerChase {
    /// Creates a chase over `region` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is smaller than one line.
    pub fn new(base: u64, region: u64, seed: u64) -> Self {
        assert!(region >= 64, "region must hold at least one line");
        PointerChase {
            base,
            lines: region / 64,
            state: seed | 1,
        }
    }

    /// Next chased address (depends on the previous one).
    pub fn next_addr(&mut self) -> u64 {
        // SplitMix64 step: full-period, well mixed, deterministic.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        self.base + (z % self.lines) * 64
    }
}

/// Deterministic per-stream RNG for op-mix decisions.
pub fn mix_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_advances_and_wraps() {
        let mut s = SequentialScan::new(1000, 256, 64);
        assert_eq!(s.next_addr(), 1000);
        assert_eq!(s.next_addr(), 1064);
        assert_eq!(s.next_addr(), 1128);
        assert_eq!(s.next_addr(), 1192);
        assert_eq!(s.next_addr(), 1000, "wraps at region end");
    }

    #[test]
    fn strided_covers_with_stride() {
        let mut s = StridedScan::new(0, 4096, 1024);
        let a: Vec<u64> = (0..4).map(|_| s.next_addr()).collect();
        assert_eq!(a, vec![0, 1024, 2048, 3072]);
    }

    #[test]
    fn uniform_random_in_bounds_and_aligned() {
        let mut u = UniformRandom::new(1 << 20, 1 << 16, 42);
        for _ in 0..1000 {
            let a = u.next_addr();
            assert!((1 << 20..(1 << 20) + (1 << 16) + 64).contains(&a));
            assert_eq!(a % 64, 0);
        }
    }

    #[test]
    fn uniform_random_deterministic_per_seed() {
        let mut a = UniformRandom::new(0, 1 << 20, 7);
        let mut b = UniformRandom::new(0, 1 << 20, 7);
        for _ in 0..100 {
            assert_eq!(a.next_addr(), b.next_addr());
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut z = ZipfSampler::new(1000, 0.99, 1);
        let mut low = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample() < 10 {
                low += 1;
            }
        }
        // With theta ≈ 1, the top-10 of 1000 items draw ~39% of accesses.
        let frac = low as f64 / n as f64;
        assert!(frac > 0.25, "zipf head share {frac}");
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let mut z = ZipfSampler::new(100, 0.0, 2);
        let mut counts = [0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample()] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "uniform spread, got {min}..{max}");
    }

    #[test]
    fn zipf_in_range() {
        let mut z = ZipfSampler::new(10, 1.2, 3);
        for _ in 0..1000 {
            assert!(z.sample() < 10);
        }
    }

    #[test]
    fn chase_stays_in_region_and_varies() {
        let mut c = PointerChase::new(4096, 1 << 20, 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let a = c.next_addr();
            assert!((4096..4096 + (1 << 20)).contains(&a));
            assert_eq!(a % 64, 0);
            seen.insert(a);
        }
        assert!(
            seen.len() > 900,
            "chase must not cycle quickly: {}",
            seen.len()
        );
    }

    #[test]
    #[should_panic(expected = "region must hold at least one line")]
    fn chase_rejects_tiny_region() {
        let _ = PointerChase::new(0, 32, 1);
    }

    #[test]
    fn line_align_masks_low_bits() {
        assert_eq!(line_align(0), 0);
        assert_eq!(line_align(63), 0);
        assert_eq!(line_align(64), 64);
        assert_eq!(line_align(130), 128);
    }
}
