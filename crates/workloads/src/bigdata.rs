//! Big data workloads (paper Sec. III.A, Tab. 2).
//!
//! Four generators modeling the paper's big data suite. Target calibrated
//! parameters (measured on the simulated testbed, cf. Tab. 2):
//!
//! | Workload        | CPI_cache | BF   | MPKI | WBR  |
//! |-----------------|-----------|------|------|------|
//! | Structured Data | 0.89      | 0.20 | 5.6  | 32%  |
//! | NITS            | 0.96      | 0.18 | 5.0  | >100%|
//! | Spark           | 0.90      | 0.25 | 6.0  | 64%  |
//! | Proximity       | 0.93      | 0.03 | 0.5  | 47%  |

use crate::mix::{MixSpec, MixWorkload};

/// In-memory column store scanning compressed columns with decision-support
/// predicates (Sec. III.A.1).
///
/// Structure: a dense sequential scan over column segments (prefetchable),
/// dictionary decode against a cache-resident dictionary, a sprinkling of
/// dependent probes into join/aggregation hash tables that exceed the LLC,
/// and compressed result writes.
pub fn structured_data() -> MixSpec {
    MixSpec {
        seq_lines: 1.0,
        loads_per_line: 4,
        store_lines: 0.5,
        dep_probes: 0.35,
        hot_loads: 4.0,
        compute: 320,
        extra_dist: [0.68, 0.22, 0.07, 0.03, 0.0],
        ..MixSpec::base("Structured Data")
    }
}

/// Needle-in-the-haystack search over unstructured data (Sec. III.A.2).
///
/// Structure: full-dataset scan streamed in via heavy I/O DMA, bloom-filter
/// membership checks (cache-resident), occasional dependent verification
/// probes, and *non-temporal* result/staging writes — the reason the paper's
/// writeback rate exceeds 100% of misses.
pub fn nits() -> MixSpec {
    MixSpec {
        seq_lines: 1.0,
        loads_per_line: 4,
        dep_probes: 0.22,
        nt_lines: 1.45,
        hot_loads: 6.0,
        compute: 230,
        extra_dist: [0.66, 0.24, 0.07, 0.03, 0.0],
        io_bytes_per_instr: 0.07,
        ..MixSpec::base("NITS")
    }
}

/// Spark iterative graph analytics (Sec. III.A.4).
///
/// Structure: edge-list scans, dependent neighbor fetches into a graph that
/// exceeds the LLC, rank/state updates (heavy store traffic → high WBR),
/// map/reduce phase modulation of compute intensity, and ~70% CPU
/// utilization limited by dynamic thread-level parallelism.
pub fn spark() -> MixSpec {
    MixSpec {
        seq_lines: 0.4,
        loads_per_line: 4,
        store_lines: 1.3,
        dep_probes: 0.5,
        hot_loads: 3.0,
        compute: 355,
        extra_dist: [0.66, 0.22, 0.08, 0.04, 0.0],
        idle_cycles_per_unit: 190.0,
        phase_period: 64,
        phase_amplitude: 0.35,
        ..MixSpec::base("Spark")
    }
}

/// Proximity (dense) search (Sec. III.A.3).
///
/// Structure: the proximity metric prunes the search space, so almost all
/// time is spent decompressing and comparing cache-resident blocks — the
/// workload is core bound with an order-of-magnitude lower MPKI.
pub fn proximity() -> MixSpec {
    MixSpec {
        seq_lines: 0.12,
        loads_per_line: 4,
        store_lines: 0.07,
        hot_loads: 10.0,
        compute: 425,
        extra_dist: [0.63, 0.24, 0.09, 0.04, 0.0],
        ..MixSpec::base("Proximity")
    }
}

/// Builds the generator for a big data spec.
pub fn build(spec: MixSpec, seed: u64) -> MixWorkload {
    MixWorkload::new(spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_mpki_near_paper() {
        assert!((structured_data().predicted_mpki() - 5.6).abs() < 0.8);
        assert!((nits().predicted_mpki() - 5.0).abs() < 0.8);
        assert!((spark().predicted_mpki() - 6.0).abs() < 0.9);
        assert!((proximity().predicted_mpki() - 0.5).abs() < 0.15);
    }

    #[test]
    fn specs_valid() {
        for s in [structured_data(), nits(), spark(), proximity()] {
            s.assert_valid();
        }
    }

    #[test]
    fn nits_has_io_and_nt_stores() {
        let s = nits();
        assert!(s.io_bytes_per_instr > 0.0);
        assert!(s.nt_lines > s.expected_misses_per_unit(), "WBR > 100%");
    }

    #[test]
    fn spark_has_phases_and_idle() {
        let s = spark();
        assert!(s.phase_period > 0);
        assert!(s.idle_cycles_per_unit > 0.0);
    }

    #[test]
    fn proximity_is_core_bound_by_construction() {
        let s = proximity();
        assert!(s.dep_probes == 0.0);
        assert!(s.predicted_mpki() < 1.0);
    }

    #[test]
    fn build_produces_stream() {
        use memsense_sim::trace::InstructionStream;
        let mut w = build(structured_data(), 42);
        for _ in 0..100 {
            let _ = w.next_op();
        }
    }
}
