//! Multi-phase workloads (paper Sec. IV.D).
//!
//! Real jobs alternate between distinct behaviours — Spark's map vs shuffle,
//! OLTP's transactions vs checkpoints, a JVM's mutator vs GC. The paper
//! handles this by modeling phases independently and weighting them by
//! instruction count. [`MultiPhaseWorkload`] composes [`MixSpec`]s into such
//! a job: each phase runs for a configured number of instructions, with the
//! phase label exposed so samplers can attribute counters.

use memsense_sim::trace::{InstructionStream, Op, OpBlock};

use crate::mix::{MixSpec, MixWorkload};

/// One phase of a multi-phase job.
#[derive(Debug)]
pub struct Phase {
    /// Label surfaced through [`InstructionStream::phase`].
    pub label: String,
    /// Instructions the phase runs before yielding to the next.
    pub instructions: u64,
    generator: MixWorkload,
}

impl Phase {
    /// Creates a phase running `spec` for `instructions` retired ops.
    ///
    /// # Panics
    ///
    /// Panics when `instructions` is zero or the spec is invalid.
    pub fn new(label: impl Into<String>, spec: MixSpec, instructions: u64, seed: u64) -> Self {
        assert!(instructions > 0, "phase must run at least one instruction");
        Phase {
            label: label.into(),
            instructions,
            generator: MixWorkload::new(spec, seed),
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &MixSpec {
        self.generator.spec()
    }
}

/// A workload cycling through phases round-robin by instruction budget.
#[derive(Debug)]
pub struct MultiPhaseWorkload {
    phases: Vec<Phase>,
    current: usize,
    retired_in_phase: u64,
}

impl MultiPhaseWorkload {
    /// Builds the job from its phases.
    ///
    /// # Panics
    ///
    /// Panics when `phases` is empty.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "at least one phase required");
        MultiPhaseWorkload {
            phases,
            current: 0,
            retired_in_phase: 0,
        }
    }

    /// Relative instruction weights of the phases, for feeding
    /// `memsense_model::phases::PhasedWorkload`.
    pub fn weights(&self) -> Vec<f64> {
        self.phases.iter().map(|p| p.instructions as f64).collect()
    }

    /// Index of the currently executing phase.
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// Clones of the per-phase specs, in phase order.
    pub fn phase_specs(&self) -> Vec<MixSpec> {
        self.phases.iter().map(|p| p.spec().clone()).collect()
    }
}

impl InstructionStream for MultiPhaseWorkload {
    fn next_op(&mut self) -> Op {
        if self.retired_in_phase >= self.phases[self.current].instructions {
            self.current = (self.current + 1) % self.phases.len();
            self.retired_in_phase = 0;
        }
        // Pull from the current phase's generator; only count retired
        // instructions (idle ops don't advance the budget).
        let op = self.phases[self.current].generator.next_op();
        if !op.idle {
            self.retired_in_phase += 1;
        }
        op
    }

    fn phase(&self) -> &str {
        &self.phases[self.current].label
    }

    fn io_bytes_per_instruction(&self) -> f64 {
        self.phases[self.current].spec().io_bytes_per_instr
    }

    fn fill_block(&mut self, block: &mut OpBlock, n: usize) {
        block.clear();
        let mut filled = 0;
        while filled < n {
            if self.retired_in_phase >= self.phases[self.current].instructions {
                self.current = (self.current + 1) % self.phases.len();
                self.retired_in_phase = 0;
            }
            // Pull ops from the current phase until it exhausts its budget
            // or the block is full; the generator call is direct (no virtual
            // dispatch) and the phase/io annotations are recorded once per
            // run instead of once per op. As in `next_op`, the op that
            // retires the last budgeted instruction still carries this
            // phase's label — the switch happens before the *next* pull.
            let p = &mut self.phases[self.current];
            let budget = p.instructions;
            let mut run = 0u32;
            while filled < n && self.retired_in_phase < budget {
                let op = p.generator.next_op();
                if !op.idle {
                    self.retired_in_phase += 1;
                }
                block.push_op(op);
                run += 1;
                filled += 1;
            }
            block.note_phase_n(&p.label, run);
            block.note_io_n(p.generator.spec().io_bytes_per_instr, run);
        }
    }
}

/// A ready-made two-phase Spark-like job: a memory-heavy shuffle phase and a
/// compute-heavy map phase, 1:3 by instructions.
pub fn spark_job(seed: u64) -> MultiPhaseWorkload {
    let shuffle = MixSpec {
        seq_lines: 0.5,
        store_lines: 1.8,
        dep_probes: 0.8,
        compute: 260,
        extra_dist: [0.70, 0.20, 0.07, 0.03, 0.0],
        ..MixSpec::base("shuffle")
    };
    let map = MixSpec {
        seq_lines: 0.4,
        store_lines: 0.3,
        hot_loads: 4.0,
        compute: 420,
        extra_dist: [0.60, 0.25, 0.10, 0.05, 0.0],
        ..MixSpec::base("map")
    };
    MultiPhaseWorkload::new(vec![
        Phase::new("shuffle", shuffle, 25_000, seed),
        Phase::new("map", map, 75_000, seed ^ 0xabc),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsense_sim::{Machine, SimConfig};

    #[test]
    fn phases_alternate_by_instruction_budget() {
        let a = MixSpec {
            compute: 10,
            ..MixSpec::base("a")
        };
        let b = MixSpec {
            compute: 10,
            ..MixSpec::base("b")
        };
        let mut w =
            MultiPhaseWorkload::new(vec![Phase::new("a", a, 100, 1), Phase::new("b", b, 50, 2)]);
        let mut seen = Vec::new();
        for _ in 0..300 {
            w.next_op();
            seen.push(w.phase().to_string());
        }
        assert!(seen[..90].iter().all(|p| p == "a"));
        assert!(seen[110..140].iter().all(|p| p == "b"));
        assert!(seen[160..240].iter().all(|p| p == "a"), "wraps around");
    }

    #[test]
    fn weights_reflect_instruction_budgets() {
        let job = spark_job(7);
        assert_eq!(job.weights(), vec![25_000.0, 75_000.0]);
        assert_eq!(job.current_phase(), 0);
    }

    #[test]
    fn spark_job_phases_have_distinct_cpi() {
        // Measure each phase in isolation on the testbed: shuffle must be
        // memory-heavier (higher MPKI) than map.
        let measure = |spec: MixSpec| {
            let cfg = SimConfig::xeon_like(2);
            let streams: Vec<memsense_sim::trace::BoxedStream> = (0..2)
                .map(|t| {
                    Box::new(MixWorkload::new(spec.clone(), 13 + t))
                        as memsense_sim::trace::BoxedStream
                })
                .collect();
            let mut m = Machine::new(cfg, streams).unwrap();
            m.run_ops(40_000);
            m.measure_for_ns(60_000.0).unwrap()
        };
        let job = spark_job(1);
        let shuffle = measure(job.phases[0].spec().clone());
        let map = measure(job.phases[1].spec().clone());
        assert!(
            shuffle.mpki > 2.0 * map.mpki,
            "shuffle {} vs map {}",
            shuffle.mpki,
            map.mpki
        );
    }

    #[test]
    fn multiphase_runs_on_machine() {
        let cfg = SimConfig::xeon_like(1);
        let mut m = Machine::new(cfg, vec![Box::new(spark_job(3))]).unwrap();
        m.run_ops(150_000);
        let c = m.total_counters();
        assert!(c.instructions >= 150_000);
        assert!(c.llc_demand_misses > 0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = MultiPhaseWorkload::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_budget_rejected() {
        let _ = Phase::new("x", MixSpec::base("x"), 0, 1);
    }
}
