//! The parametrized workload engine.
//!
//! Every paper workload decomposes into the same ingredients at different
//! ratios: sequential (prefetchable) scans, dependent pointer probes into a
//! large footprint, store traffic that produces dirty writebacks,
//! non-temporal stores, cache-resident "hot" accesses, compute with a
//! characteristic latency mix, I/O DMA, idle time, and phase modulation.
//! [`MixSpec`] captures those ratios; [`MixWorkload`] turns a spec into an
//! [`InstructionStream`] the simulator executes. The per-workload modules
//! ([`crate::bigdata`], [`crate::enterprise`], [`crate::hpc`]) provide the
//! tuned specs.

use memsense_sim::trace::{InstructionStream, Op, OpBlock};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::patterns::{
    mix_rng, PointerChase, SequentialScan, StridedScan, UniformRandom, ZipfSampler,
};

/// Probabilities of an instruction costing 0, 1, 2, 4, or 8 extra cycles.
/// Controls the workload's `CPI_cache`.
pub type ExtraCycleDist = [f64; 5];

const EXTRA_CYCLE_VALUES: [u32; 5] = [0, 1, 2, 4, 8];

/// Per-unit-of-work ratios defining a workload. Counts may be fractional;
/// the generator carries credit across units.
#[derive(Debug, Clone)]
pub struct MixSpec {
    /// Workload name (matches the paper's Tab. 2/4/5 rows).
    pub name: &'static str,
    /// Sequential scan lines consumed per unit (prefetch-friendly reads).
    pub seq_lines: f64,
    /// Loads issued per scanned line (elements per line actually touched).
    pub loads_per_line: u32,
    /// Byte stride between consecutive scan lines (64 = dense; larger for
    /// lattice sweeps). Must be a multiple of 64.
    pub seq_stride: u64,
    /// Store lines per unit into the large footprint (drives `WBR`).
    pub store_lines: f64,
    /// Dependent (pointer-chase) loads per unit into the large footprint —
    /// each exposes the full miss penalty (drives `BF`).
    pub dep_probes: f64,
    /// Dependent loads addressed by Zipf-distributed object popularity over
    /// the large footprint: hot objects stay cache resident, so the
    /// *effective* miss rate emerges from the skew (web-cache GETs, OLTP
    /// hot rows).
    pub zipf_loads: f64,
    /// Zipf exponent for [`MixSpec::zipf_loads`] (≈0.99 for web traffic).
    pub zipf_theta: f64,
    /// Independent random loads per unit into the large footprint. At the
    /// MPKI of these workloads they rarely overlap, so they also stall, but
    /// they model gather traffic distinctly.
    pub indep_loads: f64,
    /// Non-temporal store lines per unit (cache-bypassing writes; pushes
    /// `WBR` above 100% as in NITS).
    pub nt_lines: f64,
    /// Loads per unit into the cache-resident hot region (index nodes,
    /// dictionaries, metadata).
    pub hot_loads: f64,
    /// Plain compute instructions per unit.
    pub compute: u32,
    /// Extra-cycle distribution for compute instructions.
    pub extra_dist: ExtraCycleDist,
    /// Large footprint size in bytes (must dwarf the LLC slice).
    pub big_region: u64,
    /// Hot footprint size in bytes (should fit the LLC slice).
    pub hot_region: u64,
    /// DMA bytes per retired instruction (`IOPI × IOSZ`).
    pub io_bytes_per_instr: f64,
    /// Halted cycles appended per unit (models <100% CPU utilization).
    pub idle_cycles_per_unit: f64,
    /// Period (in units) of the compute-intensity modulation; 0 disables.
    pub phase_period: u64,
    /// Relative amplitude of the modulation (e.g. 0.3 → ±30% compute).
    pub phase_amplitude: f64,
}

impl MixSpec {
    /// A neutral spec: pure compute, no memory traffic. Workload modules
    /// override fields from this base.
    pub fn base(name: &'static str) -> Self {
        MixSpec {
            name,
            seq_lines: 0.0,
            loads_per_line: 4,
            seq_stride: 64,
            store_lines: 0.0,
            dep_probes: 0.0,
            zipf_loads: 0.0,
            zipf_theta: 0.99,
            indep_loads: 0.0,
            nt_lines: 0.0,
            hot_loads: 0.0,
            compute: 100,
            extra_dist: [1.0, 0.0, 0.0, 0.0, 0.0],
            big_region: 32 * 1024 * 1024,
            hot_region: 16 * 1024,
            io_bytes_per_instr: 0.0,
            idle_cycles_per_unit: 0.0,
            phase_period: 0,
            phase_amplitude: 0.0,
        }
    }

    /// Returns a copy with the memory footprints scaled by `factor`
    /// (e.g. 4.0 quadruples the working sets for a larger simulated LLC).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scaled_footprint(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "factor must be > 0");
        self.big_region = ((self.big_region as f64 * factor) as u64).max(1024 * 1024);
        self.hot_region = ((self.hot_region as f64 * factor) as u64).max(4096);
        self
    }

    /// Fraction of Zipf-addressed loads expected to miss (the cold tail;
    /// a first-order estimate used only for spec sanity checks).
    pub const ZIPF_MISS_ESTIMATE: f64 = 0.8;

    /// Expected LLC misses per unit (scan + store + probe + gather lines +
    /// the cold tail of Zipf loads).
    pub fn expected_misses_per_unit(&self) -> f64 {
        self.seq_lines
            + self.store_lines
            + self.dep_probes
            + self.indep_loads
            + self.zipf_loads * Self::ZIPF_MISS_ESTIMATE
    }

    /// Expected instructions per unit.
    pub fn expected_instructions_per_unit(&self) -> f64 {
        self.seq_lines * self.loads_per_line as f64
            + self.store_lines * 4.0
            + self.dep_probes
            + self.zipf_loads
            + self.indep_loads
            + self.nt_lines
            + self.hot_loads
            + self.compute as f64
    }

    /// First-order MPKI prediction (misses incl. prefetch fills per 1000
    /// instructions), for spec sanity checks.
    pub fn predicted_mpki(&self) -> f64 {
        self.expected_misses_per_unit() / self.expected_instructions_per_unit() * 1000.0
    }

    /// Mean extra cycles per compute instruction.
    pub fn mean_extra_cycles(&self) -> f64 {
        self.extra_dist
            .iter()
            .zip(EXTRA_CYCLE_VALUES)
            .map(|(p, v)| p * v as f64)
            .sum()
    }

    /// Validates that the distribution sums to ~1 and counts are sane.
    ///
    /// # Panics
    ///
    /// Panics on an invalid spec (these are compiled-in constants, so a bad
    /// spec is a programming error, not a runtime condition).
    pub fn assert_valid(&self) {
        let sum: f64 = self.extra_dist.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "{}: extra_dist must sum to 1, got {sum}",
            self.name
        );
        assert!(self.seq_stride.is_multiple_of(64) && self.seq_stride > 0);
        assert!(self.big_region >= 1024 * 1024, "big region too small");
        assert!(self.hot_region >= 4096, "hot region too small");
        assert!(self.loads_per_line >= 1);
        assert!(self.zipf_theta >= 0.0 && self.zipf_theta.is_finite());
        assert!(
            [
                self.seq_lines,
                self.store_lines,
                self.dep_probes,
                self.zipf_loads,
                self.indep_loads,
                self.nt_lines,
                self.hot_loads,
                self.io_bytes_per_instr,
                self.idle_cycles_per_unit,
                self.phase_amplitude,
            ]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0),
            "{}: negative or non-finite rate",
            self.name
        );
    }
}

/// Fractional-credit counter: turns per-unit rates into integer counts.
#[derive(Debug, Clone, Default)]
struct Credit(f64);

impl Credit {
    fn take(&mut self, rate: f64) -> u32 {
        self.0 += rate;
        let n = self.0.floor();
        self.0 -= n;
        n as u32
    }
}

/// An [`InstructionStream`] generated from a [`MixSpec`].
#[derive(Debug)]
pub struct MixWorkload {
    spec: MixSpec,
    /// Ops for the current unit; consumed from `head`, reused across
    /// refills so steady-state generation performs no allocation.
    buf: Vec<Op>,
    head: usize,
    rng: SmallRng,
    scan: ScanKind,
    store_scan: SequentialScan,
    nt_scan: SequentialScan,
    chase: PointerChase,
    gather: UniformRandom,
    hot: UniformRandom,
    zipf: Option<ZipfSampler>,
    seq_credit: Credit,
    store_credit: Credit,
    dep_credit: Credit,
    zipf_credit: Credit,
    indep_credit: Credit,
    nt_credit: Credit,
    hot_credit: Credit,
    idle_credit: Credit,
    unit: u64,
    phase_name: &'static str,
}

#[derive(Debug)]
enum ScanKind {
    Dense(SequentialScan),
    Strided(StridedScan),
}

impl ScanKind {
    fn next_addr(&mut self) -> u64 {
        match self {
            ScanKind::Dense(s) => s.next_addr(),
            ScanKind::Strided(s) => s.next_addr(),
        }
    }
}

/// Address-space layout: distinct, non-overlapping bases for each traffic
/// class so streams do not alias.
const SCAN_BASE: u64 = 0x1_0000_0000;
const STORE_BASE: u64 = 0x2_0000_0000;
const NT_BASE: u64 = 0x3_0000_0000;
const CHASE_BASE: u64 = 0x4_0000_0000;
const GATHER_BASE: u64 = 0x5_0000_0000;
const HOT_BASE: u64 = 0x6_0000_0000;
const ZIPF_BASE: u64 = 0x7_0000_0000;

impl MixWorkload {
    /// Builds the stream for `spec`, seeded deterministically.
    pub fn new(spec: MixSpec, seed: u64) -> Self {
        spec.assert_valid();
        let scan = if spec.seq_stride == 64 {
            ScanKind::Dense(SequentialScan::new(SCAN_BASE, spec.big_region, 64))
        } else {
            ScanKind::Strided(StridedScan::new(
                SCAN_BASE,
                spec.big_region,
                spec.seq_stride,
            ))
        };
        MixWorkload {
            store_scan: SequentialScan::new(STORE_BASE, spec.big_region, 64),
            nt_scan: SequentialScan::new(NT_BASE, spec.big_region, 64),
            chase: PointerChase::new(CHASE_BASE, spec.big_region, seed ^ 0xc4a5e),
            gather: UniformRandom::new(GATHER_BASE, spec.big_region, seed ^ 0x6a783),
            hot: UniformRandom::new(HOT_BASE, spec.hot_region, seed ^ 0x407),
            zipf: if spec.zipf_loads > 0.0 {
                // One "object" per line across the large footprint, capped
                // so CDF construction stays cheap.
                let objects = (spec.big_region / 64).min(262_144) as usize;
                Some(ZipfSampler::new(objects, spec.zipf_theta, seed ^ 0x21bf))
            } else {
                None
            },
            rng: mix_rng(seed),
            scan,
            spec,
            buf: Vec::new(),
            head: 0,
            seq_credit: Credit::default(),
            store_credit: Credit::default(),
            dep_credit: Credit::default(),
            zipf_credit: Credit::default(),
            indep_credit: Credit::default(),
            nt_credit: Credit::default(),
            hot_credit: Credit::default(),
            idle_credit: Credit::default(),
            unit: 0,
            phase_name: "steady",
        }
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &MixSpec {
        &self.spec
    }

    fn compute_op(&mut self) -> Op {
        let u: f64 = self.rng.gen();
        let mut acc = 0.0;
        for (p, v) in self.spec.extra_dist.iter().zip(EXTRA_CYCLE_VALUES) {
            acc += p;
            if u < acc {
                return Op::compute_heavy(v);
            }
        }
        Op::compute()
    }

    fn refill(&mut self) {
        self.unit += 1;

        // Phase modulation of compute intensity (Spark's variable CPI).
        let compute = if self.spec.phase_period > 0 {
            let phase = (self.unit % self.spec.phase_period) as f64 / self.spec.phase_period as f64;
            let wave = (phase * core::f64::consts::TAU).sin();
            self.phase_name = if wave >= 0.0 { "map" } else { "reduce" };
            ((self.spec.compute as f64) * (1.0 + self.spec.phase_amplitude * wave)).round() as u32
        } else {
            self.spec.compute
        };

        // This unit's memory-event counts, in a fixed schedule order. A
        // plain array (no per-refill allocation): the round-robin interleave
        // below walks it pass by pass, emitting one event of every kind with
        // remaining count per pass, so e.g. all dependent probes don't
        // cluster at the front of the unit.
        const SEQ: usize = 0;
        const STORE: usize = 1;
        const DEP: usize = 2;
        const ZIPF: usize = 3;
        const INDEP: usize = 4;
        const NT: usize = 5;
        const HOT: usize = 6;
        let mut counts: [u32; 7] = [
            self.seq_credit.take(self.spec.seq_lines),
            self.store_credit.take(self.spec.store_lines),
            self.dep_credit.take(self.spec.dep_probes),
            self.zipf_credit.take(self.spec.zipf_loads),
            self.indep_credit.take(self.spec.indep_loads),
            self.nt_credit.take(self.spec.nt_lines),
            self.hot_credit.take(self.spec.hot_loads),
        ];
        let total_events: usize = counts.iter().map(|&c| c as usize).sum();

        // Spread compute — and idle time — evenly between memory events so
        // traffic is paced rather than bursty.
        let slots = total_events.max(1);
        let per_slot = compute as usize / slots;
        let mut extra_budget = compute as usize % slots;
        let idle_total = self
            .idle_credit
            .take(self.spec.idle_cycles_per_unit / slots as f64 * slots as f64);
        let idle_chunk = idle_total / slots as u32;
        let mut idle_left = idle_total;

        let mut remaining = total_events;
        while remaining > 0 {
            // `kind` is matched against the SEQ..=HOT constants below, so the
            // index itself carries meaning; an enumerate() rewrite obscures it.
            #[allow(clippy::needless_range_loop)]
            for kind in SEQ..=HOT {
                if counts[kind] == 0 {
                    continue;
                }
                counts[kind] -= 1;
                remaining -= 1;
                match kind {
                    SEQ => {
                        let addr = self.scan.next_addr();
                        for k in 0..self.spec.loads_per_line {
                            self.buf.push(Op::load(addr + (k as u64 * 8) % 64));
                        }
                    }
                    STORE => {
                        let addr = self.store_scan.next_addr() & !63;
                        for k in 0..4u64 {
                            self.buf.push(Op::store(addr + k * 16));
                        }
                    }
                    DEP => {
                        let addr = self.chase.next_addr();
                        self.buf.push(Op::dependent_load(addr));
                    }
                    ZIPF => {
                        // memsense-lint: allow(no-panic-in-lib) — the schedule only emits a zipf event when the sampler was built
                        let rank = self
                            .zipf
                            .as_mut()
                            .expect("zipf sampler present when zipf_loads > 0")
                            .sample() as u64;
                        // Popular ranks (low numbers) map to a compact region
                        // that stays cache resident; the tail misses.
                        self.buf.push(Op::dependent_load(ZIPF_BASE + rank * 64));
                    }
                    INDEP => {
                        let addr = self.gather.next_addr();
                        self.buf.push(Op::load(addr));
                    }
                    NT => {
                        let addr = self.nt_scan.next_addr();
                        self.buf.push(Op::nt_store(addr));
                    }
                    _ => {
                        let addr = self.hot.next_addr();
                        self.buf.push(Op::load(addr));
                    }
                }
                let n = per_slot + usize::from(extra_budget > 0);
                extra_budget = extra_budget.saturating_sub(1);
                for _ in 0..n {
                    let op = self.compute_op();
                    self.buf.push(op);
                }
                if idle_chunk > 0 {
                    self.buf.push(Op::idle(idle_chunk));
                    idle_left -= idle_chunk;
                }
            }
        }
        if slots == 1 && self.buf.is_empty() {
            for _ in 0..compute {
                let op = self.compute_op();
                self.buf.push(op);
            }
        }
        if idle_left > 0 {
            self.buf.push(Op::idle(idle_left));
        }
    }
}

impl InstructionStream for MixWorkload {
    fn next_op(&mut self) -> Op {
        loop {
            if self.head < self.buf.len() {
                let op = self.buf[self.head];
                self.head += 1;
                return op;
            }
            self.buf.clear();
            self.head = 0;
            self.refill();
        }
    }

    fn phase(&self) -> &str {
        self.phase_name
    }

    fn io_bytes_per_instruction(&self) -> f64 {
        self.spec.io_bytes_per_instr
    }

    fn fill_block(&mut self, block: &mut OpBlock, n: usize) {
        block.clear();
        let mut filled = 0;
        while filled < n {
            if self.head == self.buf.len() {
                self.buf.clear();
                self.head = 0;
                self.refill();
                continue;
            }
            // Everything buffered came from one refill, so it all carries
            // the phase label that refill chose.
            let take = (self.buf.len() - self.head).min(n - filled);
            block
                .ops
                .extend_from_slice(&self.buf[self.head..self.head + take]);
            block.note_phase_n(self.phase_name, take as u32);
            self.head += take;
            filled += take;
        }
        block.note_io_n(self.spec.io_bytes_per_instr, n as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MixSpec {
        MixSpec {
            seq_lines: 1.0,
            store_lines: 0.5,
            dep_probes: 0.4,
            indep_loads: 0.25,
            hot_loads: 2.0,
            compute: 50,
            extra_dist: [0.5, 0.3, 0.1, 0.08, 0.02],
            ..MixSpec::base("test")
        }
    }

    #[test]
    fn op_counts_match_rates() {
        let s = spec();
        let mut w = MixWorkload::new(s.clone(), 1);
        let total_units = 400;
        let mut loads = 0u64;
        let mut dep = 0u64;
        let mut stores = 0u64;
        let n = (s.expected_instructions_per_unit() * total_units as f64) as u64;
        for _ in 0..n {
            let op = w.next_op();
            match op.access {
                Some((_, memsense_sim::AccessKind::Load { dependent: true })) => dep += 1,
                Some((_, memsense_sim::AccessKind::Load { dependent: false })) => loads += 1,
                Some((_, memsense_sim::AccessKind::Store)) => stores += 1,
                _ => {}
            }
        }
        let units = total_units as f64;
        // 0.4 dep probes per unit:
        assert!((dep as f64 / units - 0.4).abs() < 0.1, "dep {dep}");
        // 4 loads/line × 1 line + 0.25 gathers + 2 hot = 6.25 indep loads:
        assert!((loads as f64 / units - 6.25).abs() < 0.6, "loads {loads}");
        // 0.5 store lines × 4 stores:
        assert!((stores as f64 / units - 2.0).abs() < 0.4, "stores {stores}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = MixWorkload::new(spec(), 9);
        let mut b = MixWorkload::new(spec(), 9);
        for _ in 0..5_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = MixWorkload::new(spec(), 10);
        let differs = (0..5_000).any(|_| {
            let x = a.next_op();
            let y = c.next_op();
            x != y
        });
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn predicted_mpki_formula() {
        let s = spec();
        let misses = 1.0 + 0.5 + 0.4 + 0.25;
        let instrs = 4.0 + 2.0 + 0.4 + 0.25 + 2.0 + 50.0;
        assert!((s.predicted_mpki() - misses / instrs * 1000.0).abs() < 1e-9);
        assert!((s.expected_misses_per_unit() - misses).abs() < 1e-12);
    }

    #[test]
    fn mean_extra_cycles() {
        let s = spec();
        let want = 0.3 + 0.2 + 0.08 * 4.0 + 0.02 * 8.0;
        assert!((s.mean_extra_cycles() - want).abs() < 1e-9);
    }

    #[test]
    fn zipf_loads_skew_toward_hot_objects() {
        let mut s = MixSpec::base("zipfy");
        s.zipf_loads = 1.0;
        s.compute = 10;
        let mut w = MixWorkload::new(s, 5);
        let mut hot = 0u32;
        let mut total = 0u32;
        for _ in 0..20_000 {
            if let Some((addr, memsense_sim::AccessKind::Load { dependent: true })) =
                w.next_op().access
            {
                total += 1;
                // "Hot" = the first 256 objects (16 KiB of 16+ MiB).
                if addr < ZIPF_BASE + 256 * 64 {
                    hot += 1;
                }
            }
        }
        assert!(total > 1_000);
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.3, "zipf head share {frac}");
    }

    #[test]
    fn scaled_footprint_scales_regions() {
        let s = MixSpec::base("x").scaled_footprint(2.0);
        assert_eq!(s.big_region, 64 * 1024 * 1024);
        assert_eq!(s.hot_region, 32 * 1024);
        // Floors apply.
        let tiny = MixSpec::base("y").scaled_footprint(1e-9);
        assert_eq!(tiny.big_region, 1024 * 1024);
        assert_eq!(tiny.hot_region, 4096);
    }

    #[test]
    #[should_panic(expected = "factor must be > 0")]
    fn scaled_footprint_rejects_zero() {
        let _ = MixSpec::base("z").scaled_footprint(0.0);
    }

    #[test]
    fn idle_credit_emits_idle_ops() {
        let mut s = MixSpec::base("idler");
        s.compute = 10;
        s.idle_cycles_per_unit = 100.0;
        let mut w = MixWorkload::new(s, 1);
        let mut idles = 0;
        for _ in 0..1000 {
            if w.next_op().idle {
                idles += 1;
            }
        }
        assert!(idles > 50, "idle ops present: {idles}");
    }

    #[test]
    fn phase_modulation_changes_label() {
        let mut s = MixSpec::base("phased");
        s.compute = 20;
        s.phase_period = 10;
        s.phase_amplitude = 0.5;
        let mut w = MixWorkload::new(s, 1);
        let mut labels = std::collections::HashSet::new();
        for _ in 0..2_000 {
            w.next_op();
            labels.insert(w.phase().to_string());
        }
        assert!(
            labels.contains("map") && labels.contains("reduce"),
            "{labels:?}"
        );
    }

    #[test]
    #[should_panic(expected = "extra_dist must sum to 1")]
    fn invalid_dist_panics() {
        let mut s = MixSpec::base("bad");
        s.extra_dist = [0.5, 0.0, 0.0, 0.0, 0.0];
        let _ = MixWorkload::new(s, 1);
    }

    #[test]
    fn addresses_partition_by_class() {
        let mut s = MixSpec::base("addrs");
        s.seq_lines = 1.0;
        s.store_lines = 1.0;
        s.dep_probes = 1.0;
        s.nt_lines = 1.0;
        s.hot_loads = 1.0;
        s.compute = 5;
        let mut w = MixWorkload::new(s, 3);
        for _ in 0..1_000 {
            let op = w.next_op();
            if let Some((addr, kind)) = op.access {
                match kind {
                    memsense_sim::AccessKind::NonTemporalStore => {
                        assert!((NT_BASE..NT_BASE + 0x1_0000_0000).contains(&addr))
                    }
                    memsense_sim::AccessKind::Store => {
                        assert!((STORE_BASE..STORE_BASE + 0x1_0000_0000).contains(&addr))
                    }
                    memsense_sim::AccessKind::Load { dependent: true } => {
                        let in_chase = (CHASE_BASE..CHASE_BASE + 0x1_0000_0000).contains(&addr);
                        let in_zipf = (ZIPF_BASE..ZIPF_BASE + 0x1_0000_0000).contains(&addr);
                        assert!(in_chase || in_zipf);
                    }
                    memsense_sim::AccessKind::Load { dependent: false } => {
                        assert!(addr >= SCAN_BASE, "scan/gather/hot ranges")
                    }
                }
            }
        }
    }
}
