//! Synthetic workload generators for the memsense reproduction.
//!
//! The paper characterizes twelve commercial and benchmark workloads
//! (Sec. III) whose binaries and datasets are not available; each is rebuilt
//! here as a synthetic instruction stream with the same memory-behaviour
//! signature: sequential scans vs. pointer chases, store intensity,
//! non-temporal writes, cache-resident working sets, I/O DMA, idle time,
//! and phase structure. Run on the `memsense-sim` testbed, the generators
//! land in the neighbourhood of the paper's Tab. 2/4/5 calibrated
//! parameters; the calibration pipeline in `memsense-experiments` recovers
//! them exactly as the paper does (frequency sweeps + linear fits).
//!
//! * [`patterns`] — address-pattern samplers (scan, stride, Zipf, chase).
//! * [`mix`] — the parametrized generator ([`mix::MixSpec`]).
//! * [`bigdata`] / [`enterprise`] / [`hpc`] — tuned specs per workload.
//! * [`Workload`] — an enum naming all twelve, with factory methods.
//!
//! # Examples
//!
//! ```
//! use memsense_workloads::Workload;
//!
//! let all = Workload::all();
//! assert_eq!(all.len(), 14);
//! let mut stream = Workload::StructuredData.stream(42);
//! # use memsense_sim::InstructionStream;
//! let _op = stream.next_op();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigdata;
pub mod enterprise;
pub mod hpc;
pub mod mix;
pub mod multiphase;
pub mod patterns;

use memsense_sim::trace::BoxedStream;
use mix::{MixSpec, MixWorkload};

/// The paper's workloads: the twelve of Tabs. 2/4/5 plus the two
/// core-bound SPEC components Fig. 6 plots near the origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// In-memory column store (big data).
    StructuredData,
    /// Needle-in-the-haystack search (big data).
    Nits,
    /// Spark graph analytics (big data).
    Spark,
    /// Proximity search (big data, core bound).
    Proximity,
    /// OLTP brokerage database (enterprise).
    Oltp,
    /// Java middle tier (enterprise).
    Jvm,
    /// Virtualized consolidation (enterprise).
    Virtualization,
    /// Memcached-like web cache (enterprise).
    WebCaching,
    /// SPECfp 410.bwaves (HPC).
    Bwaves,
    /// SPECfp 433.milc (HPC).
    Milc,
    /// SPECfp 450.soplex (HPC).
    Soplex,
    /// SPECfp 481.wrf (HPC).
    Wrf,
    /// SPEC 453.povray-like ray tracer (HPC segment, core bound — the
    /// near-origin SPEC cluster of Fig. 6).
    Povray,
    /// SPEC 400.perlbench-like interpreter (HPC segment, core bound).
    Perlbench,
}

/// Usage segment, mirroring `memsense_model::Segment` without the
/// cross-dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Big data analytics.
    BigData,
    /// Enterprise serving.
    Enterprise,
    /// High-performance computing.
    Hpc,
}

impl Workload {
    /// All workloads, in the paper's presentation order.
    pub fn all() -> Vec<Workload> {
        use Workload::*;
        vec![
            StructuredData,
            Nits,
            Spark,
            Proximity,
            Oltp,
            Jvm,
            Virtualization,
            WebCaching,
            Bwaves,
            Milc,
            Soplex,
            Wrf,
            Povray,
            Perlbench,
        ]
    }

    /// The workload's usage segment.
    pub fn class(self) -> Class {
        use Workload::*;
        match self {
            StructuredData | Nits | Spark | Proximity => Class::BigData,
            Oltp | Jvm | Virtualization | WebCaching => Class::Enterprise,
            Bwaves | Milc | Soplex | Wrf | Povray | Perlbench => Class::Hpc,
        }
    }

    /// The workload's display name (matches the paper tables).
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// The tuned mix specification.
    pub fn spec(self) -> MixSpec {
        use Workload::*;
        match self {
            StructuredData => bigdata::structured_data(),
            Nits => bigdata::nits(),
            Spark => bigdata::spark(),
            Proximity => bigdata::proximity(),
            Oltp => enterprise::oltp(),
            Jvm => enterprise::jvm(),
            Virtualization => enterprise::virtualization(),
            WebCaching => enterprise::web_caching(),
            Bwaves => hpc::bwaves(),
            Milc => hpc::milc(),
            Soplex => hpc::soplex(),
            Wrf => hpc::wrf(),
            Povray => hpc::povray(),
            Perlbench => hpc::perlbench(),
        }
    }

    /// Builds a seeded generator.
    pub fn workload(self, seed: u64) -> MixWorkload {
        MixWorkload::new(self.spec(), seed)
    }

    /// Builds a boxed stream for the simulator.
    pub fn stream(self, seed: u64) -> BoxedStream {
        Box::new(self.workload(seed))
    }

    /// Builds one differently-seeded stream per hardware thread, as the
    /// paper runs one software thread (or program copy) per logical
    /// processor.
    pub fn streams(self, threads: u32, base_seed: u64) -> Vec<BoxedStream> {
        (0..threads)
            .map(|t| {
                self.stream(
                    base_seed
                        .wrapping_add(t as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                )
            })
            .collect()
    }
}

/// Error returned when parsing an unknown workload name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(String);

impl core::fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unknown workload: {}", self.0)
    }
}

impl std::error::Error for ParseWorkloadError {}

impl core::str::FromStr for Workload {
    type Err = ParseWorkloadError;

    /// Parses a workload by its display name (case-insensitive, spaces or
    /// underscores): `"structured data"`, `"nits"`, `"bwaves"`, …
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_lowercase().replace('_', " ");
        Workload::all()
            .into_iter()
            .find(|w| w.name().to_lowercase() == norm)
            .ok_or_else(|| ParseWorkloadError(s.to_string()))
    }
}

impl core::fmt::Display for Workload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_workloads_with_classes() {
        let all = Workload::all();
        assert_eq!(all.len(), 14);
        assert_eq!(
            all.iter().filter(|w| w.class() == Class::BigData).count(),
            4
        );
        assert_eq!(
            all.iter()
                .filter(|w| w.class() == Class::Enterprise)
                .count(),
            4
        );
        assert_eq!(all.iter().filter(|w| w.class() == Class::Hpc).count(), 6);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Workload::StructuredData.name(), "Structured Data");
        assert_eq!(Workload::Nits.to_string(), "NITS");
        assert_eq!(Workload::Bwaves.name(), "bwaves");
    }

    #[test]
    fn streams_are_distinct_per_thread() {
        let mut streams = Workload::Oltp.streams(2, 7);
        assert_eq!(streams.len(), 2);
        let a: Vec<_> = (0..200).map(|_| streams[0].next_op()).collect();
        let b: Vec<_> = (0..200).map(|_| streams[1].next_op()).collect();
        assert_ne!(a, b, "different seeds should diverge");
    }

    #[test]
    fn parse_workload_names() {
        assert_eq!(
            "structured data".parse::<Workload>().unwrap(),
            Workload::StructuredData
        );
        assert_eq!(
            "Structured_Data".parse::<Workload>().unwrap(),
            Workload::StructuredData
        );
        assert_eq!("NITS".parse::<Workload>().unwrap(), Workload::Nits);
        assert_eq!("bwaves".parse::<Workload>().unwrap(), Workload::Bwaves);
        assert!("nonexistent".parse::<Workload>().is_err());
    }

    #[test]
    fn every_workload_produces_ops() {
        for w in Workload::all() {
            let mut s = w.stream(1);
            for _ in 0..50 {
                let _ = s.next_op();
            }
        }
    }
}
