//! HPC proxy workloads: SPEC CPU2006 floating-point components
//! (paper Sec. III.C, Tab. 5).
//!
//! Target calibrated parameters (class mean: CPI_cache 0.75, BF 0.07,
//! MPKI 26.7, WBR 27%):
//!
//! | Component | CPI_cache | BF    | MPKI | WBR |
//! |-----------|-----------|-------|------|-----|
//! | bwaves    | ~0.70     | ~0.06 | 33   | 30% |
//! | milc      | ~0.72     | ~0.08 | 30   | 28% |
//! | soplex    | ~0.80     | ~0.09 | 21   | 25% |
//! | wrf       | ~0.78     | ~0.05 | 22.8 | 25% |
//!
//! These codes stream through arrays far larger than the LLC with regular
//! (unit-stride or small-stride) access — "the data access is also regular,
//! making prefetching highly effective" (Sec. VI.A) — which is exactly what
//! gives them enormous bandwidth demand and near-zero latency sensitivity.

use crate::mix::{MixSpec, MixWorkload};

/// 410.bwaves: blast-wave CFD. Dense unit-stride sweeps over multiple large
/// state arrays with fused multiply-add chains.
pub fn bwaves() -> MixSpec {
    MixSpec {
        seq_lines: 4.0,
        loads_per_line: 4,
        store_lines: 1.6,
        compute: 145,
        extra_dist: [0.72, 0.17, 0.07, 0.04, 0.0],
        big_region: 64 * 1024 * 1024,
        ..MixSpec::base("bwaves")
    }
}

/// 433.milc: lattice QCD. Dense sweeps over the lattice (SU(3) matrix
/// fields) with a small amount of gather traffic into neighbour tables.
pub fn milc() -> MixSpec {
    MixSpec {
        seq_lines: 4.0,
        loads_per_line: 4,
        store_lines: 1.5,
        indep_loads: 0.35,
        compute: 165,
        extra_dist: [0.70, 0.18, 0.08, 0.04, 0.0],
        big_region: 64 * 1024 * 1024,
        ..MixSpec::base("milc")
    }
}

/// 450.soplex: simplex LP solver. Sparse-matrix column sweeps with
/// irregular gathers into the constraint matrix.
pub fn soplex() -> MixSpec {
    MixSpec {
        seq_lines: 3.0,
        loads_per_line: 4,
        store_lines: 0.9,
        indep_loads: 0.2,
        hot_loads: 4.0,
        compute: 180,
        extra_dist: [0.62, 0.20, 0.10, 0.08, 0.0],
        big_region: 64 * 1024 * 1024,
        ..MixSpec::base("soplex")
    }
}

/// 481.wrf: weather stencil. Unit-stride sweeps over atmospheric state with
/// heavier per-point arithmetic than bwaves.
pub fn wrf() -> MixSpec {
    MixSpec {
        seq_lines: 3.4,
        loads_per_line: 4,
        store_lines: 0.9,
        indep_loads: 0.15,
        compute: 170,
        extra_dist: [0.66, 0.20, 0.08, 0.06, 0.0],
        big_region: 64 * 1024 * 1024,
        ..MixSpec::base("wrf")
    }
}

/// 453.povray-like ray tracer: almost entirely cache-resident — one of the
/// core-bound SPEC components the paper plots near the origin of Fig. 6
/// ("some components of the SPEC CPU suite also exhibit this
/// characteristic").
pub fn povray() -> MixSpec {
    MixSpec {
        seq_lines: 0.08,
        loads_per_line: 4,
        store_lines: 0.04,
        hot_loads: 14.0,
        compute: 420,
        extra_dist: [0.58, 0.26, 0.10, 0.06, 0.0],
        ..MixSpec::base("povray")
    }
}

/// 400.perlbench-like interpreter: branchy, pointer-rich, but within the
/// caches — the second core-bound SPEC component of Fig. 6's origin cluster.
pub fn perlbench() -> MixSpec {
    MixSpec {
        seq_lines: 0.10,
        loads_per_line: 4,
        store_lines: 0.06,
        hot_loads: 22.0,
        compute: 380,
        extra_dist: [0.48, 0.30, 0.13, 0.09, 0.0],
        ..MixSpec::base("perlbench")
    }
}

/// Builds the generator for an HPC spec.
pub fn build(spec: MixSpec, seed: u64) -> MixWorkload {
    MixWorkload::new(spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_mpki_near_paper() {
        assert!(
            (bwaves().predicted_mpki() - 33.0).abs() < 4.0,
            "{}",
            bwaves().predicted_mpki()
        );
        assert!(
            (milc().predicted_mpki() - 30.0).abs() < 4.0,
            "{}",
            milc().predicted_mpki()
        );
        assert!(
            (soplex().predicted_mpki() - 21.0).abs() < 3.0,
            "{}",
            soplex().predicted_mpki()
        );
        assert!(
            (wrf().predicted_mpki() - 22.8).abs() < 3.0,
            "{}",
            wrf().predicted_mpki()
        );
    }

    #[test]
    fn specs_valid() {
        for s in [bwaves(), milc(), soplex(), wrf()] {
            s.assert_valid();
        }
    }

    #[test]
    fn hpc_mpki_dwarfs_other_classes() {
        let hpc_min = [bwaves(), milc(), soplex(), wrf()]
            .iter()
            .map(|s| s.predicted_mpki())
            .fold(f64::INFINITY, f64::min);
        let ent_max = [
            crate::enterprise::oltp(),
            crate::enterprise::jvm(),
            crate::enterprise::virtualization(),
            crate::enterprise::web_caching(),
        ]
        .iter()
        .map(|s| s.predicted_mpki())
        .fold(0.0, f64::max);
        assert!(hpc_min > 2.0 * ent_max, "{hpc_min} vs {ent_max}");
    }

    #[test]
    fn hpc_has_few_dependent_probes() {
        for s in [bwaves(), milc(), soplex(), wrf()] {
            let stall_frac = (s.dep_probes + s.indep_loads) / s.expected_misses_per_unit();
            assert!(stall_frac < 0.12, "{}: stall fraction {stall_frac}", s.name);
        }
    }

    #[test]
    fn hpc_light_compute_mix() {
        for s in [bwaves(), milc(), soplex(), wrf()] {
            assert!(s.mean_extra_cycles() < 0.85, "{}", s.name);
        }
    }

    #[test]
    fn core_bound_spec_components_near_origin() {
        for s in [povray(), perlbench()] {
            assert!(
                s.predicted_mpki() < 1.2,
                "{}: MPKI {}",
                s.name,
                s.predicted_mpki()
            );
            assert_eq!(s.dep_probes, 0.0, "{}", s.name);
            s.assert_valid();
        }
    }

    #[test]
    fn build_produces_stream() {
        use memsense_sim::trace::InstructionStream;
        let mut w = build(milc(), 1);
        for _ in 0..100 {
            let _ = w.next_op();
        }
    }
}
