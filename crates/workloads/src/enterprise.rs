//! Enterprise workloads (paper Sec. III.B, Tab. 4).
//!
//! Target calibrated parameters (class mean: CPI_cache 1.47, BF 0.41,
//! MPKI 6.7, WBR 27%):
//!
//! | Workload       | CPI_cache | BF   | MPKI | WBR |
//! |----------------|-----------|------|------|-----|
//! | OLTP           | ~1.65     | 0.45 | 7.5  | 25% |
//! | JVM            | ~1.20     | 0.38 | 5.2  | 35% |
//! | Virtualization | ~1.55     | 0.42 | 7.0  | 24% |
//! | Web Caching    | ~1.48     | 0.39 | 7.1  | 24% |
//!
//! Enterprise codes are dominated by dependent pointer traversals (B-trees,
//! object graphs, VM page structures, hash chains) that prefetchers cannot
//! cover — hence the high blocking factors the paper reports (Sec. VI.A).

use crate::mix::{MixSpec, MixWorkload};

/// Brokerage OLTP on a commercial DBMS (Sec. V.J): B-tree descents, row
/// touches, log appends, buffer-pool metadata, and moderate storage I/O.
pub fn oltp() -> MixSpec {
    MixSpec {
        seq_lines: 2.4,
        loads_per_line: 4,
        store_lines: 1.7,
        dep_probes: 3.0,
        hot_loads: 14.0,
        compute: 905,
        extra_dist: [0.38, 0.30, 0.17, 0.12, 0.03],
        io_bytes_per_instr: 0.03,
        ..MixSpec::base("OLTP")
    }
}

/// Java middle tier (Sec. V.K): object-graph chasing through a heap larger
/// than the LLC, allocation stores, and GC sweep scans. Little I/O.
pub fn jvm() -> MixSpec {
    MixSpec {
        seq_lines: 1.5,
        loads_per_line: 4,
        store_lines: 1.8,
        dep_probes: 2.0,
        hot_loads: 10.0,
        compute: 985,
        extra_dist: [0.52, 0.28, 0.12, 0.07, 0.01],
        ..MixSpec::base("JVM")
    }
}

/// Virtualized server consolidation (Sec. V.L): a blend of mail, app, and
/// web serving under a hypervisor — deep software stacks (high `CPI_cache`)
/// and scattered dependent accesses across many VM working sets.
pub fn virtualization() -> MixSpec {
    MixSpec {
        seq_lines: 2.4,
        loads_per_line: 4,
        store_lines: 1.7,
        dep_probes: 3.0,
        hot_loads: 12.0,
        compute: 960,
        extra_dist: [0.40, 0.30, 0.17, 0.11, 0.02],
        ..MixSpec::base("Virtualization")
    }
}

/// Memcached-like web-tier cache (Sec. V.M): hash-bucket walk plus 64 B
/// object fetch per GET, LRU/statistics updates, and ~50% utilization (half
/// the virtual processors were left to network processing in the paper's
/// setup).
pub fn web_caching() -> MixSpec {
    MixSpec {
        seq_lines: 1.9,
        loads_per_line: 4,
        store_lines: 1.2,
        zipf_loads: 2.4,
        zipf_theta: 0.9,
        hot_loads: 9.0,
        compute: 690,
        extra_dist: [0.40, 0.30, 0.16, 0.11, 0.03],
        idle_cycles_per_unit: 1450.0,
        ..MixSpec::base("Web Caching")
    }
}

/// Builds the generator for an enterprise spec.
pub fn build(spec: MixSpec, seed: u64) -> MixWorkload {
    MixWorkload::new(spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_mpki_near_paper() {
        assert!(
            (oltp().predicted_mpki() - 7.5).abs() < 1.0,
            "{}",
            oltp().predicted_mpki()
        );
        assert!(
            (jvm().predicted_mpki() - 5.2).abs() < 0.8,
            "{}",
            jvm().predicted_mpki()
        );
        assert!(
            (virtualization().predicted_mpki() - 7.0).abs() < 1.0,
            "{}",
            virtualization().predicted_mpki()
        );
        assert!(
            (web_caching().predicted_mpki() - 7.1).abs() < 1.0,
            "{}",
            web_caching().predicted_mpki()
        );
    }

    #[test]
    fn specs_valid() {
        for s in [oltp(), jvm(), virtualization(), web_caching()] {
            s.assert_valid();
        }
    }

    #[test]
    fn dependent_fraction_matches_target_bf() {
        // The fitted BF tracks the stalled-miss fraction: dep / total misses.
        for (s, bf) in [
            (oltp(), 0.45),
            (jvm(), 0.38),
            (virtualization(), 0.42),
            (web_caching(), 0.39),
        ] {
            let stalled = s.dep_probes + s.zipf_loads * MixSpec::ZIPF_MISS_ESTIMATE;
            let frac = stalled / s.expected_misses_per_unit();
            assert!(
                (frac - bf).abs() < 0.06,
                "{}: dep fraction {frac} vs target BF {bf}",
                s.name
            );
        }
    }

    #[test]
    fn oltp_does_io_jvm_does_not() {
        assert!(oltp().io_bytes_per_instr > 0.0);
        assert_eq!(jvm().io_bytes_per_instr, 0.0);
    }

    #[test]
    fn web_caching_uses_zipf_popularity() {
        let s = web_caching();
        assert!(s.zipf_loads > 0.0);
        assert!(s.zipf_theta > 0.5, "web traffic is strongly skewed");
        assert_eq!(s.dep_probes, 0.0, "GET path is zipf-addressed");
    }

    #[test]
    fn web_caching_half_idle() {
        let s = web_caching();
        assert!(s.idle_cycles_per_unit > 1000.0);
    }

    #[test]
    fn enterprise_heavier_cpi_than_bigdata() {
        // Enterprise compute mixes carry more long-latency instructions.
        let ent = oltp().mean_extra_cycles();
        let big = crate::bigdata::structured_data().mean_extra_cycles();
        assert!(ent > big + 0.3, "{ent} vs {big}");
    }

    #[test]
    fn build_produces_stream() {
        use memsense_sim::trace::InstructionStream;
        let mut w = build(oltp(), 1);
        for _ in 0..100 {
            let _ = w.next_op();
        }
    }
}
