//! Block-vs-scalar differential for the workload generators.
//!
//! `MixWorkload` and `MultiPhaseStream` override
//! [`InstructionStream::fill_block`] to drain their internal buffers in
//! bulk with run-length phase/I/O attribution. The contract is strict:
//! `fill_block(n)` must be equivalent to `n` successive `next_op` calls,
//! each annotated with the `phase()` and `io_bytes_per_instruction()`
//! observable right after that `next_op` returned. These tests drive a
//! blocked stream and a per-op twin (same workload, same seed) and compare
//! the full `(op, phase, io)` sequences across awkward block sizes —
//! including boundaries that split refill buffers and phase runs.

use memsense_sim::trace::{Op, OpBlock};
use memsense_workloads::Workload;

/// Expands a filled block's run-length sidecars into one `(op, phase, io)`
/// triple per op, checking that the runs exactly cover the ops.
fn expand(block: &OpBlock) -> Vec<(Op, String, f64)> {
    let mut phases: Vec<String> = Vec::new();
    for i in 0..block.phase_run_count() {
        let (n, label) = block.phase_run(i);
        for _ in 0..n {
            phases.push(label.to_string());
        }
    }
    let mut ios: Vec<f64> = Vec::new();
    let mut i = 0;
    loop {
        let (n, rate) = block.io_run(i);
        if n == 0 {
            break;
        }
        for _ in 0..n {
            ios.push(rate);
        }
        i += 1;
    }
    assert_eq!(phases.len(), block.ops.len(), "phase runs must cover ops");
    assert_eq!(ios.len(), block.ops.len(), "io runs must cover ops");
    block
        .ops
        .iter()
        .zip(phases)
        .zip(ios)
        .map(|((&op, phase), io)| (op, phase, io))
        .collect()
}

#[test]
fn fill_block_matches_per_op_path_for_every_workload() {
    const TOTAL_OPS: usize = 6_000;
    for workload in Workload::all() {
        for block_size in [1usize, 7, 32, 33, 129] {
            let mut blocked = workload.streams(1, 0xd1ff).remove(0);
            let mut scalar = workload.streams(1, 0xd1ff).remove(0);
            let mut block = OpBlock::new();
            let mut got: Vec<(Op, String, f64)> = Vec::new();
            while got.len() < TOTAL_OPS {
                let n = block_size.min(TOTAL_OPS - got.len());
                blocked.fill_block(&mut block, n);
                assert_eq!(
                    block.ops.len(),
                    n,
                    "{}: fill_block({n}) must produce exactly n ops",
                    workload.name()
                );
                got.extend(expand(&block));
            }
            let want: Vec<(Op, String, f64)> = (0..TOTAL_OPS)
                .map(|_| {
                    let op = scalar.next_op();
                    (
                        op,
                        scalar.phase().to_string(),
                        scalar.io_bytes_per_instruction(),
                    )
                })
                .collect();
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g,
                    w,
                    "{} (block size {block_size}): op {i} diverged",
                    workload.name()
                );
            }
        }
    }
}
