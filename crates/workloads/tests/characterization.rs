//! Characterization tests: run every workload on the simulated testbed and
//! check that the counter-derived parameters land in the neighbourhood of
//! the paper's Tab. 2/4/5 values.
//!
//! The `report` test (ignored by default) prints the full measurement table
//! for tuning: `cargo test -p memsense-workloads --test characterization -- --ignored --nocapture report`.

use memsense_sim::{Machine, SimConfig};
use memsense_workloads::Workload;

const WARMUP_OPS: u64 = 60_000;
const MEASURE_NS: f64 = 120_000.0;

fn measure(w: Workload) -> memsense_sim::Measurement {
    // The paper runs big data / enterprise on all logical processors but
    // characterizes SPECfp with only 3 cores per socket so the latency-
    // limited model applies (Sec. V.N); we mirror that with 8 vs 4 threads.
    let threads = match w.class() {
        memsense_workloads::Class::Hpc => 4,
        _ => 8,
    };
    let config = SimConfig::xeon_like(threads);
    let mut machine = Machine::new(config, w.streams(threads, 0xbeef)).expect("valid machine");
    machine.run_ops(WARMUP_OPS);
    machine
        .measure_for_ns(MEASURE_NS)
        .expect("instructions retired")
}

#[test]
#[ignore = "tuning aid; prints the characterization table"]
fn report() {
    println!(
        "{:<16} {:>7} {:>7} {:>9} {:>9} {:>7} {:>7} {:>8}",
        "workload", "CPI", "MPKI", "MP(ns)", "MP(cyc)", "WBR", "util", "BW GB/s"
    );
    for w in Workload::all() {
        let m = measure(w);
        println!(
            "{:<16} {:>7.3} {:>7.2} {:>9.1} {:>9.0} {:>6.0}% {:>6.0}% {:>8.2}",
            w.name(),
            m.cpi_eff,
            m.mpki,
            m.miss_penalty_ns,
            m.miss_penalty_cycles,
            m.wbr * 100.0,
            m.cpu_utilization * 100.0,
            m.bandwidth_gbps
        );
    }
}

#[test]
fn big_data_measured_parameters() {
    // Tab. 2 neighbourhood (tolerances acknowledge this is a simulator).
    let sd = measure(Workload::StructuredData);
    assert!((sd.mpki - 5.6).abs() < 1.6, "SD MPKI {}", sd.mpki);
    assert!((sd.wbr - 0.32).abs() < 0.12, "SD WBR {}", sd.wbr);
    assert!(
        sd.cpi_eff > 0.9 && sd.cpi_eff < 1.8,
        "SD CPI {}",
        sd.cpi_eff
    );
    assert!(sd.cpu_utilization > 0.95, "SD util {}", sd.cpu_utilization);

    let nits = measure(Workload::Nits);
    assert!((nits.mpki - 5.0).abs() < 1.5, "NITS MPKI {}", nits.mpki);
    assert!(nits.wbr > 1.0, "NITS WBR {} must exceed 100%", nits.wbr);

    let spark = measure(Workload::Spark);
    assert!((spark.mpki - 6.0).abs() < 1.8, "Spark MPKI {}", spark.mpki);
    assert!(spark.wbr > 0.4, "Spark WBR {}", spark.wbr);
    assert!(
        spark.cpu_utilization > 0.55 && spark.cpu_utilization < 0.9,
        "Spark util {} should be ~70%",
        spark.cpu_utilization
    );

    let prox = measure(Workload::Proximity);
    assert!(prox.mpki < 1.2, "Proximity MPKI {}", prox.mpki);
    assert!(prox.cpi_eff < 1.3, "Proximity CPI {}", prox.cpi_eff);
}

#[test]
fn enterprise_measured_parameters() {
    for (w, mpki, wbr) in [
        (Workload::Oltp, 7.5, 0.25),
        (Workload::Jvm, 5.2, 0.35),
        (Workload::Virtualization, 7.0, 0.24),
        (Workload::WebCaching, 7.1, 0.24),
    ] {
        let m = measure(w);
        assert!(
            (m.mpki - mpki).abs() < 0.35 * mpki,
            "{}: MPKI {} vs {}",
            w,
            m.mpki,
            mpki
        );
        assert!(
            (m.wbr - wbr).abs() < 0.12,
            "{}: WBR {} vs {}",
            w,
            m.wbr,
            wbr
        );
        assert!(
            m.cpi_eff > 1.3,
            "{}: enterprise CPI {} should be high",
            w,
            m.cpi_eff
        );
    }
    let web = measure(Workload::WebCaching);
    assert!(
        web.cpu_utilization < 0.75,
        "web caching util {} should be reduced",
        web.cpu_utilization
    );
}

#[test]
fn hpc_measured_parameters() {
    for (w, mpki) in [
        (Workload::Bwaves, 33.0),
        (Workload::Milc, 30.0),
        (Workload::Soplex, 21.0),
        (Workload::Wrf, 22.8),
    ] {
        let m = measure(w);
        assert!(
            (m.mpki - mpki).abs() < 0.35 * mpki,
            "{}: MPKI {} vs {}",
            w,
            m.mpki,
            mpki
        );
        assert!(
            m.cpi_eff < 2.0,
            "{}: HPC CPI {} (prefetch keeps it low-ish)",
            w,
            m.cpi_eff
        );
        assert!(m.bandwidth_gbps > 5.0, "{}: HPC BW {}", w, m.bandwidth_gbps);
    }
}

#[test]
fn class_ordering_matches_figure6() {
    // Bandwidth per instruction: HPC ≫ big data; latency exposure (stall
    // share of CPI): enterprise > big data > HPC.
    let hpc = measure(Workload::Bwaves);
    let ent = measure(Workload::Oltp);
    let big = measure(Workload::StructuredData);
    assert!(hpc.mpki > 2.5 * big.mpki);
    assert!(ent.cpi_eff > big.cpi_eff);
}
