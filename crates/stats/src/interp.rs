//! Piecewise-linear interpolation.
//!
//! The composite queueing-delay-vs-utilization relationship of Fig. 7 is an
//! empirical curve: the paper averages four measured curves (two memory
//! speeds × two read/write mixes) into one. [`PiecewiseLinear`] stores such a
//! curve as `(x, y)` knots and evaluates it with linear interpolation,
//! clamping outside the measured range.

use crate::StatsError;

/// A piecewise-linear function defined by sorted `(x, y)` knots.
///
/// Evaluation clamps to the first/last knot outside the knot range, matching
/// how a measured utilization curve should behave (there is no data below 0%
/// or above the maximum stable utilization).
///
/// # Examples
///
/// ```
/// use memsense_stats::PiecewiseLinear;
/// let f = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 10.0)]).unwrap();
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(2.0), 10.0); // clamped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    knots: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds a curve from knots, which must be non-empty, finite, and have
    /// strictly increasing `x`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::NotEnoughData`] when `knots` is empty.
    /// * [`StatsError::InvalidParameter`] when `x` values are not strictly
    ///   increasing or any coordinate is not finite.
    pub fn new(knots: Vec<(f64, f64)>) -> Result<Self, StatsError> {
        if knots.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        if knots.iter().any(|&(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(StatsError::InvalidParameter("non-finite knot"));
        }
        if knots.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(StatsError::InvalidParameter(
                "knot x values must be strictly increasing",
            ));
        }
        Ok(PiecewiseLinear { knots })
    }

    /// Builds a curve by sorting points on `x` and averaging the `y` values of
    /// points whose `x` coincide (within `tol`). Useful for merging multiple
    /// measured sweeps into one composite curve, as the paper does in Fig. 7.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PiecewiseLinear::new`].
    pub fn from_unsorted(mut points: Vec<(f64, f64)>, tol: f64) -> Result<Self, StatsError> {
        if points.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut knots: Vec<(f64, f64)> = Vec::with_capacity(points.len());
        let mut i = 0;
        while i < points.len() {
            let x0 = points[i].0;
            let mut sum = 0.0;
            let mut cnt = 0usize;
            while i < points.len() && points[i].0 - x0 <= tol {
                sum += points[i].1;
                cnt += 1;
                i += 1;
            }
            knots.push((x0, sum / cnt as f64));
        }
        PiecewiseLinear::new(knots)
    }

    /// Evaluates the function at `x`, clamping outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let k = &self.knots;
        if x <= k[0].0 {
            return k[0].1;
        }
        if x >= k[k.len() - 1].0 {
            return k[k.len() - 1].1;
        }
        // Binary search for the segment containing x.
        let idx = k.partition_point(|&(kx, _)| kx <= x);
        let (x0, y0) = k[idx - 1];
        let (x1, y1) = k[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Returns the knots defining the curve.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Domain of the curve: `(min_x, max_x)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.knots[0].0, self.knots[self.knots.len() - 1].0)
    }

    /// Returns a new curve that is the pointwise mean of `curves`, sampled at
    /// the union of all their knot `x` positions. This is the "composite
    /// model" construction from the paper (Sec. VI.C.1).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] when `curves` is empty.
    pub fn composite(curves: &[PiecewiseLinear]) -> Result<PiecewiseLinear, StatsError> {
        if curves.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        let mut xs: Vec<f64> = curves
            .iter()
            .flat_map(|c| c.knots.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let knots = xs
            .into_iter()
            .map(|x| {
                let mean_y = curves.iter().map(|c| c.eval(x)).sum::<f64>() / curves.len() as f64;
                (x, mean_y)
            })
            .collect();
        PiecewiseLinear::new(knots)
    }

    /// Checks whether the curve is non-decreasing in `y` (a queueing-delay
    /// curve must be).
    pub fn is_monotone_nondecreasing(&self) -> bool {
        self.knots.windows(2).all(|w| w[0].1 <= w[1].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![(0.0, 0.0), (0.5, 1.0), (1.0, 4.0)]).unwrap()
    }

    #[test]
    fn eval_at_knots() {
        let f = ramp();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(0.5), 1.0);
        assert_eq!(f.eval(1.0), 4.0);
    }

    #[test]
    fn eval_between_knots() {
        let f = ramp();
        assert!((f.eval(0.25) - 0.5).abs() < 1e-12);
        assert!((f.eval(0.75) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn eval_clamps() {
        let f = ramp();
        assert_eq!(f.eval(-1.0), 0.0);
        assert_eq!(f.eval(9.0), 4.0);
    }

    #[test]
    fn rejects_unsorted() {
        assert!(PiecewiseLinear::new(vec![(1.0, 0.0), (0.0, 1.0)]).is_err());
    }

    #[test]
    fn rejects_duplicate_x() {
        assert!(PiecewiseLinear::new(vec![(1.0, 0.0), (1.0, 1.0)]).is_err());
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(PiecewiseLinear::new(vec![]).is_err());
        assert!(PiecewiseLinear::new(vec![(f64::NAN, 0.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(0.0, f64::INFINITY)]).is_err());
    }

    #[test]
    fn from_unsorted_merges_duplicates() {
        let f =
            PiecewiseLinear::from_unsorted(vec![(1.0, 4.0), (0.0, 0.0), (1.0, 2.0)], 1e-9).unwrap();
        assert_eq!(f.knots().len(), 2);
        assert_eq!(f.eval(1.0), 3.0); // mean of 4 and 2
    }

    #[test]
    fn composite_averages() {
        let a = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 2.0)]).unwrap();
        let b = PiecewiseLinear::new(vec![(0.0, 2.0), (1.0, 4.0)]).unwrap();
        let c = PiecewiseLinear::composite(&[a, b]).unwrap();
        assert_eq!(c.eval(0.0), 1.0);
        assert_eq!(c.eval(1.0), 3.0);
        assert_eq!(c.eval(0.5), 2.0);
    }

    #[test]
    fn composite_union_of_knots() {
        let a = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 1.0)]).unwrap();
        let b = PiecewiseLinear::new(vec![(0.0, 0.0), (0.5, 1.0), (1.0, 1.0)]).unwrap();
        let c = PiecewiseLinear::composite(&[a, b]).unwrap();
        assert_eq!(c.knots().len(), 3);
        assert!((c.eval(0.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn monotonicity_check() {
        assert!(ramp().is_monotone_nondecreasing());
        let f = PiecewiseLinear::new(vec![(0.0, 1.0), (1.0, 0.0)]).unwrap();
        assert!(!f.is_monotone_nondecreasing());
    }

    #[test]
    fn domain_reported() {
        assert_eq!(ramp().domain(), (0.0, 1.0));
    }
}
