//! Statistics toolkit used throughout memsense.
//!
//! This crate provides the small set of numerical building blocks the paper's
//! methodology relies on:
//!
//! * [`ols`] — ordinary least squares line fits with `R²`, used to estimate
//!   `CPI_cache` (intercept) and the blocking factor `BF` (slope) from
//!   frequency-scaling sweeps (paper Sec. V.A, Fig. 3).
//! * [`descriptive`] — summary statistics for counter time series
//!   (paper Figs. 2/4/5).
//! * [`mod@kmeans`] — k-means clustering used to form the workload classes of
//!   Fig. 6 / Tab. 6.
//! * [`interp`] — piecewise-linear interpolation used to build the composite
//!   queueing-delay-vs-utilization curve of Fig. 7.
//! * [`timeseries`] — sampled time series containers.
//!
//! # Examples
//!
//! ```
//! use memsense_stats::ols::fit_line;
//!
//! // CPI_eff measured at different per-instruction miss latencies:
//! let xs = [0.5, 1.0, 1.5, 2.0];
//! let ys = [1.0, 1.1, 1.2, 1.3];
//! let fit = fit_line(&xs, &ys).unwrap();
//! assert!((fit.slope - 0.2).abs() < 1e-12);
//! assert!((fit.intercept - 0.9).abs() < 1e-12);
//! assert!(fit.r_squared > 0.999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod descriptive;
pub mod histogram;
pub mod interp;
pub mod kmeans;
pub mod ols;
pub mod timeseries;

pub use bootstrap::{bootstrap_fit, BootstrapFit};
pub use descriptive::Summary;
pub use histogram::Histogram;
pub use interp::PiecewiseLinear;
pub use kmeans::{kmeans, Clustering};
pub use ols::{fit_line, LineFit};
pub use timeseries::TimeSeries;

/// Error type for statistics routines.
///
/// All fallible functions in this crate return `Result<_, StatsError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input slices were empty or too short for the requested operation.
    NotEnoughData {
        /// Minimum number of points required.
        needed: usize,
        /// Number of points supplied.
        got: usize,
    },
    /// Paired inputs (e.g. `xs` and `ys`) had different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The regressor had zero variance, so a slope cannot be estimated.
    DegenerateInput,
    /// A parameter was outside its valid domain (e.g. `k = 0` clusters).
    InvalidParameter(&'static str),
}

impl core::fmt::Display for StatsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StatsError::NotEnoughData { needed, got } => {
                write!(f, "not enough data: needed {needed}, got {got}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "input length mismatch: {left} vs {right}")
            }
            StatsError::DegenerateInput => write!(f, "degenerate input (zero variance)"),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}
