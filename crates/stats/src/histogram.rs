//! Fixed-bin histograms.
//!
//! The characterization figures show *distributions* over time ("the vast
//! majority of CPI samples are within a narrow range"); [`Histogram`] makes
//! that statement quantitative and renderable in a terminal.

use crate::StatsError;

/// A histogram over `[min, max)` with uniform bins (plus outlier counters).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    max: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[min, max)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `bins` is zero or the
    /// range is empty/non-finite.
    pub fn new(min: f64, max: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter("bins must be > 0"));
        }
        if !min.is_finite() || !max.is_finite() || min >= max {
            return Err(StatsError::InvalidParameter("need finite min < max"));
        }
        Ok(Histogram {
            min,
            max,
            bins: vec![0; bins],
            below: 0,
            above: 0,
            count: 0,
        })
    }

    /// Builds a histogram spanning the sample range exactly (widened by a
    /// relative epsilon so the maximum lands in the last bin; constant
    /// samples all land in one bin).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] for an empty sample.
    pub fn from_samples(samples: &[f64], bins: usize) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        // Relative widening keeps min < max representable even for constant
        // or large-magnitude samples.
        let pad = ((max - min) * 1e-9).max(max.abs().max(min.abs()).max(1.0) * 1e-9);
        let mut h = Histogram::new(min, max + pad, bins)?;
        for &s in samples {
            h.add(s);
        }
        Ok(h)
    }

    /// Records one sample (out-of-range samples land in the outlier
    /// counters).
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        if value < self.min {
            self.below += 1;
        } else if value >= self.max {
            self.above += 1;
        } else {
            let n = self.bins.len();
            let idx = ((value - self.min) / (self.max - self.min) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Total samples recorded (including outliers).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(below_range, above_range)` outlier counts.
    pub fn outliers(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// The `(lo, hi)` bounds of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.max - self.min) / self.bins.len() as f64;
        (
            self.min + width * i as f64,
            self.min + width * (i + 1) as f64,
        )
    }

    /// Fraction of in-range samples inside the smallest window of
    /// consecutive bins covering at least `fraction` of them — a direct
    /// "how narrow is the range holding X% of samples" measure.
    pub fn concentration(&self, fraction: f64) -> f64 {
        let total: u64 = self.bins.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let need = (total as f64 * fraction).ceil() as u64;
        let mut best = self.bins.len();
        let mut lo = 0;
        let mut acc = 0u64;
        for hi in 0..self.bins.len() {
            acc += self.bins[hi];
            while acc >= need {
                best = best.min(hi - lo + 1);
                acc -= self.bins[lo];
                lo += 1;
            }
        }
        best as f64 / self.bins.len() as f64
    }

    /// Renders a compact vertical-bar sparkline (one char per bin).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().max().copied().unwrap_or(0);
        if max == 0 {
            return "▁".repeat(self.bins.len());
        }
        self.bins
            .iter()
            .map(|&b| {
                let lvl = (b as f64 / max as f64 * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[lvl]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_fill_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for v in [0.5, 1.5, 1.6, 9.9] {
            h.add(v);
        }
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.outliers(), (0, 0));
    }

    #[test]
    fn outliers_counted() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.add(-1.0);
        h.add(2.0);
        h.add(1.0); // == max → above
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn from_samples_spans_range() {
        let h = Histogram::from_samples(&[1.0, 2.0, 3.0, 4.0], 4).unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.outliers(), (0, 0));
        assert_eq!(h.bins().iter().sum::<u64>(), 4);
    }

    #[test]
    fn bin_range_math() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
    }

    #[test]
    fn concentration_narrow_vs_wide() {
        // Narrow: all samples in one bin.
        let mut narrow = Histogram::new(0.0, 10.0, 10).unwrap();
        for _ in 0..100 {
            narrow.add(5.1);
        }
        assert!((narrow.concentration(0.9) - 0.1).abs() < 1e-12);
        // Wide: uniform across bins.
        let mut wide = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..100 {
            wide.add(i as f64 / 10.0);
        }
        assert!(wide.concentration(0.9) >= 0.9);
    }

    #[test]
    fn sparkline_shape() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        for _ in 0..8 {
            h.add(0.5);
        }
        h.add(1.5);
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('█'));
    }

    #[test]
    fn invalid_construction() {
        assert!(Histogram::new(0.0, 10.0, 0).is_err());
        assert!(Histogram::new(5.0, 5.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
        assert!(Histogram::from_samples(&[], 4).is_err());
        // Constant samples are fine via from_samples (relative widening).
        let h = Histogram::from_samples(&[500.0, 500.0, 500.0], 4).unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.outliers(), (0, 0));
    }
}
