//! Sampled time series.
//!
//! The characterization methodology samples performance counters at a fixed
//! interval (~100 ms for Figs. 2 and 4, ~1 s for Fig. 5) and reports derived
//! metrics over time. [`TimeSeries`] is the container those samplers fill.

use crate::descriptive::Summary;
use crate::StatsError;

/// A uniformly-sampled time series of `f64` values.
///
/// Samples are implicitly spaced `interval` seconds apart starting at
/// `start`; the series stores only values, keeping memory proportional to the
/// number of samples.
///
/// # Examples
///
/// ```
/// use memsense_stats::TimeSeries;
/// let mut ts = TimeSeries::new(0.0, 0.1);
/// ts.push(1.0);
/// ts.push(2.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.time_at(1), 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    start: f64,
    interval: f64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with samples `interval` seconds apart starting
    /// at time `start` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not strictly positive and finite.
    pub fn new(start: f64, interval: f64) -> Self {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "interval must be positive and finite"
        );
        TimeSeries {
            start,
            interval,
            values: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sampling interval in seconds.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Timestamp (seconds) of the `i`-th sample.
    pub fn time_at(&self, i: usize) -> f64 {
        self.start + self.interval * i as f64
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.time_at(i), v))
    }

    /// Summary statistics over the sample values.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] when the series is empty.
    pub fn summary(&self) -> Result<Summary, StatsError> {
        Summary::from_samples(&self.values)
    }

    /// Downsamples by averaging consecutive groups of `factor` samples
    /// (a trailing partial group is averaged too). Used to render the 1 s
    /// granularity of Fig. 5 from finer-grained simulation samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `factor` is zero.
    pub fn downsample(&self, factor: usize) -> Result<TimeSeries, StatsError> {
        if factor == 0 {
            return Err(StatsError::InvalidParameter("factor must be > 0"));
        }
        let mut out = TimeSeries::new(self.start, self.interval * factor as f64);
        for chunk in self.values.chunks(factor) {
            out.push(chunk.iter().sum::<f64>() / chunk.len() as f64);
        }
        Ok(out)
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_times() {
        let mut ts = TimeSeries::new(1.0, 0.5);
        ts.extend([10.0, 20.0, 30.0]);
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts.time_at(0), 1.0);
        assert_eq!(ts.time_at(2), 2.0);
        let pairs: Vec<_> = ts.iter().collect();
        assert_eq!(pairs[1], (1.5, 20.0));
    }

    #[test]
    fn summary_matches() {
        let mut ts = TimeSeries::new(0.0, 1.0);
        ts.extend([1.0, 3.0]);
        let s = ts.summary().unwrap();
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn empty_summary_err() {
        let ts = TimeSeries::new(0.0, 1.0);
        assert!(ts.summary().is_err());
        assert!(ts.is_empty());
    }

    #[test]
    fn downsample_averages() {
        let mut ts = TimeSeries::new(0.0, 0.1);
        ts.extend([1.0, 3.0, 5.0, 7.0, 9.0]);
        let d = ts.downsample(2).unwrap();
        assert_eq!(d.values(), &[2.0, 6.0, 9.0]);
        assert!((d.interval() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn downsample_zero_rejected() {
        let ts = TimeSeries::new(0.0, 0.1);
        assert!(ts.downsample(0).is_err());
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = TimeSeries::new(0.0, 0.0);
    }
}
