//! Descriptive statistics for counter samples.
//!
//! The characterization figures of the paper (Figs. 2, 4, 5) are time series
//! of CPU utilization, CPI, and memory bandwidth. [`Summary`] condenses such a
//! series into the statistics the paper discusses: the mean, the spread
//! ("the vast majority of CPI samples are within a narrow range"), and the
//! coefficient of variation used to validate the constant-pathlength
//! assumption (Sec. V.B).

use crate::StatsError;

/// Summary statistics for a sample of `f64` values.
///
/// # Examples
///
/// ```
/// use memsense_stats::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n - 1` denominator; 0 for a single sample).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 5th percentile.
    pub p05: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Computes summary statistics over `samples`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] when `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            p05: percentile_sorted(&sorted, 5.0),
            p95: percentile_sorted(&sorted, 95.0),
        })
    }

    /// Coefficient of variation `stddev / mean`.
    ///
    /// Returns `f64::INFINITY` when the mean is zero but the spread is not,
    /// and `0.0` when both are zero.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            if self.stddev == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.stddev / self.mean.abs()
        }
    }

    /// Range between the 95th and 5th percentile, a robust spread measure.
    pub fn p90_range(&self) -> f64 {
        self.p95 - self.p05
    }
}

/// Computes the `p`-th percentile (0–100) of `samples` using linear
/// interpolation between order statistics.
///
/// # Errors
///
/// * [`StatsError::NotEnoughData`] when `samples` is empty.
/// * [`StatsError::InvalidParameter`] when `p` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// let p = memsense_stats::descriptive::percentile(&[4.0, 1.0, 3.0, 2.0], 50.0).unwrap();
/// assert_eq!(p, 2.5);
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidParameter("percentile out of [0, 100]"));
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(percentile_sorted(&sorted, p))
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Computes the `p`-th percentile (0–100) of `samples` by the
/// **nearest-rank** definition: the smallest sample such that at least `p`%
/// of the data is ≤ it (`sorted[⌈p/100·n⌉ − 1]`, rank clamped to `[1, n]`).
///
/// This is the right estimator for tail-latency reporting: with fewer than
/// `100/(100−p)` samples it returns the **maximum observed** value rather
/// than interpolating below it (a p99 over 3 samples is the worst of the
/// three, not a number no request ever experienced) — and the clamp means
/// small `n` can never index past the end of the sorted sample.
///
/// # Errors
///
/// * [`StatsError::NotEnoughData`] when `samples` is empty.
/// * [`StatsError::InvalidParameter`] when `p` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// use memsense_stats::descriptive::percentile_nearest_rank;
/// // p99 of two samples is the max, not an interpolation.
/// assert_eq!(percentile_nearest_rank(&[1.0, 9.0], 99.0).unwrap(), 9.0);
/// ```
pub fn percentile_nearest_rank(samples: &[f64], p: f64) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidParameter("percentile out of [0, 100]"));
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    // ceil can land on 0 (p = 0) or, through float rounding, on n + 1;
    // clamping to [1, n] makes the 1-based rank safe for every n ≥ 1.
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    Ok(sorted[rank.clamp(1, n) - 1])
}

/// Arithmetic mean of a sample.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] when `samples` is empty.
pub fn mean(samples: &[f64]) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    Ok(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Geometric mean of a sample of positive values.
///
/// Used for aggregating speedup ratios across workloads within a class.
///
/// # Errors
///
/// * [`StatsError::NotEnoughData`] when `samples` is empty.
/// * [`StatsError::InvalidParameter`] when any sample is not positive.
pub fn geometric_mean(samples: &[f64]) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    if samples.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::InvalidParameter(
            "geometric mean requires positive samples",
        ));
    }
    let log_sum: f64 = samples.iter().map(|x| x.ln()).sum();
    Ok((log_sum / samples.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.stddev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[3.5]).unwrap();
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.p05, 3.5);
        assert_eq!(s.p95, 3.5);
    }

    #[test]
    fn summary_empty_rejected() {
        assert!(Summary::from_samples(&[]).is_err());
    }

    #[test]
    fn cv_zero_mean() {
        let s = Summary::from_samples(&[-1.0, 1.0]).unwrap();
        assert!(s.coefficient_of_variation().is_infinite());
        let z = Summary::from_samples(&[0.0, 0.0]).unwrap();
        assert_eq!(z.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn cv_regular() {
        let s = Summary::from_samples(&[9.0, 10.0, 11.0]).unwrap();
        assert!((s.coefficient_of_variation() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 40.0);
        assert_eq!(percentile(&xs, 50.0).unwrap(), 25.0);
        assert!((percentile(&xs, 25.0).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_rejects_bad_p() {
        assert!(percentile(&[1.0], 101.0).is_err());
        assert!(percentile(&[1.0], -0.1).is_err());
        assert!(percentile(&[], 50.0).is_err());
    }

    #[test]
    fn geometric_mean_of_ratios() {
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_rejects_nonpositive() {
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[-1.0]).is_err());
        assert!(geometric_mean(&[]).is_err());
    }

    #[test]
    fn mean_empty_rejected() {
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn p90_range() {
        let s = Summary::from_samples(&(0..101).map(f64::from).collect::<Vec<_>>()).unwrap();
        assert!((s.p90_range() - 90.0).abs() < 1e-9);
    }

    // Golden pins for the small-n off-by-one class of bug: a p99 over fewer
    // than 100 samples must clamp to the max observed sample, never index
    // past the end or interpolate below the tail.

    #[test]
    fn nearest_rank_n1_is_the_sample_for_every_p() {
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(percentile_nearest_rank(&[7.25], p).unwrap(), 7.25);
        }
    }

    #[test]
    fn nearest_rank_n2_golden() {
        let s = [10.0, 2.0]; // unsorted on purpose
        assert_eq!(percentile_nearest_rank(&s, 0.0).unwrap(), 2.0);
        assert_eq!(percentile_nearest_rank(&s, 50.0).unwrap(), 2.0);
        assert_eq!(percentile_nearest_rank(&s, 51.0).unwrap(), 10.0);
        assert_eq!(percentile_nearest_rank(&s, 99.0).unwrap(), 10.0);
        assert_eq!(percentile_nearest_rank(&s, 100.0).unwrap(), 10.0);
    }

    #[test]
    fn nearest_rank_n3_golden() {
        let s = [30.0, 10.0, 20.0];
        assert_eq!(percentile_nearest_rank(&s, 33.0).unwrap(), 10.0);
        assert_eq!(percentile_nearest_rank(&s, 34.0).unwrap(), 20.0);
        assert_eq!(percentile_nearest_rank(&s, 50.0).unwrap(), 20.0);
        assert_eq!(percentile_nearest_rank(&s, 67.0).unwrap(), 30.0);
        // p99 of three samples is the worst of the three.
        assert_eq!(percentile_nearest_rank(&s, 99.0).unwrap(), 30.0);
        assert_eq!(percentile_nearest_rank(&s, 100.0).unwrap(), 30.0);
    }

    #[test]
    fn nearest_rank_n100_golden() {
        // samples 1..=100: the p-th percentile is exactly p for integral p.
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_nearest_rank(&s, 50.0).unwrap(), 50.0);
        assert_eq!(percentile_nearest_rank(&s, 90.0).unwrap(), 90.0);
        assert_eq!(percentile_nearest_rank(&s, 99.0).unwrap(), 99.0);
        assert_eq!(percentile_nearest_rank(&s, 100.0).unwrap(), 100.0);
        assert_eq!(percentile_nearest_rank(&s, 0.0).unwrap(), 1.0);
    }

    #[test]
    fn nearest_rank_rejects_bad_input() {
        assert!(percentile_nearest_rank(&[], 50.0).is_err());
        assert!(percentile_nearest_rank(&[1.0], -0.1).is_err());
        assert!(percentile_nearest_rank(&[1.0], 100.1).is_err());
    }
}
