//! Ordinary least squares line fitting.
//!
//! The paper estimates `CPI_cache` and the blocking factor `BF` by fitting a
//! line to measurements of `CPI_eff` against the per-instruction miss latency
//! `MPI × MP` gathered across core/memory frequency sweeps (Sec. V.A). The
//! intercept of that line is `CPI_cache` and the slope is `BF`; the quality of
//! the fit (`R²`, e.g. 0.95 for the column-store workload in Fig. 3a) tells
//! whether the constant-blocking-factor assumption holds.

use crate::StatsError;

/// Result of a least-squares line fit `y ≈ intercept + slope · x`.
///
/// # Examples
///
/// ```
/// let fit = memsense_stats::fit_line(&[0.0, 1.0, 2.0], &[1.0, 2.0, 3.0]).unwrap();
/// assert!((fit.predict(3.0) - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Estimated slope of the line.
    pub slope: f64,
    /// Estimated intercept of the line.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 for a perfect fit).
    ///
    /// When the response has zero variance the fit is exact and this is
    /// reported as `1.0`.
    pub r_squared: f64,
    /// Standard error of the slope estimate (0 when residuals are zero or
    /// there are only two points).
    pub slope_stderr: f64,
    /// Number of points used in the fit.
    pub n: usize,
}

impl LineFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Approximate 95% confidence interval on the slope
    /// (`slope ± 1.96 × stderr`; normal approximation, adequate for the
    /// 8-point calibration sweeps).
    pub fn slope_ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.slope_stderr;
        (self.slope - half, self.slope + half)
    }

    /// Returns the residual `y - predict(x)` for an observation.
    pub fn residual(&self, x: f64, y: f64) -> f64 {
        y - self.predict(x)
    }
}

/// Fits `y ≈ intercept + slope · x` by ordinary least squares.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] if `xs` and `ys` differ in length.
/// * [`StatsError::NotEnoughData`] if fewer than two points are supplied.
/// * [`StatsError::DegenerateInput`] if all `x` values are identical.
///
/// # Examples
///
/// ```
/// use memsense_stats::fit_line;
/// let fit = fit_line(&[1.0, 2.0, 3.0, 4.0], &[2.1, 3.9, 6.2, 7.8]).unwrap();
/// assert!((fit.slope - 1.94).abs() < 0.05);
/// ```
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Result<LineFit, StatsError> {
    fit_line_weighted(xs, ys, None)
}

/// Fits `y ≈ intercept + slope · x` by (optionally weighted) least squares.
///
/// When `weights` is `Some`, each point contributes proportionally to its
/// weight; this is used to weight program phases by their instruction counts
/// (paper Sec. IV.D). Weights must be non-negative and not all zero.
///
/// # Errors
///
/// Same conditions as [`fit_line`], plus [`StatsError::InvalidParameter`] for
/// invalid weights and [`StatsError::LengthMismatch`] if the weight vector
/// length differs from the data length.
pub fn fit_line_weighted(
    xs: &[f64],
    ys: &[f64],
    weights: Option<&[f64]>,
) -> Result<LineFit, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: xs.len(),
        });
    }
    let n = xs.len();
    let w_storage;
    let ws: &[f64] = match weights {
        Some(w) => {
            if w.len() != n {
                return Err(StatsError::LengthMismatch {
                    left: w.len(),
                    right: n,
                });
            }
            if w.iter().any(|&wi| wi.is_nan() || wi < 0.0) {
                return Err(StatsError::InvalidParameter("weights must be >= 0"));
            }
            if w.iter().sum::<f64>() <= 0.0 {
                return Err(StatsError::InvalidParameter("weights sum to zero"));
            }
            w
        }
        None => {
            w_storage = vec![1.0; n];
            &w_storage
        }
    };

    let w_sum: f64 = ws.iter().sum();
    let mean_x = xs.iter().zip(ws).map(|(x, w)| x * w).sum::<f64>() / w_sum;
    let mean_y = ys.iter().zip(ws).map(|(y, w)| y * w).sum::<f64>() / w_sum;

    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mean_x;
        let dy = ys[i] - mean_y;
        sxx += ws[i] * dx * dx;
        sxy += ws[i] * dx * dy;
        syy += ws[i] * dy * dy;
    }
    if sxx == 0.0 {
        return Err(StatsError::DegenerateInput);
    }

    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    // Residual sum of squares and R².
    let mut ss_res = 0.0;
    for i in 0..n {
        let r = ys[i] - (intercept + slope * xs[i]);
        ss_res += ws[i] * r * r;
    }
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (1.0 - ss_res / syy).clamp(0.0, 1.0)
    };

    // Unweighted-style standard error of the slope (df = n - 2).
    let slope_stderr = if n > 2 && ss_res > 0.0 {
        let sigma2 = ss_res / (w_sum * (n as f64 - 2.0) / n as f64);
        (sigma2 / sxx).sqrt()
    } else {
        0.0
    };

    Ok(LineFit {
        slope,
        intercept,
        r_squared,
        slope_stderr,
        n,
    })
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] for unequal lengths.
/// * [`StatsError::NotEnoughData`] for fewer than two points.
/// * [`StatsError::DegenerateInput`] if either sample has zero variance.
///
/// # Examples
///
/// ```
/// let r = memsense_stats::ols::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: xs.len(),
        });
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::DegenerateInput);
    }
    Ok(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.9 + 0.2 * x).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!((fit.slope - 0.2).abs() < 1e-12);
        assert!((fit.intercept - 0.9).abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
        assert_eq!(fit.n, 10);
    }

    #[test]
    fn noisy_line_reasonable() {
        // Deterministic "noise" via a fixed pattern.
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 2.0).collect();
        let noise = [0.01, -0.02, 0.015, -0.005];
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.5 + 0.35 * x + noise[i % 4])
            .collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!((fit.slope - 0.35).abs() < 0.01);
        assert!((fit.intercept - 1.5).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
        assert!(fit.slope_stderr > 0.0);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert_eq!(
            fit_line(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { left: 1, right: 2 })
        );
    }

    #[test]
    fn too_few_points_rejected() {
        assert_eq!(
            fit_line(&[1.0], &[1.0]),
            Err(StatsError::NotEnoughData { needed: 2, got: 1 })
        );
    }

    #[test]
    fn constant_x_rejected() {
        assert_eq!(
            fit_line(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::DegenerateInput)
        );
    }

    #[test]
    fn constant_y_gives_zero_slope_perfect_r2() {
        let fit = fit_line(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn weighted_fit_prefers_heavy_points() {
        // Two clusters: heavy points on y = x, light outliers on y = x + 10.
        let xs = [0.0, 1.0, 2.0, 3.0, 0.0, 3.0];
        let ys = [0.0, 1.0, 2.0, 3.0, 10.0, 13.0];
        let ws = [100.0, 100.0, 100.0, 100.0, 1.0, 1.0];
        let fit = fit_line_weighted(&xs, &ys, Some(&ws)).unwrap();
        assert!((fit.slope - 1.0).abs() < 0.1, "slope = {}", fit.slope);
        assert!(fit.intercept < 1.0);
    }

    #[test]
    fn negative_weight_rejected() {
        let err = fit_line_weighted(&[1.0, 2.0], &[1.0, 2.0], Some(&[1.0, -1.0])).unwrap_err();
        assert!(matches!(err, StatsError::InvalidParameter(_)));
    }

    #[test]
    fn zero_weights_rejected() {
        let err = fit_line_weighted(&[1.0, 2.0], &[1.0, 2.0], Some(&[0.0, 0.0])).unwrap_err();
        assert!(matches!(err, StatsError::InvalidParameter(_)));
    }

    #[test]
    fn weight_length_mismatch_rejected() {
        let err = fit_line_weighted(&[1.0, 2.0], &[1.0, 2.0], Some(&[1.0])).unwrap_err();
        assert!(matches!(err, StatsError::LengthMismatch { .. }));
    }

    #[test]
    fn pearson_perfect_negative() {
        let r = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_rejected() {
        assert_eq!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::DegenerateInput)
        );
    }

    #[test]
    fn slope_ci_contains_true_slope_for_noisy_data() {
        let xs: Vec<f64> = (0..24).map(|i| i as f64 / 4.0).collect();
        let noise = [0.05, -0.04, 0.03, -0.02, 0.01, -0.05];
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 + 0.5 * x + noise[i % 6])
            .collect();
        let fit = fit_line(&xs, &ys).unwrap();
        let (lo, hi) = fit.slope_ci95();
        assert!(lo < 0.5 && 0.5 < hi, "CI [{lo}, {hi}] must cover 0.5");
        assert!(hi - lo < 0.2, "CI reasonably tight: [{lo}, {hi}]");
    }

    #[test]
    fn exact_fit_has_zero_width_ci() {
        let fit = fit_line(&[0.0, 1.0, 2.0], &[1.0, 2.0, 3.0]).unwrap();
        let (lo, hi) = fit.slope_ci95();
        assert_eq!(lo, hi);
    }

    #[test]
    fn predict_and_residual_consistent() {
        let fit = fit_line(&[0.0, 1.0], &[1.0, 3.0]).unwrap();
        assert!((fit.predict(2.0) - 5.0).abs() < 1e-12);
        assert!((fit.residual(2.0, 5.5) - 0.5).abs() < 1e-12);
    }
}
