//! K-means clustering for workload classification.
//!
//! Fig. 6 of the paper plots each workload as a point in (blocking factor,
//! memory references per cycle) space and groups them into classes
//! (enterprise / big data / HPC / core-bound) whose means drive the
//! sensitivity study. The paper assigns classes by usage segment; we also
//! provide an unsupervised check that the segments really do form distinct
//! clusters, using plain k-means with deterministic seeding.

use crate::StatsError;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centroids, `k` rows of `dim` coordinates.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index assigned to each input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl Clustering {
    /// Number of points assigned to each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Runs k-means (Lloyd's algorithm) on `points` with `k` clusters.
///
/// Initialization is deterministic: a farthest-point ("k-means++ without the
/// randomness") sweep starting from the point closest to the grand mean. The
/// algorithm stops when assignments are stable or after `max_iter` rounds.
///
/// # Errors
///
/// * [`StatsError::InvalidParameter`] if `k` is zero, larger than the number
///   of points, or the points have inconsistent dimensionality.
/// * [`StatsError::NotEnoughData`] if `points` is empty.
///
/// # Examples
///
/// ```
/// use memsense_stats::kmeans;
/// let pts = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
///     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
/// ];
/// let c = kmeans(&pts, 2, 100).unwrap();
/// assert_eq!(c.assignments[0], c.assignments[1]);
/// assert_ne!(c.assignments[0], c.assignments[3]);
/// ```
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iter: usize) -> Result<Clustering, StatsError> {
    if points.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    if k == 0 || k > points.len() {
        return Err(StatsError::InvalidParameter("k must be in 1..=n"));
    }
    let dim = points[0].len();
    if dim == 0 || points.iter().any(|p| p.len() != dim) {
        return Err(StatsError::InvalidParameter(
            "points must share a non-zero dimensionality",
        ));
    }

    let mut centroids = init_farthest_point(points, k, dim);
    let mut assignments = vec![usize::MAX; points.len()];
    let mut iterations = 0;

    for _ in 0..max_iter.max(1) {
        iterations += 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let nearest = nearest_centroid(p, &centroids);
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        // Recompute centroids; an emptied cluster keeps its old centroid.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for d in 0..dim {
                sums[a][d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dim {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| dist2(p, &centroids[a]))
        .sum();

    Ok(Clustering {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// Computes the mean of a set of points (the "class mean" of Tab. 6).
///
/// # Errors
///
/// * [`StatsError::NotEnoughData`] if `points` is empty.
/// * [`StatsError::InvalidParameter`] on mixed dimensionality.
pub fn centroid(points: &[Vec<f64>]) -> Result<Vec<f64>, StatsError> {
    if points.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    let dim = points[0].len();
    if points.iter().any(|p| p.len() != dim) {
        return Err(StatsError::InvalidParameter("mixed dimensionality"));
    }
    let mut mean = vec![0.0; dim];
    for p in points {
        for d in 0..dim {
            mean[d] += p[d];
        }
    }
    for m in &mut mean {
        *m /= points.len() as f64;
    }
    Ok(mean)
}

fn init_farthest_point(points: &[Vec<f64>], k: usize, dim: usize) -> Vec<Vec<f64>> {
    let grand = {
        let mut g = vec![0.0; dim];
        for p in points {
            for d in 0..dim {
                g[d] += p[d];
            }
        }
        for gd in &mut g {
            *gd /= points.len() as f64;
        }
        g
    };
    // First centroid: the point nearest the grand mean. `total_cmp` keeps
    // the selection deterministic (and panic-free) even for NaN distances.
    let Some(first) = points
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| dist2(a, &grand).total_cmp(&dist2(b, &grand)))
        .map(|(i, _)| i)
    else {
        return Vec::new();
    };
    let mut centroids = vec![points[first].clone()];
    while centroids.len() < k {
        let Some(next) = points
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| min_dist2(a, &centroids).total_cmp(&min_dist2(b, &centroids)))
            .map(|(i, _)| i)
        else {
            break;
        };
        centroids.push(points[next].clone());
    }
    centroids
}

fn nearest_centroid(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn min_dist2(p: &[f64], centroids: &[Vec<f64>]) -> f64 {
    centroids
        .iter()
        .map(|c| dist2(p, c))
        .fold(f64::INFINITY, f64::min)
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for &(dx, dy) in &[(0.0, 0.0), (0.2, 0.1), (-0.1, 0.2), (0.1, -0.2)] {
                pts.push(vec![cx + dx, cy + dy]);
            }
        }
        pts
    }

    #[test]
    fn separates_blobs() {
        let pts = three_blobs();
        let c = kmeans(&pts, 3, 100).unwrap();
        // All points in the same blob share an assignment.
        for blob in 0..3 {
            let a0 = c.assignments[blob * 4];
            for i in 1..4 {
                assert_eq!(c.assignments[blob * 4 + i], a0);
            }
        }
        // Different blobs get different clusters.
        assert_ne!(c.assignments[0], c.assignments[4]);
        assert_ne!(c.assignments[0], c.assignments[8]);
        assert_ne!(c.assignments[4], c.assignments[8]);
        assert!(c.inertia < 1.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let c = kmeans(&pts, 3, 50).unwrap();
        assert!(c.inertia < 1e-20);
        assert_eq!(c.cluster_sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let c = kmeans(&pts, 1, 10).unwrap();
        assert_eq!(c.centroids[0], vec![1.0, 2.0]);
    }

    #[test]
    fn invalid_k_rejected() {
        let pts = vec![vec![1.0]];
        assert!(kmeans(&pts, 0, 10).is_err());
        assert!(kmeans(&pts, 2, 10).is_err());
    }

    #[test]
    fn empty_points_rejected() {
        assert!(kmeans(&[], 1, 10).is_err());
    }

    #[test]
    fn mixed_dims_rejected() {
        let pts = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(kmeans(&pts, 1, 10).is_err());
    }

    #[test]
    fn deterministic() {
        let pts = three_blobs();
        let a = kmeans(&pts, 3, 100).unwrap();
        let b = kmeans(&pts, 3, 100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn centroid_mean() {
        let m = centroid(&[vec![1.0, 0.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m, vec![2.0, 2.0]);
        assert!(centroid(&[]).is_err());
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let pts = three_blobs();
        let c = kmeans(&pts, 3, 100).unwrap();
        assert_eq!(c.cluster_sizes().iter().sum::<usize>(), pts.len());
    }
}
