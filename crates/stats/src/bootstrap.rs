//! Bootstrap confidence intervals for line fits.
//!
//! The calibration sweeps have only eight points, so the normal-theory
//! standard error on the blocking factor can be optimistic. Case-resampling
//! bootstrap gives a distribution-free alternative: refit on resampled
//! point sets and take percentile intervals. Deterministic via an explicit
//! seed, like everything else in memsense.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ols::fit_line;
use crate::StatsError;

/// Result of a bootstrap over a line fit.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapFit {
    /// Point estimate of the slope (fit on the full data).
    pub slope: f64,
    /// Point estimate of the intercept.
    pub intercept: f64,
    /// Percentile confidence interval on the slope.
    pub slope_ci: (f64, f64),
    /// Percentile confidence interval on the intercept.
    pub intercept_ci: (f64, f64),
    /// Number of successful resamples behind the intervals.
    pub resamples: usize,
}

/// Case-resampling bootstrap of a least-squares line fit.
///
/// Draws `resamples` datasets of the original size with replacement, refits
/// each, and reports the `confidence` (e.g. `0.95`) percentile interval of
/// the slope and intercept. Degenerate resamples (all-identical `x`) are
/// skipped; at least half must succeed.
///
/// # Errors
///
/// * Propagates [`fit_line`] errors on the full dataset.
/// * [`StatsError::InvalidParameter`] for `resamples == 0` or a confidence
///   outside `(0, 1)`.
/// * [`StatsError::NotEnoughData`] when too many resamples are degenerate.
///
/// # Examples
///
/// ```
/// use memsense_stats::bootstrap::bootstrap_fit;
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// let ys = [1.1, 1.9, 3.2, 3.8, 5.1, 6.1, 6.8, 8.2];
/// let b = bootstrap_fit(&xs, &ys, 200, 0.95, 7).unwrap();
/// assert!(b.slope_ci.0 < 1.0 && 1.0 < b.slope_ci.1);
/// ```
pub fn bootstrap_fit(
    xs: &[f64],
    ys: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Result<BootstrapFit, StatsError> {
    if resamples == 0 {
        return Err(StatsError::InvalidParameter("resamples must be > 0"));
    }
    if !(0.0 < confidence && confidence < 1.0) {
        return Err(StatsError::InvalidParameter("confidence must be in (0, 1)"));
    }
    let full = fit_line(xs, ys)?;
    let n = xs.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut slopes = Vec::with_capacity(resamples);
    let mut intercepts = Vec::with_capacity(resamples);
    let mut bx = vec![0.0; n];
    let mut by = vec![0.0; n];
    for _ in 0..resamples {
        for i in 0..n {
            let j = rng.gen_range(0..n);
            bx[i] = xs[j];
            by[i] = ys[j];
        }
        if let Ok(fit) = fit_line(&bx, &by) {
            slopes.push(fit.slope);
            intercepts.push(fit.intercept);
        }
    }
    if slopes.len() < resamples / 2 {
        return Err(StatsError::NotEnoughData {
            needed: resamples / 2,
            got: slopes.len(),
        });
    }
    let alpha = (1.0 - confidence) / 2.0 * 100.0;
    let slope_ci = (
        crate::descriptive::percentile(&slopes, alpha)?,
        crate::descriptive::percentile(&slopes, 100.0 - alpha)?,
    );
    let intercept_ci = (
        crate::descriptive::percentile(&intercepts, alpha)?,
        crate::descriptive::percentile(&intercepts, 100.0 - alpha)?,
    );
    Ok(BootstrapFit {
        slope: full.slope,
        intercept: full.intercept,
        slope_ci,
        intercept_ci,
        resamples: slopes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_line() -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..16).map(|i| i as f64 / 2.0).collect();
        let noise = [0.08, -0.06, 0.02, -0.09, 0.05, -0.01, 0.07, -0.04];
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 0.9 + 0.2 * x + noise[i % 8])
            .collect();
        (xs, ys)
    }

    #[test]
    fn ci_covers_true_parameters() {
        let (xs, ys) = noisy_line();
        let b = bootstrap_fit(&xs, &ys, 500, 0.95, 42).unwrap();
        assert!(b.slope_ci.0 < 0.2 && 0.2 < b.slope_ci.1, "{:?}", b.slope_ci);
        assert!(
            b.intercept_ci.0 < 0.9 && 0.9 < b.intercept_ci.1,
            "{:?}",
            b.intercept_ci
        );
        assert!(b.resamples >= 250);
    }

    #[test]
    fn wider_confidence_wider_interval() {
        let (xs, ys) = noisy_line();
        let narrow = bootstrap_fit(&xs, &ys, 500, 0.80, 42).unwrap();
        let wide = bootstrap_fit(&xs, &ys, 500, 0.99, 42).unwrap();
        assert!(wide.slope_ci.1 - wide.slope_ci.0 >= narrow.slope_ci.1 - narrow.slope_ci.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (xs, ys) = noisy_line();
        let a = bootstrap_fit(&xs, &ys, 100, 0.95, 7).unwrap();
        let b = bootstrap_fit(&xs, &ys, 100, 0.95, 7).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_fit(&xs, &ys, 100, 0.95, 8).unwrap();
        assert_ne!(a.slope_ci, c.slope_ci);
    }

    #[test]
    fn exact_line_gives_degenerate_interval() {
        let xs: Vec<f64> = (0..8).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x).collect();
        let b = bootstrap_fit(&xs, &ys, 200, 0.95, 1).unwrap();
        assert!((b.slope_ci.0 - 2.0).abs() < 1e-9);
        assert!((b.slope_ci.1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        let (xs, ys) = noisy_line();
        assert!(bootstrap_fit(&xs, &ys, 0, 0.95, 1).is_err());
        assert!(bootstrap_fit(&xs, &ys, 100, 0.0, 1).is_err());
        assert!(bootstrap_fit(&xs, &ys, 100, 1.0, 1).is_err());
        assert!(bootstrap_fit(&[1.0], &[1.0], 100, 0.95, 1).is_err());
    }
}
