//! Rule-engine tests: every rule fires on its bad fixture and stays quiet on
//! the allow-annotated (or restructured) twin, scoping and role exemptions
//! hold, and diagnostics carry usable positions.

use memsense_lint::lint_source;
use memsense_lint::report::Diagnostic;

/// Lints fixture `source` as if it lived at workspace path `rel`.
fn lint(rel: &str, source: &str) -> Vec<Diagnostic> {
    lint_source(rel, source.to_string())
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

// --- no-panic-in-lib -------------------------------------------------------

#[test]
fn panic_rule_fires_on_bad_fixture() {
    let diags = lint(
        "crates/model/src/fake.rs",
        include_str!("fixtures/bad_panic.rs"),
    );
    let rules = rules_of(&diags);
    assert_eq!(
        rules.iter().filter(|r| **r == "no-panic-in-lib").count(),
        2,
        "unwrap + panic!: {diags:?}"
    );
    // Positions point at the offending call, 1-based.
    let unwrap = diags.iter().find(|d| d.message.contains("unwrap")).unwrap();
    assert_eq!(unwrap.file, "crates/model/src/fake.rs");
    assert_eq!(unwrap.line, 6, "{unwrap:?}");
}

#[test]
fn panic_rule_quiet_on_annotated_twin() {
    let diags = lint(
        "crates/model/src/fake.rs",
        include_str!("fixtures/good_panic.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_rule_exempts_bins_tests_benches_examples() {
    let bad = include_str!("fixtures/bad_panic.rs");
    for rel in [
        "crates/model/src/bin/fake.rs",
        "crates/model/src/main.rs",
        "crates/model/tests/fake.rs",
        "crates/model/benches/fake.rs",
        "crates/model/examples/fake.rs",
        "crates/model/build.rs",
    ] {
        let diags = lint(rel, bad);
        assert!(diags.is_empty(), "{rel} should be exempt: {diags:?}");
    }
}

#[test]
fn panic_rule_skips_cfg_test_modules() {
    let src = "pub fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \"1\".parse::<u8>().unwrap();\n    }\n}\n";
    let diags = lint("crates/model/src/fake.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// --- no-unordered-output ---------------------------------------------------

#[test]
fn unordered_rule_fires_in_output_scopes_only() {
    let bad = include_str!("fixtures/bad_unordered.rs");
    for rel in [
        "crates/model/src/fake.rs",
        "crates/experiments/src/fake.rs",
        "crates/serve/src/fake.rs",
        "crates/sim/src/fake.rs",
    ] {
        let diags = lint(rel, bad);
        assert!(
            rules_of(&diags).contains(&"no-unordered-output"),
            "{rel} should fire: {diags:?}"
        );
    }
    // Out of scope: the stats crate never feeds serialized output directly.
    let diags = lint("crates/stats/src/fake.rs", bad);
    assert!(
        !rules_of(&diags).contains(&"no-unordered-output"),
        "{diags:?}"
    );
}

#[test]
fn unordered_rule_quiet_on_btreemap_twin() {
    let diags = lint(
        "crates/serve/src/fake.rs",
        include_str!("fixtures/good_unordered.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- no-raw-float-format ---------------------------------------------------

#[test]
fn float_format_rule_fires_in_wire_scopes_only() {
    let bad = include_str!("fixtures/bad_float_format.rs");
    for rel in ["crates/serve/src/fake.rs", "crates/experiments/src/fake.rs"] {
        let diags = lint(rel, bad);
        assert_eq!(
            rules_of(&diags)
                .iter()
                .filter(|r| **r == "no-raw-float-format")
                .count(),
            2,
            "{rel}: bare {{}} and {{:?}} both fire: {diags:?}"
        );
    }
    // The model crate formats labels for humans, not the wire.
    let diags = lint("crates/model/src/fake.rs", bad);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn float_format_rule_quiet_on_precision_twin() {
    let diags = lint(
        "crates/serve/src/fake.rs",
        include_str!("fixtures/good_float_format.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- no-wallclock-in-deterministic -----------------------------------------

#[test]
fn wallclock_rule_fires_outside_allowlist() {
    let bad = include_str!("fixtures/bad_wallclock.rs");
    let diags = lint("crates/sim/src/fake.rs", bad);
    assert_eq!(
        rules_of(&diags)
            .iter()
            .filter(|r| **r == "no-wallclock-in-deterministic")
            .count(),
        2,
        "Instant::now + SystemTime::now: {diags:?}"
    );
}

#[test]
fn wallclock_rule_allowlists_executor_and_serve() {
    let bad = include_str!("fixtures/bad_wallclock.rs");
    for rel in [
        "crates/experiments/src/executor.rs",
        "crates/serve/src/metrics.rs",
    ] {
        let diags = lint(rel, bad);
        assert!(
            !rules_of(&diags).contains(&"no-wallclock-in-deterministic"),
            "{rel} is telemetry-allowlisted: {diags:?}"
        );
    }
}

#[test]
fn wallclock_rule_quiet_on_annotated_twin() {
    let diags = lint(
        "crates/sim/src/fake.rs",
        include_str!("fixtures/good_wallclock.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- unsafe-needs-safety-comment -------------------------------------------

#[test]
fn unsafe_rule_requires_safety_comment() {
    let diags = lint(
        "crates/model/src/fake.rs",
        include_str!("fixtures/bad_unsafe.rs"),
    );
    assert!(
        rules_of(&diags).contains(&"unsafe-needs-safety-comment"),
        "{diags:?}"
    );
    let diags = lint(
        "crates/model/src/fake.rs",
        include_str!("fixtures/good_unsafe.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unsafe_rule_applies_even_in_binaries() {
    // Unlike the panic rule, a missing SAFETY comment is a defect everywhere.
    let diags = lint(
        "crates/model/src/bin/fake.rs",
        include_str!("fixtures/bad_unsafe.rs"),
    );
    assert!(
        rules_of(&diags).contains(&"unsafe-needs-safety-comment"),
        "{diags:?}"
    );
}

// --- no-process-exit-in-lib ------------------------------------------------

#[test]
fn process_exit_rule_fires_in_lib_not_bin() {
    let bad = include_str!("fixtures/bad_exit.rs");
    let diags = lint("crates/model/src/fake.rs", bad);
    assert!(
        rules_of(&diags).contains(&"no-process-exit-in-lib"),
        "{diags:?}"
    );
    let diags = lint("crates/model/src/bin/fake.rs", bad);
    assert!(diags.is_empty(), "binaries own exit codes: {diags:?}");
}

// --- no-per-op-alloc -------------------------------------------------------

#[test]
fn per_op_alloc_rule_fires_in_sim_hot_modules_only() {
    let bad = include_str!("fixtures/bad_per_op_alloc.rs");
    for rel in [
        "crates/sim/src/engine.rs",
        "crates/sim/src/cache.rs",
        "crates/sim/src/tlb.rs",
        "crates/sim/src/trace.rs",
        "crates/sim/src/prefetch.rs",
        "crates/sim/src/mem.rs",
    ] {
        let diags = lint(rel, bad);
        assert_eq!(
            rules_of(&diags)
                .iter()
                .filter(|r| **r == "no-per-op-alloc")
                .count(),
            2,
            "{rel}: Vec::new and vec![] both fire: {diags:?}"
        );
    }
    // Cold sim modules and other crates allocate freely.
    for rel in [
        "crates/sim/src/config.rs",
        "crates/workloads/src/mix.rs",
        "crates/model/src/fake.rs",
    ] {
        let diags = lint(rel, bad);
        assert!(
            !rules_of(&diags).contains(&"no-per-op-alloc"),
            "{rel} is out of scope: {diags:?}"
        );
    }
}

#[test]
fn per_op_alloc_rule_quiet_on_scratch_buffer_twin() {
    let diags = lint(
        "crates/sim/src/engine.rs",
        include_str!("fixtures/good_per_op_alloc.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --- cross-cutting ---------------------------------------------------------

#[test]
fn torture_fixture_is_clean_under_an_output_scope() {
    // Every suspicious name in the torture file is inside a string or
    // comment; a scanner that mis-lexes raw strings or nested comments
    // would report phantom diagnostics here.
    let diags = lint(
        "crates/model/src/fake.rs",
        include_str!("fixtures/lexer_torture.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn diagnostics_are_sorted_by_position() {
    let diags = lint(
        "crates/model/src/fake.rs",
        include_str!("fixtures/bad_panic.rs"),
    );
    let positions: Vec<(u32, u32)> = diags.iter().map(|d| (d.line, d.col)).collect();
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    assert_eq!(positions, sorted);
}

#[test]
fn human_rendering_is_file_line_col_rule_message() {
    let diags = lint(
        "crates/model/src/fake.rs",
        "pub fn f() { panic!(\"boom\") }\n",
    );
    assert_eq!(diags.len(), 1);
    let line = diags[0].human();
    assert!(
        line.starts_with("crates/model/src/fake.rs:1:14 no-panic-in-lib "),
        "{line}"
    );
}

#[test]
fn trailing_allow_suppresses_same_line_only() {
    let src = "pub fn f() -> u8 {\n    \"1\".parse().unwrap() // memsense-lint: allow(no-panic-in-lib) — fixture\n}\npub fn g() -> u8 {\n    \"2\".parse().unwrap()\n}\n";
    let diags = lint("crates/model/src/fake.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn standalone_allow_covers_the_whole_statement() {
    // The expect sits two continuation lines below the annotation; the
    // statement-span anchoring must still cover it (this is how rustfmt
    // renders annotated builder chains across the workspace).
    let src = "pub fn f() -> u8 {\n    // memsense-lint: allow(no-panic-in-lib) — fixture\n    \"1\"\n        .parse()\n        .expect(\"fixture\")\n}\n";
    let diags = lint("crates/model/src/fake.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allow_of_one_rule_does_not_suppress_another() {
    let src = "pub fn f() -> u8 {\n    // memsense-lint: allow(no-unordered-output) — wrong rule id\n    \"1\".parse().unwrap()\n}\n";
    let diags = lint("crates/model/src/fake.rs", src);
    assert_eq!(rules_of(&diags), vec!["no-panic-in-lib"]);
}
