//! End-to-end tests for the `memsense-lint` binary: exit codes, report
//! formats, and the `--list-rules` / `--explain` subcommands.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU32, Ordering};

use memsense_experiments::json::Json;
use memsense_lint::rules::RULES;

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memsense-lint"))
        .args(args)
        .output()
        .expect("spawn memsense-lint")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch workspace root (with the Cargo.toml marker the binary checks
/// for), deleted on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "memsense-lint-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch root");
        std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write marker");
        Scratch(dir)
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.0.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create parent dirs");
        }
        std::fs::write(path, contents).expect("write scratch file");
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn list_rules_names_every_rule_and_exits_zero() {
    let out = run(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    for rule in RULES {
        assert!(text.contains(rule.id), "missing {} in:\n{text}", rule.id);
    }
}

#[test]
fn explain_prints_invariant_and_fix() {
    let out = run(&["--explain", "no-panic-in-lib"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("no-panic-in-lib"));
    assert!(text.contains("Result"), "fix guidance missing:\n{text}");
}

#[test]
fn explain_unknown_rule_is_a_usage_error() {
    let out = run(&["--explain", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("no-such-rule"));
}

#[test]
fn unknown_flag_and_bad_root_exit_two() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let out = run(&["--root", "/nonexistent/definitely-not-here"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let out = run(&["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn clean_tree_exits_zero() {
    let ws = Scratch::new();
    ws.write(
        "crates/model/src/lib.rs",
        "pub fn double(x: u64) -> u64 { x * 2 }\n",
    );
    let out = run(&["--root", ws.path().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("clean"), "{}", stdout(&out));
}

#[test]
fn dirty_tree_exits_one_with_position() {
    let ws = Scratch::new();
    ws.write(
        "crates/model/src/lib.rs",
        "pub fn f() -> u8 {\n    \"1\".parse().unwrap()\n}\n",
    );
    let out = run(&["--root", ws.path().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("crates/model/src/lib.rs:2:17 no-panic-in-lib"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn json_report_is_parseable_and_written_to_out() {
    let ws = Scratch::new();
    ws.write(
        "crates/model/src/lib.rs",
        "pub fn f() -> u8 {\n    \"1\".parse().unwrap()\n}\n",
    );
    let report_path = ws.path().join("lint_report.json");
    let out = run(&[
        "--root",
        ws.path().to_str().unwrap(),
        "--format",
        "json",
        "--out",
        report_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let body = std::fs::read_to_string(&report_path).expect("report written");
    let json = Json::parse(&body).expect("report is valid JSON");
    assert_eq!(
        json.get("version").and_then(Json::as_str),
        Some("memsense-lint/2")
    );
    assert_eq!(json.get("files_scanned").and_then(Json::as_u64), Some(1));
    let diags = json
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("diagnostics array");
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].get("rule").and_then(Json::as_str),
        Some("no-panic-in-lib")
    );
    assert_eq!(diags[0].get("line").and_then(Json::as_u64), Some(2));
    assert_eq!(
        diags[0].get("symbol").and_then(Json::as_str),
        Some("f"),
        "diagnostics carry the enclosing fn for line-free baseline keys"
    );
    let summary = json.get("summary").expect("summary object");
    assert_eq!(
        summary.get("no-panic-in-lib").and_then(Json::as_u64),
        Some(1)
    );
    let baseline = json.get("baseline").expect("baseline object");
    assert_eq!(baseline.get("suppressed").and_then(Json::as_u64), Some(0));
}

#[test]
fn walker_skips_vendor_target_and_fixture_dirs() {
    let ws = Scratch::new();
    let bad = "pub fn f() -> u8 { \"1\".parse().unwrap() }\n";
    ws.write("vendor/dep/src/lib.rs", bad);
    ws.write("target/debug/build/gen.rs", bad);
    ws.write("crates/lint/tests/fixtures/bad.rs", bad);
    ws.write(".hidden/src/lib.rs", bad);
    ws.write("crates/model/src/lib.rs", "pub fn ok() {}\n");
    let out = run(&["--root", ws.path().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("1 file"), "{}", stdout(&out));
}

/// One pub fn whose unwrap fires exactly one diagnostic — the seed for the
/// baseline-workflow tests.
const DIRTY: &str = "pub fn f() -> u8 {\n    \"1\".parse().unwrap()\n}\n";

#[test]
fn write_baseline_then_justify_makes_the_tree_gate_clean() {
    let ws = Scratch::new();
    ws.write("crates/model/src/lib.rs", DIRTY);
    let root = ws.path().to_str().unwrap().to_string();
    let baseline = ws.path().join("LINT_BASELINE.json");

    // Step 1: accept the debt. The writer stamps a TODO justification.
    let out = run(&[
        "--root",
        &root,
        "--write-baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("need a justification"),
        "{}",
        stdout(&out)
    );

    // Step 2: an unjustified baseline must not gate — strict load fails.
    let out = run(&["--root", &root]);
    assert_eq!(out.status.code(), Some(2), "{}", stdout(&out));
    assert!(stderr(&out).contains("justification"), "{}", stderr(&out));

    // Step 3: justify it; the auto-detected baseline now suppresses the
    // finding and the tree gates clean.
    let body = std::fs::read_to_string(&baseline).expect("baseline written");
    let body = body.replace("TODO: justify this accepted finding", "fixture debt");
    std::fs::write(&baseline, body).expect("rewrite baseline");
    let out = run(&["--root", &root]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(
        stdout(&out).contains("baseline-suppressed"),
        "{}",
        stdout(&out)
    );

    // Step 4: --no-baseline ignores it and the finding comes back.
    let out = run(&["--root", &root, "--no-baseline"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
}

#[test]
fn baseline_only_shrinks_stale_entries_and_new_findings_fail() {
    let ws = Scratch::new();
    ws.write("crates/model/src/lib.rs", DIRTY);
    let root = ws.path().to_str().unwrap().to_string();

    // A stale entry — debt the tree no longer carries — fails the run.
    ws.write(
        "LINT_BASELINE.json",
        r#"{
  "version": "memsense-lint-baseline/1",
  "entries": [
    {"rule": "no-panic-in-lib", "file": "crates/model/src/lib.rs", "symbol": "f", "count": 1, "justification": "fixture debt"},
    {"rule": "no-panic-in-lib", "file": "crates/model/src/gone.rs", "symbol": "g", "count": 1, "justification": "deleted long ago"}
  ]
}
"#,
    );
    let out = run(&["--root", &root]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(
        stdout(&out).contains("stale baseline entry"),
        "{}",
        stdout(&out)
    );
    assert!(stdout(&out).contains("gone.rs"), "{}", stdout(&out));

    // Findings beyond an entry's count are new debt: they stay reported.
    ws.write(
        "crates/model/src/lib.rs",
        "pub fn f() -> u8 {\n    \"1\".parse().unwrap()\n}\npub fn g() -> u8 {\n    \"2\".parse().unwrap()\n}\n",
    );
    ws.write(
        "LINT_BASELINE.json",
        r#"{
  "version": "memsense-lint-baseline/1",
  "entries": [
    {"rule": "no-panic-in-lib", "file": "crates/model/src/lib.rs", "symbol": "f", "count": 1, "justification": "fixture debt"}
  ]
}
"#,
    );
    let out = run(&["--root", &root]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(
        text.contains(":5:"),
        "the un-baselined g finding reports: {text}"
    );
    assert!(
        !text.contains("stale baseline entry"),
        "nothing is stale here: {text}"
    );
}

#[test]
fn graph_dump_is_canonical_and_byte_identical_across_runs() {
    let ws = Scratch::new();
    ws.write(
        "crates/model/src/lib.rs",
        "fn helper(x: u64) -> u64 { x + 1 }\npub fn double(x: u64) -> u64 { helper(x) * 2 }\n",
    );
    let root = ws.path().to_str().unwrap().to_string();
    let dump_a = ws.path().join("graph_a.json");
    let dump_b = ws.path().join("graph_b.json");
    for (dump, threads) in [(&dump_a, "1"), (&dump_b, "8")] {
        let out = Command::new(env!("CARGO_BIN_EXE_memsense-lint"))
            .args(["--root", &root, "--graph", dump.to_str().unwrap()])
            .env("MEMSENSE_THREADS", threads)
            .output()
            .expect("spawn memsense-lint");
        assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    }
    let a = std::fs::read_to_string(&dump_a).expect("dump a");
    let b = std::fs::read_to_string(&dump_b).expect("dump b");
    assert_eq!(
        a, b,
        "graph dump must be byte-identical across runs/threads"
    );
    let json = Json::parse(&a).expect("dump is valid JSON");
    assert_eq!(
        json.get("version").and_then(Json::as_str),
        Some("memsense-lint-graph/1")
    );
    assert_eq!(
        Json::parse(&a).expect("reparse").canonical() + "\n",
        a,
        "dump is in canonical form"
    );
    let nodes = json.get("nodes").and_then(Json::as_arr).expect("nodes");
    assert_eq!(nodes.len(), 2);
    let double = nodes
        .iter()
        .find(|n| n.get("name").and_then(Json::as_str) == Some("double"))
        .expect("double node");
    let calls = double.get("calls").and_then(Json::as_arr).expect("calls");
    assert_eq!(calls.len(), 1, "double calls helper");
}

#[test]
fn repo_workspace_is_clean() {
    // The merged tree must lint clean — the CI gate runs exactly this.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = run(&["--root", repo_root.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must lint clean:\n{}",
        stdout(&out)
    );
}
