//! Bad fixture: fresh allocations in what the lint treats as a sim
//! hot-loop module — one `Vec::new()` and one `vec![…]`.

pub fn prefetch_targets(addr: u64) -> Vec<u64> {
    let mut out = Vec::new();
    out.push(addr + 64);
    out
}

pub fn lane_masks(n: usize) -> Vec<u64> {
    vec![0u64; n]
}
