//! Fixture: the documented twin of `bad_unsafe.rs`.

pub fn reinterpret(v: u64) -> f64 {
    // SAFETY: u64 and f64 have the same size and any bit pattern is a valid
    // f64; this is exactly f64::from_bits.
    unsafe { std::mem::transmute(v) }
}
