//! Good twin: the hot path writes into a caller-owned scratch buffer, the
//! pre-sized allocation uses `with_capacity`, and the one deliberate cold
//! allocation carries an allow annotation.

pub fn prefetch_targets_into(addr: u64, out: &mut Vec<u64>) {
    out.clear();
    out.push(addr + 64);
}

pub fn scratch(n: usize) -> Vec<u64> {
    Vec::with_capacity(n)
}

pub struct LaneTable {
    lanes: Vec<u64>,
}

impl LaneTable {
    pub fn build(n: usize) -> LaneTable {
        LaneTable {
            // memsense-lint: allow(no-per-op-alloc) — one-time table build
            lanes: vec![0u64; n],
        }
    }

    pub fn width(&self) -> usize {
        self.lanes.len()
    }
}
