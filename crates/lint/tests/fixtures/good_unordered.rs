//! Fixture: the ordered twin of `bad_unordered.rs` — BTreeMap iteration and
//! an allow-annotated HashMap site.

use std::collections::{BTreeMap, HashMap};

pub fn render(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, n) in counts.iter() {
        out.push_str(name);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push('\n');
    }
    out
}

pub fn total(counts: &HashMap<String, u64>) -> u64 {
    // memsense-lint: allow(no-unordered-output) — fixture twin: order-insensitive sum
    counts.values().sum()
}
