//! Fixture: library code deciding the process exit code.

pub fn bail(msg: &str) -> ! {
    eprintln!("fatal: {msg}");
    std::process::exit(1)
}
