//! Fixture: an event loop whose tick path parks on a mutex. The blocking
//! call sits two hops from `Reactor::run`, so only the call graph sees it.

use std::sync::{Arc, Mutex};

pub struct Reactor {
    state: Arc<Mutex<u64>>,
}

impl Reactor {
    pub fn run(&self) {
        loop {
            self.tick();
        }
    }

    fn tick(&self) {
        if let Ok(mut state) = self.state.lock() {
            *state += 1;
        }
    }
}
