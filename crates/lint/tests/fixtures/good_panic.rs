//! Fixture: the allow-annotated twin of `bad_panic.rs`, plus panic sites in
//! regions the rule must exempt (tests, doc comments).

/// Doc comments mentioning `.unwrap()` or panic! must not fire:
///
/// ```
/// parse_port("80").unwrap();
/// ```
pub fn parse_port(raw: &str) -> u16 {
    // memsense-lint: allow(no-panic-in-lib) — fixture twin: justified constant
    raw.parse().unwrap()
}

pub fn chained(raw: &str) -> u16 {
    // A multi-line statement: the standalone allow above it must cover the
    // continuation line holding the actual `.expect()` call.
    // memsense-lint: allow(no-panic-in-lib) — fixture twin: multi-line chain
    raw.trim()
        .parse()
        .expect("fixture constant")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: u16 = "80".parse().unwrap();
        assert_eq!(v, 80);
    }
}
