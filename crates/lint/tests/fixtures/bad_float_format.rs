//! Fixture: formatting an f64 with a bare `{}` on a wire path.

pub fn label(mega_transfers: f64) -> String {
    format!("{} MT/s", mega_transfers)
}

pub fn debug_label(ratio: f64) -> String {
    format!("{ratio:?}")
}
