//! Fixture: the clock-free twin of `bad_wallclock.rs`.

pub fn solve(x: f64) -> f64 {
    x * 2.0
}

pub fn telemetry_probe() -> f64 {
    // memsense-lint: allow(no-wallclock-in-deterministic) — fixture twin: deliberate telemetry
    let started = std::time::Instant::now();
    started.elapsed().as_secs_f64()
}
