//! Fixture: the twin of `bad_exit.rs` — the library reports fatal errors as
//! values and leaves the exit code to the binary.

pub fn bail(msg: &str) -> Result<(), String> {
    Err(format!("fatal: {msg}"))
}
