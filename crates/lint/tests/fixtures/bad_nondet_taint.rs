//! Fixture: a wall-clock reading in a fn that reaches the canonical-JSON
//! serializer — elapsed time ends up inside a byte-compared document.

use std::time::Instant;

pub fn canonical(fields: &[(String, String)]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (key, value) in fields {
        parts.push(format!("\"{key}\":{value}"));
    }
    format!("{{{}}}", parts.join(","))
}

pub fn stamped_report(cpi_repr: String) -> String {
    let started = Instant::now();
    let body = canonical(&[("cpi".to_string(), cpi_repr)]);
    let _elapsed = started.elapsed();
    body
}
