//! Fixture: every construct the lexer must not trip over. The rule tests
//! assert this file produces zero diagnostics even under a lib path, because
//! every `unwrap`/`HashMap`/`Instant` here lives inside a string, comment, or
//! raw string — never in code position.

pub fn torture() -> String {
    let raw = r#"this " has .unwrap() and // not a comment"#;
    let nested_hash = r##"outer r#"inner"# done"##;
    /* block comment with .unwrap()
       /* nested block, still commented: HashMap::new().iter() */
       still outer */
    let byte_str = b"bytes with \" escape";
    let raw_byte = br#"raw bytes, Instant::now() is just text"#;
    let ch = 'x';
    let quote = '\'';
    let newline = '\n';
    let multibyte = 'é';
    let not_char: &'static str = "lifetime then string";
    let r#type = 1u32; // raw identifier, not a raw string
    let exp = 1.5e3_f64;
    let hex = 0xDEAD_BEEF_u64;
    format!(
        "{raw}{nested_hash}{ch}{quote}{newline}{multibyte}{not_char}{}{exp}{hex}{}",
        r#type,
        String::from_utf8_lossy(byte_str),
    ) + &String::from_utf8_lossy(raw_byte)
}
