//! Fixture: the twin of `bad_reactor_blocking.rs` — the tick follows the
//! try_lock busy-retry discipline, so contention skips the round instead of
//! parking the event loop.

use std::sync::{Arc, Mutex, TryLockError};

pub struct Reactor {
    state: Arc<Mutex<u64>>,
}

impl Reactor {
    pub fn run(&self) {
        loop {
            self.tick();
        }
    }

    fn tick(&self) {
        match self.state.try_lock() {
            Ok(mut state) => *state += 1,
            Err(TryLockError::WouldBlock) => {}
            Err(TryLockError::Poisoned(_)) => {}
        }
    }
}
