//! Fixture: unsafe without a SAFETY comment.

pub fn reinterpret(v: u64) -> f64 {
    unsafe { std::mem::transmute(v) }
}
