//! Fixture: a wall-clock read on a deterministic compute path.

use std::time::Instant;

pub fn timed_solve(x: f64) -> (f64, f64) {
    let started = Instant::now();
    let y = x * 2.0;
    (y, started.elapsed().as_secs_f64())
}

pub fn stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
