//! Fixture: the twin of `bad_nondet_taint.rs` — timing lives in a fn that
//! never reaches the serializer, and a justified telemetry reading is
//! allow-annotated where the two must coexist.

use std::time::Instant;

pub fn canonical(fields: &[(String, String)]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (key, value) in fields {
        parts.push(format!("\"{key}\":{value}"));
    }
    format!("{{{}}}", parts.join(","))
}

pub fn report(cpi_repr: String) -> String {
    canonical(&[("cpi".to_string(), cpi_repr)])
}

pub fn timed(work: impl Fn()) -> f64 {
    let started = Instant::now();
    work();
    started.elapsed().as_secs_f64()
}

pub fn swept_report(cpi_repr: String, telemetry: &mut Vec<f64>) -> String {
    // memsense-lint: allow(nondeterminism-taint) — fixture twin: the duration goes to the telemetry vec, not the document
    let started = Instant::now();
    let body = canonical(&[("cpi".to_string(), cpi_repr)]);
    telemetry.push(started.elapsed().as_secs_f64());
    body
}
