//! Fixture: the twin of `bad_transitive_panic.rs` — the helper returns an
//! Option instead of panicking, and a justified panic site does not
//! propagate to its callers (the justification covers them).

fn decode(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

pub fn total(lines: &[&str]) -> Option<u64> {
    lines.iter().map(|line| decode(line)).sum()
}

pub fn checked(raw: &str) -> u64 {
    justified(raw)
}

fn justified(raw: &str) -> u64 {
    // memsense-lint: allow(no-panic-in-lib) — fixture twin: the justification covers every caller
    raw.parse().expect("fixture constant")
}
