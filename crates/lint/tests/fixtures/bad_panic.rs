//! Fixture: library code that panics. Fed to the linter by the tests under a
//! synthetic `crates/*/src/` path; never compiled or scanned by the real run
//! (the walker skips `fixtures` directories).

pub fn parse_port(raw: &str) -> u16 {
    raw.parse().unwrap()
}

pub fn choose(flag: bool) -> u16 {
    if flag {
        parse_port("80")
    } else {
        panic!("no port configured")
    }
}
