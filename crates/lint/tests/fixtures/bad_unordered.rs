//! Fixture: iterating a hash-ordered collection in an output-feeding crate.

use std::collections::HashMap;

pub fn render(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, n) in counts.iter() {
        out.push_str(name);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push('\n');
    }
    out
}
