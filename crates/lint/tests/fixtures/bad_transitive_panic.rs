//! Fixture: a public library fn that reaches a panic through a private
//! helper. The per-file rule flags the helper's own line; only the graph
//! rule tells the public entry point's callers about it.

fn decode(raw: &str) -> u64 {
    raw.parse().unwrap()
}

pub fn total(lines: &[&str]) -> u64 {
    lines.iter().map(|line| decode(line)).sum()
}
