//! Fixture: the canonical twin of `bad_float_format.rs` — explicit precision,
//! non-float arguments, and an allow-annotated formatter.

pub fn label(mega_transfers: f64) -> String {
    format!("{mega_transfers:.1} MT/s")
}

pub fn count_label(channels: u32) -> String {
    format!("{channels}ch")
}

pub fn canonical(v: f64) -> String {
    // memsense-lint: allow(no-raw-float-format) — fixture twin: the formatter itself
    format!("{v}")
}
