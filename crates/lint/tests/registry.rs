//! Registry coverage: a rule cannot land half-shipped. Every entry in
//! [`RULES`] must carry non-empty `--explain` text and a fixture twin —
//! `bad_<stem>.rs` demonstrating the defect (the rule must fire on it) and
//! `good_<stem>.rs` demonstrating the fix or a justified suppression (the
//! rule must stay quiet on it).

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use memsense_lint::lint_sources;
use memsense_lint::rules::RULES;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture(name: &str) -> String {
    let path = fixture_path(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn rule_ids_are_unique_and_kebab_case() {
    let mut seen = BTreeSet::new();
    for r in RULES {
        assert!(seen.insert(r.id), "duplicate rule id {:?}", r.id);
        assert!(
            r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
            "rule id {:?} is not kebab-case",
            r.id
        );
    }
}

#[test]
fn every_rule_has_explain_text() {
    for r in RULES {
        assert!(!r.summary.trim().is_empty(), "{}: empty summary", r.id);
        assert!(!r.invariant.trim().is_empty(), "{}: empty invariant", r.id);
        assert!(!r.fix.trim().is_empty(), "{}: empty fix text", r.id);
        assert!(
            r.invariant.split_whitespace().count() >= 10,
            "{}: the invariant text should explain *why*, not just restate the id",
            r.id
        );
    }
}

#[test]
fn every_rule_has_a_firing_bad_fixture_and_a_quiet_good_twin() {
    for r in RULES {
        let bad_name = format!("bad_{}.rs", r.fixture);
        let good_name = format!("good_{}.rs", r.fixture);
        let (bad_diags, _) = lint_sources(vec![(r.fixture_rel.to_string(), fixture(&bad_name))]);
        assert!(
            bad_diags.iter().any(|d| d.rule == r.id),
            "{bad_name} linted under {} does not fire {} (got: {:?})",
            r.fixture_rel,
            r.id,
            bad_diags.iter().map(|d| d.rule).collect::<Vec<_>>(),
        );
        let (good_diags, _) = lint_sources(vec![(r.fixture_rel.to_string(), fixture(&good_name))]);
        let leaked: Vec<String> = good_diags
            .iter()
            .filter(|d| d.rule == r.id)
            .map(|d| format!("{}:{}:{}", d.file, d.line, d.col))
            .collect();
        assert!(
            leaked.is_empty(),
            "{good_name} linted under {} still fires {} at {leaked:?}",
            r.fixture_rel,
            r.id,
        );
    }
}

#[test]
fn every_fixture_belongs_to_a_rule() {
    // The inverse direction: orphaned fixtures rot silently.
    let stems: BTreeSet<String> = RULES
        .iter()
        .flat_map(|r| {
            [
                format!("bad_{}.rs", r.fixture),
                format!("good_{}.rs", r.fixture),
            ]
        })
        .collect();
    let dir = fixture_path("");
    for entry in fs::read_dir(&dir).expect("fixtures dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        if !name.starts_with("bad_") && !name.starts_with("good_") {
            continue; // shared torture inputs, not rule twins
        }
        assert!(
            stems.contains(&name),
            "fixture {name} does not match any rule's `fixture` stem"
        );
    }
}
