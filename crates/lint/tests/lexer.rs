//! Lexer tests: the constructs that break naive Rust scanners — raw strings,
//! nested block comments, char vs lifetime, byte strings, doc comments.

use memsense_lint::lexer::{lex, num_is_float, Tok, TokKind};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .iter()
        .map(|t| (t.kind, t.text(src).to_string()))
        .collect()
}

fn kind_of(src: &str, text: &str) -> TokKind {
    let toks = lex(src);
    let tok = toks
        .iter()
        .find(|t| t.text(src) == text)
        .unwrap_or_else(|| panic!("token {text:?} not found in {src:?}"));
    tok.kind
}

#[test]
fn raw_strings_swallow_quotes_and_comment_markers() {
    let src = r###"let s = r#"has " quote and // not a comment"#;"###;
    let toks = kinds(src);
    assert!(
        toks.iter()
            .any(|(k, t)| *k == TokKind::RawStrLit && t.contains("not a comment")),
        "raw string should be one token: {toks:?}"
    );
    assert!(
        !toks.iter().any(|(k, _)| *k == TokKind::LineComment),
        "// inside a raw string is not a comment"
    );
}

#[test]
fn raw_strings_respect_hash_depth() {
    // The inner r#"…"# terminator must not close the outer r##"…"## string.
    let src = r####"let s = r##"outer r#"inner"# done"##;"####;
    let toks = lex(src);
    let raw: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::RawStrLit)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(raw, vec![r####"r##"outer r#"inner"# done"##"####]);
}

#[test]
fn raw_identifiers_are_idents_not_raw_strings() {
    let src = "let r#type = 1; let r#match = 2;";
    let toks = kinds(src);
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    assert!(!toks.iter().any(|(k, _)| *k == TokKind::RawStrLit));
}

#[test]
fn block_comments_nest() {
    let src = "/* outer /* inner .unwrap() */ still comment */ let x = 1;";
    let toks = kinds(src);
    assert_eq!(
        toks.iter()
            .filter(|(k, _)| *k == TokKind::BlockComment)
            .count(),
        1,
        "nested block comment lexes as one token: {toks:?}"
    );
    // `unwrap` never appears as a code identifier.
    assert!(!toks
        .iter()
        .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
}

#[test]
fn char_literal_vs_lifetime() {
    let src = "fn f<'a>(x: &'a str) -> char { let c = 'a'; let nl = '\\n'; c }";
    let toks = lex(src);
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::CharLit)
        .map(|t| t.text(src))
        .collect();
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(chars, vec!["'a'", "'\\n'"]);
    assert_eq!(lifetimes, vec!["'a", "'a"]);
}

#[test]
fn multibyte_char_literals() {
    assert_eq!(kind_of("let c = 'é';", "'é'"), TokKind::CharLit);
    assert_eq!(kind_of("let c = '→';", "'→'"), TokKind::CharLit);
    assert_eq!(kind_of("let q = '\\'';", "'\\''"), TokKind::CharLit);
    assert_eq!(
        kind_of("let s: &'static str = \"x\";", "'static"),
        TokKind::Lifetime
    );
}

#[test]
fn byte_strings_and_byte_chars() {
    let src = r##"let a = b"bytes \" esc"; let b = br#"raw // bytes"#; let c = b'x';"##;
    let toks = lex(src);
    let get = |kind: TokKind| -> Vec<&str> {
        toks.iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.text(src))
            .collect()
    };
    assert_eq!(get(TokKind::StrLit), vec![r#"b"bytes \" esc""#]);
    assert_eq!(get(TokKind::RawStrLit), vec![r##"br#"raw // bytes"#"##]);
    assert_eq!(get(TokKind::CharLit), vec!["b'x'"]);
    assert!(!toks.iter().any(|t| t.kind == TokKind::LineComment));
}

#[test]
fn doc_comments_are_comments() {
    let src = "/// outer doc with .unwrap()\n//! inner doc\n/** block doc */\nfn f() {}";
    let toks = lex(src);
    let comments: Vec<(TokKind, &str)> = toks
        .iter()
        .filter(|t| t.is_comment())
        .map(|t| (t.kind, t.text(src)))
        .collect();
    assert_eq!(comments.len(), 3, "{comments:?}");
    assert!(comments[0].1.starts_with("///"));
    assert!(comments[1].1.starts_with("//!"));
    assert_eq!(comments[2].0, TokKind::BlockComment);
    assert!(!toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text(src) == "unwrap"));
}

#[test]
fn numeric_literals_and_float_detection() {
    let src = "let a = 1.5; let b = 1e3; let c = 2f64; let d = 0xDEAD_BEEF; let e = 1_000; let f = 0b1010;";
    let nums: Vec<String> = lex(src)
        .iter()
        .filter(|t| t.kind == TokKind::NumLit)
        .map(|t| t.text(src).to_string())
        .collect();
    assert_eq!(
        nums,
        vec!["1.5", "1e3", "2f64", "0xDEAD_BEEF", "1_000", "0b1010"]
    );
    assert!(num_is_float("1.5"));
    assert!(num_is_float("1e3"));
    assert!(num_is_float("2f64"));
    assert!(num_is_float("3.0f32"));
    assert!(
        !num_is_float("0xDEAD_BEEF"),
        "hex E/F digits are not exponents"
    );
    assert!(!num_is_float("1_000"));
    assert!(!num_is_float("0b1010"));
}

#[test]
fn positions_are_one_based_lines_and_cols() {
    let src = "let a = 1;\n  let bee = 2;";
    let toks = lex(src);
    let bee: &Tok = toks
        .iter()
        .find(|t| t.text(src) == "bee")
        .expect("bee token");
    assert_eq!((bee.line, bee.col), (2, 7));
    let strlit = lex("let s = \"a\nb\";");
    let s = strlit
        .iter()
        .find(|t| t.kind == TokKind::StrLit)
        .expect("string token");
    assert_eq!(
        s.end_line("let s = \"a\nb\";"),
        2,
        "multi-line string end line"
    );
}

/// Spans must tile the input in order: strictly increasing, non-overlapping,
/// in-bounds, on char boundaries, with nothing but whitespace between them.
fn assert_spans_tile(src: &str, toks: &[Tok]) {
    let mut cursor = 0usize;
    for t in toks {
        assert!(
            t.start < t.end,
            "empty span {:?} in {src:?}",
            (t.start, t.end)
        );
        assert!(t.end <= src.len(), "span past the end in {src:?}");
        assert!(
            t.start >= cursor,
            "overlapping/out-of-order span at {} (cursor {cursor}) in {src:?}",
            t.start
        );
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span splits a UTF-8 char in {src:?}"
        );
        assert!(
            src[cursor..t.start].chars().all(char::is_whitespace),
            "non-whitespace gap {:?} before a token in {src:?}",
            &src[cursor..t.start]
        );
        // Exercises the span accessors on hostile input.
        let _ = t.text(src);
        let _ = t.end_line(src);
        cursor = t.end;
    }
    assert!(
        src[cursor..].chars().all(char::is_whitespace),
        "non-whitespace tail {:?} after the last token in {src:?}",
        &src[cursor..]
    );
}

mod robustness {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The lexer is total: arbitrary byte soup (lossily decoded, the
        /// same normalization the workspace scanner applies) never panics,
        /// and the token spans tile the input in order.
        #[test]
        fn arbitrary_bytes_lex_totally(bytes in collection::vec(0u8..=255u8, 0..256)) {
            let src = String::from_utf8_lossy(&bytes).into_owned();
            let toks = lex(&src);
            assert_spans_tile(&src, &toks);
        }

        /// Unterminated openers — the error-tolerance cases — at any cut
        /// point of a hostile prefix still lex totally.
        #[test]
        fn truncated_openers_lex_totally(
            opener in 0usize..8,
            bytes in collection::vec(0u8..=255u8, 0..64),
        ) {
            let openers = ["\"", "r#\"", "br##\"", "'", "b'", "/*", "/* /*", "//"];
            let mut src = String::from(openers[opener]);
            src.push_str(&String::from_utf8_lossy(&bytes));
            let toks = lex(&src);
            assert_spans_tile(&src, &toks);
        }
    }
}

#[test]
fn shebang_lines_lex_and_keep_line_numbers() {
    let src = "#!/usr/bin/env run-cargo-script\nfn main() {}\n";
    let toks = lex(src);
    assert_spans_tile(src, &toks);
    let main = toks
        .iter()
        .find(|t| t.text(src) == "main")
        .expect("main token");
    assert_eq!(main.line, 2, "shebang consumes exactly one line");
    // A shebang-like line mid-file must not eat the tokens after it.
    let mid = "let a = 1;\n#!/not/a/shebang\nlet b = 2;\n";
    let toks = lex(mid);
    assert_spans_tile(mid, &toks);
    let b = toks.iter().find(|t| t.text(mid) == "b").expect("b token");
    assert_eq!(b.line, 3);
}

#[test]
fn crlf_line_endings_count_lines_like_lf() {
    let src = "let a = 1;\r\n// comment\r\nlet bee = 2;\r\n";
    let toks = lex(src);
    assert_spans_tile(src, &toks);
    let bee = toks.iter().find(|t| t.text(src) == "bee").expect("bee");
    assert_eq!((bee.line, bee.col), (3, 5));
    let comment = toks
        .iter()
        .find(|t| t.kind == TokKind::LineComment)
        .expect("comment");
    assert_eq!(comment.line, 2);
    assert!(
        !comment.text(src).contains('\r'),
        "a line comment must stop before the CR, not swallow it"
    );
}

#[test]
fn torture_fixture_lexes_without_stray_code_tokens() {
    let src = include_str!("fixtures/lexer_torture.rs");
    let toks = lex(src);
    // Every suspicious name in the fixture lives inside strings or comments.
    for name in ["unwrap", "HashMap", "Instant"] {
        assert!(
            !toks
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text(src) == name),
            "{name} leaked out of a string/comment into code position"
        );
    }
    // And the file still has real code.
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text(src) == "torture"));
}
