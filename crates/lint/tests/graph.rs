//! The interprocedural layers: item extraction, call resolution, the
//! reachability rules, and — the reason the whole subsystem exists — the
//! regression proving that reverting the `take_updates` try_lock fix in the
//! real serve sources is caught by `reactor-no-blocking-call`.

use std::path::Path;
use std::process::Command;

use memsense_lint::engine::SourceFile;
use memsense_lint::graph::{CallGraph, CallKind};
use memsense_lint::lint_sources;
use memsense_lint::syntax;

fn parse(rel: &str, src: &str) -> SourceFile {
    SourceFile::parse(rel, src.to_string())
}

fn node(graph: &CallGraph, display: &str) -> usize {
    (0..graph.nodes.len())
        .find(|&n| graph.nodes[n].item.display() == display)
        .unwrap_or_else(|| {
            let names: Vec<String> = graph.nodes.iter().map(|n| n.item.display()).collect();
            panic!("node {display:?} not found in {names:?}")
        })
}

// ---------------------------------------------------------------- syntax --

#[test]
fn extract_names_owners_visibility_and_tests() {
    let src = r#"
pub fn free() {}

pub(crate) fn scoped() {}

struct Widget;

impl Widget {
    pub fn new() -> Widget { Widget }
    fn helper(&self) {}
}

impl std::fmt::Display for Widget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Ok(())
    }
}

mod inner {
    pub fn nested() {}
}

#[cfg(test)]
mod tests {
    #[test]
    fn covered() {}
}

pub trait Solver {
    fn solve(&self) -> f64;
}
"#;
    let file = parse("crates/model/src/lib.rs", src);
    let items = syntax::extract(&file);
    let find = |display: &str| {
        items
            .iter()
            .find(|i| i.display() == display)
            .unwrap_or_else(|| panic!("{display} missing"))
    };
    assert!(find("free").is_pub);
    assert!(find("free").owner.is_none());
    assert!(
        !find("scoped").is_pub,
        "pub(crate) is not pub to the outside world"
    );
    assert!(find("Widget::new").is_pub);
    assert!(!find("Widget::helper").is_pub);
    assert_eq!(
        find("Widget::fmt").owner.as_deref(),
        Some("Widget"),
        "trait impls attribute to the implementing type"
    );
    assert_eq!(find("nested").modules, vec!["inner".to_string()]);
    assert!(find("covered").is_test);
    let solve = find("Solver::solve");
    assert!(solve.body.is_none(), "trait method decls have no body");
}

// ----------------------------------------------------------- resolution --

#[test]
fn self_and_method_calls_resolve_inside_the_impl() {
    let src = r#"
pub struct Engine;

impl Engine {
    pub fn run(&self) {
        self.step();
        Self::reset();
    }
    fn step(&self) {}
    fn reset() {}
}
"#;
    let files = [parse("crates/sim/src/lib.rs", src)];
    let graph = CallGraph::build(&files);
    let run = node(&graph, "Engine::run");
    let step = node(&graph, "Engine::step");
    let reset = node(&graph, "Engine::reset");
    assert!(graph.edges[run].contains(&step), "self.step() resolves");
    assert!(graph.edges[run].contains(&reset), "Self::reset() resolves");
}

#[test]
fn external_camelcase_qualifiers_do_not_resolve_to_workspace_fns() {
    // VecDeque::new must not edge to every workspace fn named `new`.
    let a = parse(
        "crates/sim/src/lib.rs",
        "pub fn build() { let q: std::collections::VecDeque<u32> = VecDeque::new(); }\n",
    );
    let b = parse(
        "crates/model/src/lib.rs",
        "pub struct Model;\nimpl Model {\n    pub fn new() -> Model { Model }\n}\n",
    );
    let files = [a, b];
    let graph = CallGraph::build(&files);
    let build = node(&graph, "build");
    assert!(
        graph.edges[build].is_empty(),
        "VecDeque is not a workspace type; the call stays unresolved"
    );
    let site = graph.calls[build]
        .iter()
        .find(|s| s.name == "new")
        .expect("call site recorded");
    assert_eq!(site.kind, CallKind::Path("VecDeque".to_string()));
    assert!(site.resolved.is_empty());
}

#[test]
fn method_calls_resolve_only_where_the_owner_type_is_mentioned() {
    let registry = parse(
        "crates/serve/src/registry.rs",
        "pub struct Registry;\nimpl Registry {\n    pub fn tick(&self) {}\n}\n",
    );
    // Mentions Registry: `.tick()` may be Registry::tick.
    let caller = parse(
        "crates/serve/src/server.rs",
        "use crate::registry::Registry;\npub fn pump(r: &Registry) { r.tick(); }\n",
    );
    // Never mentions Registry: its `.tick()` is some other type's method.
    let stranger = parse(
        "crates/sim/src/lib.rs",
        "pub fn advance(clock: &mut std::time::Instant) { clock.tick(); }\n",
    );
    let files = [registry, caller, stranger];
    let graph = CallGraph::build(&files);
    let tick = node(&graph, "Registry::tick");
    let pump = node(&graph, "pump");
    let advance = node(&graph, "advance");
    assert!(graph.edges[pump].contains(&tick));
    assert!(
        !graph.edges[advance].contains(&tick),
        "no Registry mention in the file, no edge"
    );
}

#[test]
fn non_test_callers_do_not_resolve_into_test_helpers() {
    let src = r#"
pub fn run() {
    setup();
}

fn setup() {}

#[cfg(test)]
mod tests {
    pub fn setup() {}
}
"#;
    let files = [parse("crates/model/src/lib.rs", src)];
    let graph = CallGraph::build(&files);
    let run = node(&graph, "run");
    let resolved = &graph.calls[run]
        .iter()
        .find(|s| s.name == "setup")
        .expect("site")
        .resolved;
    assert_eq!(resolved.len(), 1, "only the non-test setup is a candidate");
    assert!(!graph.nodes[resolved[0]].item.is_test);
}

// ----------------------------------------------------------- graph rules --

#[test]
fn reactor_rule_walks_the_chain_and_names_it() {
    let server = r#"
pub struct Reactor;

impl Reactor {
    pub fn run(&self) {
        self.pump();
    }
    fn pump(&self) {
        refresh();
    }
}
"#;
    let store = r#"
use std::sync::Mutex;

static CELL: Mutex<u64> = Mutex::new(0);

pub fn refresh() {
    if let Ok(mut cell) = CELL.lock() {
        *cell += 1;
    }
}
"#;
    let (diags, _) = lint_sources(vec![
        ("crates/serve/src/server.rs".to_string(), server.to_string()),
        ("crates/serve/src/store.rs".to_string(), store.to_string()),
    ]);
    let hit = diags
        .iter()
        .find(|d| d.rule == "reactor-no-blocking-call")
        .unwrap_or_else(|| panic!("no reactor diagnostic in {diags:?}"));
    assert_eq!(hit.file, "crates/serve/src/store.rs");
    assert_eq!(hit.symbol, "refresh");
    assert!(
        hit.message
            .contains("Reactor::run -> Reactor::pump -> refresh"),
        "chain missing from: {}",
        hit.message
    );
}

#[test]
fn transitive_panic_flags_the_public_root_not_the_helper() {
    let (diags, _) = lint_sources(vec![(
        "crates/model/src/lib.rs".to_string(),
        "fn decode(raw: &str) -> u64 {\n    raw.parse().unwrap()\n}\n\npub fn total(raw: &str) -> u64 {\n    decode(raw)\n}\n"
            .to_string(),
    )]);
    let hit = diags
        .iter()
        .find(|d| d.rule == "transitive-panic-in-lib")
        .unwrap_or_else(|| panic!("no transitive diagnostic in {diags:?}"));
    assert_eq!(hit.symbol, "total", "the public entry point is flagged");
    assert!(hit.message.contains("total -> decode"), "{}", hit.message);
    // The helper's own unwrap is the per-file rule's finding, at its line.
    assert!(diags
        .iter()
        .any(|d| d.rule == "no-panic-in-lib" && d.line == 2));
}

#[test]
fn taint_requires_both_a_source_and_a_reachable_sink() {
    let serializer = "pub fn canonical(body: &str) -> String {\n    body.to_string()\n}\n";
    let tainted = "use std::time::Instant;\npub fn stamp() -> String {\n    let t = Instant::now();\n    let _ = t.elapsed();\n    crate::canonical(\"x\")\n}\n";
    let (diags, _) = lint_sources(vec![
        (
            "crates/serve/src/json.rs".to_string(),
            serializer.to_string(),
        ),
        (
            "crates/serve/src/report.rs".to_string(),
            tainted.to_string(),
        ),
    ]);
    assert!(
        diags.iter().any(|d| d.rule == "nondeterminism-taint"),
        "source + sink must fire: {diags:?}"
    );
    // Remove the sink from the workspace: the same source goes quiet.
    let (diags, _) = lint_sources(vec![(
        "crates/serve/src/report.rs".to_string(),
        tainted.replace("crate::canonical(\"x\")", "String::new()"),
    )]);
    assert!(
        !diags.iter().any(|d| d.rule == "nondeterminism-taint"),
        "no reachable serializer, no taint: {diags:?}"
    );
}

// ------------------------------------------------- the PR 8 regression --

fn serve_src(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../serve/src")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// The acceptance criterion: on the **real** serve sources, the shipped
/// `take_updates` is clean, and reverting its try_lock fix back to a
/// blocking `lock()` (the PR 8 bug) brings back a `reactor-no-blocking-call`
/// diagnostic that names the reachability chain.
#[test]
fn reverting_the_take_updates_try_lock_fix_is_caught() {
    let server = serve_src("server.rs");
    let streams = serve_src("streams.rs");
    assert!(
        streams.contains("slot.try_lock()"),
        "take_updates no longer uses slot.try_lock(); update this regression test"
    );

    let sources = |streams: &str| {
        vec![
            ("crates/serve/src/server.rs".to_string(), server.clone()),
            (
                "crates/serve/src/streams.rs".to_string(),
                streams.to_string(),
            ),
        ]
    };
    let (clean, _) = lint_sources(sources(&streams));
    let reactor: Vec<_> = clean
        .iter()
        .filter(|d| d.rule == "reactor-no-blocking-call")
        .collect();
    assert!(
        reactor.is_empty(),
        "shipped serve sources must be reactor-clean: {reactor:?}"
    );

    let reverted = streams.replace("slot.try_lock()", "slot.lock()");
    let (dirty, _) = lint_sources(sources(&reverted));
    let hit = dirty
        .iter()
        .find(|d| d.rule == "reactor-no-blocking-call")
        .unwrap_or_else(|| panic!("revert not caught; diagnostics: {dirty:?}"));
    assert_eq!(hit.file, "crates/serve/src/streams.rs");
    assert_eq!(hit.symbol, "StreamRegistry::take_updates");
    assert!(
        hit.message.contains("Reactor::run") && hit.message.contains("take_updates"),
        "chain should run from the event loop to the revert: {}",
        hit.message
    );
}

/// The same revert, end to end through the binary: a scratch workspace
/// holding the real sources exits 0 as shipped and 1 when reverted, with
/// the diagnostic on stdout.
#[test]
fn reverted_scratch_workspace_fails_the_binary_gate() {
    let dir = std::env::temp_dir().join(format!("memsense-lint-revert-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/serve/src")).expect("scratch dirs");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("marker");
    std::fs::write(
        dir.join("crates/serve/src/server.rs"),
        serve_src("server.rs"),
    )
    .expect("server.rs");
    let streams = serve_src("streams.rs");

    let run = |streams: &str| {
        std::fs::write(dir.join("crates/serve/src/streams.rs"), streams).expect("streams.rs");
        Command::new(env!("CARGO_BIN_EXE_memsense-lint"))
            .args(["--root", dir.to_str().expect("utf-8 temp path")])
            .output()
            .expect("spawn memsense-lint")
    };

    let out = run(&streams);
    assert_eq!(
        out.status.code(),
        Some(0),
        "shipped sources gate clean: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let out = run(&streams.replace("slot.try_lock()", "slot.lock()"));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(
        out.status.code(),
        Some(1),
        "revert must fail the gate: {text}"
    );
    assert!(
        text.contains("reactor-no-blocking-call") && text.contains("take_updates"),
        "diagnostic names the revert: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
