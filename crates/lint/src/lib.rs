//! `memsense-lint`: workspace-aware static analysis for the memsense repo.
//!
//! The repo's headline guarantees — byte-identical repro output across
//! thread counts, a canonical JSON wire format with no NaN/`-0.0` leakage,
//! bit-exact sim golden snapshots, and an epoll reactor that never blocks —
//! are enforced dynamically by tests that must happen to exercise the
//! offending path. This crate closes the gap statically, in three layers:
//!
//! 1. a real error-tolerant Rust token scanner ([`lexer`]) feeding the
//!    per-file rule engine ([`rules`]) over every workspace `.rs` file
//!    ([`engine`]);
//! 2. a lightweight item extractor ([`syntax`]) and workspace-wide
//!    over-approximate call graph ([`graph`], dumped by `--graph`);
//! 3. interprocedural reachability rules ([`reach`]): the reactor-blocking,
//!    transitive-panic, and nondeterminism-taint invariants that no single
//!    file can witness.
//!
//! Findings print as `file:line:col rule-id message` ([`report`]), are
//! suppressed inline with `// memsense-lint: allow(rule-id)`, or are
//! accepted as enumerated, justified debt in a shrink-only
//! `LINT_BASELINE.json` ratchet ([`baseline`]).
//!
//! The `memsense-lint` binary drives it; the CI `lint` job gates on a clean
//! tree modulo the committed baseline and uploads the JSON report plus the
//! call-graph dump as artifacts. Run `memsense-lint --list-rules` for the
//! rule set and `--explain <rule-id>` for what each invariant protects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod reach;
pub mod report;
pub mod rules;
pub mod syntax;

use std::path::Path;

use engine::{relative, scan_workspace, SourceFile};
use graph::CallGraph;
use report::{Diagnostic, Report};

/// Lints a single file's source text under its workspace-relative path with
/// the **per-file** rules only, returning unsuppressed diagnostics in source
/// order. Interprocedural rules need the whole workspace — use
/// [`lint_sources`] for those.
pub fn lint_source(rel: &str, source: String) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel, source);
    let mut diags = rules::check_file(&file);
    fill_symbols(std::slice::from_ref(&file), &mut diags);
    diags
}

/// Runs both passes — per-file rules and workspace graph rules — over an
/// in-memory `(rel, source)` file set, returning sorted unsuppressed
/// diagnostics plus the call graph. This is the unit-testable core the
/// binary and the multi-file fixture tests share.
pub fn lint_sources(sources: Vec<(String, String)>) -> (Vec<Diagnostic>, CallGraph) {
    let files: Vec<SourceFile> = sources
        .into_iter()
        .map(|(rel, src)| SourceFile::parse(&rel, src))
        .collect();
    analyze(&files)
}

fn analyze(files: &[SourceFile]) -> (Vec<Diagnostic>, CallGraph) {
    let mut diagnostics = Vec::new();
    for file in files {
        diagnostics.extend(rules::check_file(file));
    }
    let graph = CallGraph::build(files);
    reach::check_graph(files, &graph, &mut diagnostics);
    fill_symbols(files, &mut diagnostics);
    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    (diagnostics, graph)
}

/// Stamps each diagnostic that has no symbol yet with the display name of
/// the innermost fn whose body covers its line (or `"-"` outside any fn), so
/// baseline keys are line-number-free.
fn fill_symbols(files: &[SourceFile], diags: &mut [Diagnostic]) {
    use std::collections::BTreeMap;
    let mut per_file: BTreeMap<&str, Vec<(u32, u32, String)>> = BTreeMap::new();
    for file in files {
        let spans = per_file.entry(file.rel.as_str()).or_default();
        for item in syntax::extract(file) {
            if let Some((open, close)) = item.body {
                let first = file.code[open].line;
                let last = file.code[close].line;
                spans.push((first, last, item.display()));
            }
        }
    }
    for d in diags.iter_mut().filter(|d| d.symbol.is_empty()) {
        let enclosing = per_file.get(d.file.as_str()).and_then(|spans| {
            spans
                .iter()
                .filter(|(first, last, _)| *first <= d.line && d.line <= *last)
                .min_by_key(|(first, last, _)| last - first)
                .map(|(_, _, name)| name.clone())
        });
        d.symbol = enclosing.unwrap_or_else(|| "-".to_string());
    }
}

/// Lints every `.rs` file under `root` (both passes) and assembles the
/// [`Report`] plus the workspace [`CallGraph`]. The report carries **all**
/// findings; baseline suppression is the caller's move
/// ([`baseline::Baseline::apply`]).
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be walked or a file cannot be
/// read as UTF-8 text.
pub fn analyze_workspace(root: &Path) -> std::io::Result<(Report, CallGraph)> {
    let paths = scan_workspace(root)?;
    let files_scanned = paths.len();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let source = std::fs::read_to_string(&path)?;
        let rel = relative(root, &path);
        files.push(SourceFile::parse(&rel, source));
    }
    let (diagnostics, graph) = analyze(&files);
    Ok((
        Report {
            root: root.display().to_string(),
            files_scanned,
            diagnostics,
            suppressed: 0,
            stale: Vec::new(),
        },
        graph,
    ))
}

/// Lints every `.rs` file under `root` and assembles the [`Report`]
/// (without the graph; see [`analyze_workspace`]).
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be walked or a file cannot be
/// read as UTF-8 text.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    analyze_workspace(root).map(|(report, _)| report)
}
