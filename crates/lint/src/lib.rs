//! `memsense-lint`: workspace-aware static analysis for the memsense repo.
//!
//! The repo's headline guarantees — byte-identical repro output across
//! thread counts, a canonical JSON wire format with no NaN/`-0.0` leakage,
//! and bit-exact sim golden snapshots — are enforced dynamically by tests
//! that must happen to exercise the offending path. This crate closes the
//! gap statically: a real Rust token scanner ([`lexer`]) feeds a rule engine
//! ([`rules`]) that walks every workspace `.rs` file ([`engine`]) and
//! reports `file:line:col rule-id message` diagnostics ([`report`]), with
//! `// memsense-lint: allow(rule-id)` inline suppressions.
//!
//! The `memsense-lint` binary drives it; the CI `lint` job gates on a clean
//! tree and uploads the JSON report as an artifact. Run `memsense-lint
//! --list-rules` for the rule set and `--explain <rule-id>` for what each
//! invariant protects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::Path;

use engine::{relative, scan_workspace, SourceFile};
use report::{Diagnostic, Report};

/// Lints a single file's source text under its workspace-relative path,
/// returning unsuppressed diagnostics in source order. This is the
/// unit-testable core the binary and the fixture tests share.
pub fn lint_source(rel: &str, source: String) -> Vec<Diagnostic> {
    rules::check_file(&SourceFile::parse(rel, source))
}

/// Lints every `.rs` file under `root` and assembles the [`Report`].
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be walked or a file cannot be
/// read as UTF-8 text.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = scan_workspace(root)?;
    let files_scanned = files.len();
    let mut diagnostics = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let rel = relative(root, &path);
        diagnostics.extend(lint_source(&rel, source));
    }
    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(Report {
        root: root.display().to_string(),
        files_scanned,
        diagnostics,
    })
}
