//! Diagnostics and report rendering (human text and canonical JSON).

use std::collections::BTreeMap;

use memsense_experiments::json::Json;

/// One finding: where, which rule, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// The rule id that fired.
    pub rule: &'static str,
    /// The enclosing (or flagged) function in `Owner::name` form, or `"-"`
    /// when the finding sits outside any fn. Baseline entries key on this
    /// instead of line numbers, so unrelated edits don't churn the ratchet.
    pub symbol: String,
    /// Human-readable explanation with a fix hint. Interprocedural rules
    /// embed the root → sink call chain here.
    pub message: String,
}

impl Diagnostic {
    /// The one-line `file:line:col rule-id message` form.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A whole lint run: every diagnostic plus scan statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The root that was scanned, as given on the command line.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, col, rule). When a baseline is
    /// in force these are the findings *left over* after suppression.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by the baseline ratchet (0 without a baseline).
    pub suppressed: usize,
    /// Baseline keys that matched fewer findings than recorded — stale debt
    /// entries that must be deleted. Non-empty fails the run.
    pub stale: Vec<String>,
}

impl Report {
    /// Per-rule diagnostic counts, sorted by rule id.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.rule).or_insert(0) += 1;
        }
        counts
    }

    /// The human rendering: one line per diagnostic, stale-baseline notices,
    /// then a summary line.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.human());
            out.push('\n');
        }
        for key in &self.stale {
            out.push_str(&format!(
                "stale baseline entry {key}: the debt shrank — delete it from LINT_BASELINE.json\n"
            ));
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// The one-line summary.
    pub fn summary(&self) -> String {
        let baseline_note = if self.suppressed > 0 {
            format!(" ({} baseline-suppressed)", self.suppressed)
        } else {
            String::new()
        };
        if self.diagnostics.is_empty() && self.stale.is_empty() {
            format!(
                "memsense-lint: clean ({} files scanned){baseline_note}",
                self.files_scanned
            )
        } else {
            let by_rule: Vec<String> = self
                .counts()
                .into_iter()
                .map(|(rule, n)| format!("{rule}: {n}"))
                .collect();
            format!(
                "memsense-lint: {} diagnostic(s), {} stale baseline entr(ies) in {} files scanned [{}]{baseline_note}",
                self.diagnostics.len(),
                self.stale.len(),
                self.files_scanned,
                by_rule.join(", ")
            )
        }
    }

    /// The report as a [`Json`] value (schema `memsense-lint/2`: adds the
    /// per-diagnostic `symbol` and the `baseline` suppression summary).
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("version", Json::str("memsense-lint/2")),
            ("root", Json::str(self.root.clone())),
            ("files_scanned", Json::num(self.files_scanned as f64)),
            (
                "diagnostics",
                Json::Arr(
                    self.diagnostics
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("file", Json::str(d.file.clone())),
                                ("line", Json::num(f64::from(d.line))),
                                ("col", Json::num(f64::from(d.col))),
                                ("rule", Json::str(d.rule)),
                                ("symbol", Json::str(d.symbol.clone())),
                                ("message", Json::str(d.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "baseline",
                Json::obj(vec![
                    ("suppressed", Json::num(self.suppressed as f64)),
                    (
                        "stale",
                        Json::Arr(self.stale.iter().cloned().map(Json::str).collect()),
                    ),
                ]),
            ),
            (
                "summary",
                Json::Obj(
                    self.counts()
                        .into_iter()
                        .map(|(rule, n)| (rule.to_string(), Json::num(n as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// The report as pretty-printed JSON, via the shared escaping-correct
    /// serializer (`memsense_experiments::json`).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }
}
