//! Diagnostics and report rendering (human text and canonical JSON).

use std::collections::BTreeMap;

use memsense_experiments::json::Json;

/// One finding: where, which rule, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// The rule id that fired.
    pub rule: &'static str,
    /// Human-readable explanation with a fix hint.
    pub message: String,
}

impl Diagnostic {
    /// The one-line `file:line:col rule-id message` form.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A whole lint run: every diagnostic plus scan statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The root that was scanned, as given on the command line.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Per-rule diagnostic counts, sorted by rule id.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.rule).or_insert(0) += 1;
        }
        counts
    }

    /// The human rendering: one line per diagnostic, then a summary line.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.human());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// The one-line summary.
    pub fn summary(&self) -> String {
        if self.diagnostics.is_empty() {
            format!(
                "memsense-lint: clean ({} files scanned)",
                self.files_scanned
            )
        } else {
            let by_rule: Vec<String> = self
                .counts()
                .into_iter()
                .map(|(rule, n)| format!("{rule}: {n}"))
                .collect();
            format!(
                "memsense-lint: {} diagnostic(s) in {} files scanned [{}]",
                self.diagnostics.len(),
                self.files_scanned,
                by_rule.join(", ")
            )
        }
    }

    /// The report as a [`Json`] value (schema `memsense-lint/1`).
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("version", Json::str("memsense-lint/1")),
            ("root", Json::str(self.root.clone())),
            ("files_scanned", Json::num(self.files_scanned as f64)),
            (
                "diagnostics",
                Json::Arr(
                    self.diagnostics
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("file", Json::str(d.file.clone())),
                                ("line", Json::num(f64::from(d.line))),
                                ("col", Json::num(f64::from(d.col))),
                                ("rule", Json::str(d.rule)),
                                ("message", Json::str(d.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary",
                Json::Obj(
                    self.counts()
                        .into_iter()
                        .map(|(rule, n)| (rule.to_string(), Json::num(n as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// The report as pretty-printed JSON, via the shared escaping-correct
    /// serializer (`memsense_experiments::json`).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }
}
