//! Layer 2 of the interprocedural analyzer: the workspace symbol index and
//! over-approximate call graph.
//!
//! Resolution is name-based, never type-based, and deliberately
//! over-approximates:
//!
//! * a free call `foo()` resolves to every free fn named `foo` in the
//!   workspace (falling back to mentioned-type impl methods if no free fn
//!   matches — `drop(x)` keeps edges to local `Drop` impls);
//! * a path call `Owner::foo()` prefers fns whose impl self-type matches
//!   the qualifier (`Self` maps to the enclosing impl). A CamelCase
//!   qualifier that matches no workspace impl is an external type
//!   (`VecDeque::new`) and resolves to nothing; a lowercase qualifier is a
//!   module path and falls back to every fn of that name;
//! * a method call `x.foo()` resolves to every impl method named `foo`
//!   whose self-type is *mentioned in the calling file* — naming a type is
//!   a precondition for constructing or receiving one, so this keeps every
//!   plausible edge while cutting cross-crate name collisions (`lexer.rs`
//!   calling `.run()` no longer edges to the serve reactor). A direct
//!   `self.foo()` resolves to the enclosing impl's own method when it has
//!   one. The receiver's type is still unknown, so reachability rules
//!   *also* treat bare blocking method names (`.lock()`) as potential std
//!   sinks regardless of what the name resolves to — ambiguity adds sinks,
//!   never removes them.
//!
//! Candidates are further filtered by role — library code never calls into
//! a binary, test, bench, or example, and non-test code never calls a
//! `#[cfg(test)]` helper — which kills the worst remaining phantom edges.
//! Net effect: reachability rules can report false positives (silenced with
//! justified allows or baseline entries) but not false negatives.
//!
//! Everything is ordered: nodes by (file, token position), edges sorted and
//! deduplicated, the `--graph` dump canonical JSON. Two runs over the same
//! tree are byte-identical at any `MEMSENSE_THREADS`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use memsense_experiments::json::Json;

use crate::engine::{Role, SourceFile};
use crate::lexer::TokKind;
use crate::syntax::{extract, FnItem};

/// One function in the workspace graph.
pub struct FnNode {
    /// Index into the analyzed file list.
    pub file: usize,
    /// Workspace-relative path of the defining file.
    pub rel: String,
    /// The defining file's role.
    pub role: Role,
    /// The extracted item.
    pub item: FnItem,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)`.
    Free,
    /// `Qual::foo(…)` — the last path segment before the callee name.
    Path(String),
    /// `recv.foo(…)`.
    Method,
}

/// One call site inside a function body.
pub struct CallSite {
    /// The callee name as written.
    pub name: String,
    /// Free, path-qualified, or method call.
    pub kind: CallKind,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// 1-based byte column of the callee name token.
    pub col: u32,
    /// Whether the receiver is literally `self` (`self.foo()`): when such a
    /// call resolves to the enclosing impl's own method, it is provably not
    /// a std-library call.
    pub self_recv: bool,
    /// Workspace fns the name resolves to (node indices, sorted).
    pub resolved: Vec<usize>,
}

/// The workspace call graph: nodes, per-node call sites, and resolved edges.
pub struct CallGraph {
    /// Every fn in the workspace, ordered by (file, source position).
    pub nodes: Vec<FnNode>,
    /// Per-node call sites, in source order.
    pub calls: Vec<Vec<CallSite>>,
    /// Per-node outgoing edges (sorted, deduplicated).
    pub edges: Vec<Vec<usize>>,
}

/// Identifiers that look like calls but are control flow or bindings.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "in", "as", "where", "impl", "dyn", "use", "pub", "mod", "unsafe",
    "async", "await", "const", "static", "type", "trait", "struct", "enum", "union",
];

impl CallGraph {
    /// Builds the graph over already-parsed files.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut file_items: Vec<Vec<usize>> = Vec::with_capacity(files.len());
        for (fi, file) in files.iter().enumerate() {
            let mut indices = Vec::new();
            for item in extract(file) {
                indices.push(nodes.len());
                nodes.push(FnNode {
                    file: fi,
                    rel: file.rel.clone(),
                    role: file.role,
                    item,
                });
            }
            file_items.push(indices);
        }

        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (n, node) in nodes.iter().enumerate() {
            by_name.entry(&node.item.name).or_default().push(n);
        }

        let mut calls: Vec<Vec<CallSite>> = (0..nodes.len()).map(|_| Vec::new()).collect();
        for (fi, file) in files.iter().enumerate() {
            let mentions: BTreeSet<&str> = file
                .code
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text(&file.src))
                .collect();
            collect_calls(
                file,
                &file_items[fi],
                &nodes,
                &by_name,
                &mentions,
                &mut calls,
            );
        }

        let edges = calls
            .iter()
            .map(|sites| {
                let mut out: Vec<usize> = sites.iter().flat_map(|s| s.resolved.clone()).collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();

        CallGraph {
            nodes,
            calls,
            edges,
        }
    }

    /// BFS over resolved edges from `roots`. Returns, per node, the BFS
    /// predecessor (`parent[root] == root`); unreached nodes are `None`.
    /// Deterministic: queue order follows sorted edge lists.
    pub fn reach(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if parent[m].is_none() {
                    parent[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// The root → … → `n` chain for a BFS parent map, as display names.
    pub fn chain(&self, parent: &[Option<usize>], n: usize) -> Vec<String> {
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path.iter().map(|&i| self.nodes[i].item.display()).collect()
    }

    /// A stable human-readable id for node `n`.
    pub fn node_id(&self, n: usize) -> String {
        let node = &self.nodes[n];
        format!("{}:{} {}", node.rel, node.item.line, node.item.display())
    }

    /// The graph as canonical JSON (schema `memsense-lint-graph/1`):
    /// byte-identical across runs and thread counts.
    pub fn to_canonical_json(&self) -> String {
        let nodes: Vec<Json> = (0..self.nodes.len())
            .map(|n| {
                let node = &self.nodes[n];
                let calls: Vec<Json> = self.edges[n]
                    .iter()
                    .map(|&m| Json::str(self.node_id(m)))
                    .collect();
                let unresolved: BTreeSet<String> = self.calls[n]
                    .iter()
                    .filter(|s| s.resolved.is_empty())
                    .map(|s| s.name.clone())
                    .collect();
                Json::obj(vec![
                    ("id", Json::str(self.node_id(n))),
                    ("file", Json::str(node.rel.clone())),
                    ("line", Json::num(f64::from(node.item.line))),
                    ("name", Json::str(node.item.name.clone())),
                    (
                        "owner",
                        match &node.item.owner {
                            Some(o) => Json::str(o.clone()),
                            None => Json::Null,
                        },
                    ),
                    ("public", Json::Bool(node.item.is_pub)),
                    ("test", Json::Bool(node.item.is_test)),
                    ("role", Json::str(role_name(node.role))),
                    ("calls", Json::Arr(calls)),
                    (
                        "unresolved",
                        Json::Arr(unresolved.into_iter().map(Json::str).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("version", Json::str("memsense-lint-graph/1")),
            ("functions", Json::num(self.nodes.len() as f64)),
            ("nodes", Json::Arr(nodes)),
        ])
        .canonical()
    }
}

fn role_name(role: Role) -> &'static str {
    match role {
        Role::Lib => "lib",
        Role::Bin => "bin",
        Role::Test => "test",
        Role::Bench => "bench",
        Role::Example => "example",
    }
}

/// Scans one file's code tokens, attributing each `name(`-shaped call to the
/// innermost enclosing fn body and resolving it against the symbol index.
fn collect_calls(
    file: &SourceFile,
    items: &[usize],
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    mentions: &BTreeSet<&str>,
    calls: &mut [Vec<CallSite>],
) {
    // Innermost-enclosing-body attribution via a (close, node) stack; bodies
    // are properly nested, and `items` is in source order.
    let bodies: Vec<(usize, usize, usize)> = items
        .iter()
        .filter_map(|&n| nodes[n].item.body.map(|(open, close)| (open, close, n)))
        .collect();
    let mut next_body = 0usize;
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (close, node)

    for i in 0..file.code.len() {
        while next_body < bodies.len() && bodies[next_body].0 <= i {
            stack.push((bodies[next_body].1, bodies[next_body].2));
            next_body += 1;
        }
        while stack.last().is_some_and(|&(close, _)| i > close) {
            stack.pop();
        }
        let Some(&(_, enclosing)) = stack.last() else {
            continue;
        };
        if file.code[i].kind != TokKind::Ident || !file.punct_is(i + 1, '(') {
            continue;
        }
        let name = file.txt(i);
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `fn name(` is the declaration itself, not a call.
        if i >= 1 && file.ident_is(i - 1, "fn") {
            continue;
        }
        let self_receiver = i >= 2 && file.punct_is(i - 1, '.') && file.ident_is(i - 2, "self");
        let kind = if i >= 1 && file.punct_is(i - 1, '.') {
            CallKind::Method
        } else if i >= 2 && file.punct_is(i - 1, ':') && file.punct_is(i - 2, ':') {
            let qual = if i >= 3 && file.code[i - 3].kind == TokKind::Ident {
                let q = file.txt(i - 3);
                if q == "Self" {
                    nodes[enclosing].item.owner.clone().unwrap_or_default()
                } else {
                    q.to_string()
                }
            } else {
                String::new()
            };
            CallKind::Path(qual)
        } else {
            CallKind::Free
        };
        let resolved = resolve(
            &kind,
            name,
            enclosing,
            self_receiver,
            nodes,
            by_name,
            mentions,
        );
        let tok = file.code[i];
        calls[enclosing].push(CallSite {
            name: name.to_string(),
            kind,
            line: tok.line,
            col: tok.col,
            self_recv: self_receiver,
            resolved,
        });
    }
}

/// Resolves one call site to workspace fn candidates (sorted node indices).
fn resolve(
    kind: &CallKind,
    name: &str,
    caller: usize,
    self_receiver: bool,
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    mentions: &BTreeSet<&str>,
) -> Vec<usize> {
    let Some(all) = by_name.get(name) else {
        return Vec::new();
    };
    let caller_role = nodes[caller].role;
    let caller_test = nodes[caller].item.is_test || caller_role != Role::Lib;
    let viable = |&n: &usize| {
        let cand = &nodes[n];
        // Library code cannot call into bins/tests/benches/examples, and
        // non-test code cannot call #[cfg(test)] helpers.
        (cand.role == Role::Lib || cand.role == caller_role)
            && (!cand.item.is_test || caller_test)
            && n != caller
    };
    // An impl method is only a plausible callee if its self-type is named
    // somewhere in the calling file (free fns pass trivially).
    let mentioned = |&n: &usize| {
        nodes[n]
            .item
            .owner
            .as_deref()
            .is_none_or(|o| mentions.contains(o))
    };
    match kind {
        CallKind::Free => {
            let free: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&n| nodes[n].item.owner.is_none())
                .filter(viable)
                .collect();
            if free.is_empty() {
                // `drop(x)`-style: keep impls of types this file names.
                all.iter()
                    .copied()
                    .filter(viable)
                    .filter(mentioned)
                    .collect()
            } else {
                free
            }
        }
        CallKind::Path(qual) => {
            let owned: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&n| nodes[n].item.owner.as_deref() == Some(qual.as_str()))
                .filter(viable)
                .collect();
            if !owned.is_empty() {
                return owned;
            }
            // A CamelCase qualifier that owns no workspace fn is an external
            // type (`VecDeque::new`); a lowercase one is a module path
            // (`api::solve`) and keeps every same-named candidate.
            if qual.chars().next().is_some_and(char::is_uppercase) {
                Vec::new()
            } else {
                all.iter()
                    .copied()
                    .filter(viable)
                    .filter(mentioned)
                    .collect()
            }
        }
        CallKind::Method => {
            let impls: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&n| nodes[n].item.owner.is_some())
                .filter(viable)
                .collect();
            // `self.foo()` with a matching method on the enclosing impl is
            // unambiguous.
            if self_receiver {
                if let Some(owner) = nodes[caller].item.owner.as_deref() {
                    let own: Vec<usize> = impls
                        .iter()
                        .copied()
                        .filter(|&n| nodes[n].item.owner.as_deref() == Some(owner))
                        .collect();
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            impls.into_iter().filter(|n| mentioned(n)).collect()
        }
    }
}
