//! Layer 1 of the interprocedural analyzer: a lightweight item extractor on
//! top of the token stream.
//!
//! [`extract`] walks a [`SourceFile`]'s code tokens with a brace-tree scope
//! stack (`mod name { … }`, `impl [Trait for] Type { … }`, `trait Name { … }`,
//! `fn name { … }`)
//! and yields every function item with its name, enclosing impl self-type,
//! in-file module path, visibility, test-ness, and body token range. The
//! call-graph layer ([`crate::graph`]) builds its symbol index from these
//! items.
//!
//! This is deliberately not a parser: it never fails, and it only tracks the
//! facts the reachability rules need. Known simplifications (all
//! over-approximating in the safe direction, documented in EXPERIMENTS.md):
//! closures and nested fns are attributed to the innermost enclosing `fn`,
//! and only a bare `pub` counts as public (`pub(crate)` etc. stay
//! workspace-internal).

use crate::engine::SourceFile;
use crate::lexer::TokKind;

/// One extracted `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The self-type of the enclosing `impl` block, if any (last path
    /// segment: `impl fmt::Display for CpiStack` yields `CpiStack`).
    pub owner: Option<String>,
    /// The in-file `mod` path the item sits under (outermost first).
    pub modules: Vec<String>,
    /// Whether the item is bare `pub`. `pub(crate)`/`pub(super)` are
    /// treated as non-public: they cannot escape the workspace.
    pub is_pub: bool,
    /// Whether the item sits inside a `#[cfg(test)]`/`#[test]` region.
    pub is_test: bool,
    /// 1-based line/col of the `fn` name token.
    pub line: u32,
    /// 1-based byte column of the `fn` name token.
    pub col: u32,
    /// Code-token index of the `fn` keyword.
    pub sig_start: usize,
    /// Code-token indices `(open, close)` of the body braces, if the item
    /// has a body (trait method declarations end in `;` and have none).
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// `Owner::name` when the fn sits in an impl block, else `name`.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

enum Scope {
    Mod(String),
    Impl(String),
    Other,
}

/// Extracts every `fn` item from `file`, in source order.
pub fn extract(file: &SourceFile) -> Vec<FnItem> {
    let code = &file.code;
    let mut items = Vec::new();
    // Stack of (scope, close-brace token index).
    let mut scopes: Vec<(Scope, usize)> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        while let Some((_, close)) = scopes.last() {
            if i > *close {
                scopes.pop();
            } else {
                break;
            }
        }
        if code[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match file.txt(i) {
            "mod" if code.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) => {
                // `mod name { … }`; `mod name;` opens no scope.
                if file.punct_is(i + 2, '{') {
                    if let Some(close) = file.matching_bracket(i + 2) {
                        scopes.push((Scope::Mod(file.txt(i + 1).to_string()), close));
                    }
                }
                i += 2;
            }
            "impl" => {
                let Some(open) = body_open(file, i + 1) else {
                    i += 1;
                    continue;
                };
                let name = impl_self_type(file, i + 1, open);
                if let Some(close) = file.matching_bracket(open) {
                    scopes.push((Scope::Impl(name), close));
                }
                i = open + 1;
            }
            "trait" if code.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) => {
                // Trait declarations own their method items the same way an
                // impl block does (`Solver::solve`); default bodies get
                // analyzed like any other fn.
                let name = file.txt(i + 1).to_string();
                match body_open(file, i + 2) {
                    Some(open) => {
                        if let Some(close) = file.matching_bracket(open) {
                            scopes.push((Scope::Impl(name), close));
                        }
                        i = open + 1;
                    }
                    None => i += 2,
                }
            }
            "fn" if code.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) => {
                let name_tok = code[i + 1];
                let body = body_open(file, i + 2)
                    .and_then(|open| file.matching_bracket(open).map(|close| (open, close)));
                let owner = scopes.iter().rev().find_map(|(s, _)| match s {
                    Scope::Impl(t) => Some(t.clone()),
                    _ => None,
                });
                let modules = scopes
                    .iter()
                    .filter_map(|(s, _)| match s {
                        Scope::Mod(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                items.push(FnItem {
                    name: file.txt(i + 1).to_string(),
                    owner,
                    modules,
                    is_pub: is_pub_fn(file, i),
                    is_test: file.in_test_item(i),
                    line: name_tok.line,
                    col: name_tok.col,
                    sig_start: i,
                    body,
                });
                if let Some((open, close)) = body {
                    scopes.push((Scope::Other, close));
                    i = open + 1;
                } else {
                    i += 2;
                }
            }
            _ => i += 1,
        }
    }
    items
}

/// Scanning forward from `from`, the first `{` at bracket depth 0 — the
/// item's body open brace. A `;` at depth 0 first means the item has no body.
fn body_open(file: &SourceFile, from: usize) -> Option<usize> {
    let mut depth = 0i64;
    for j in from..file.code.len() {
        if file.code[j].kind != TokKind::Punct {
            continue;
        }
        match file.src.as_bytes()[file.code[j].start] {
            b'{' if depth == 0 => return Some(j),
            b';' if depth == 0 => return None,
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            _ => {}
        }
    }
    None
}

/// The self-type name of an `impl` header spanning code tokens
/// `header_start..open`: the last segment of the type path after `for` if
/// present (`impl Trait for Type`), else after `impl` itself. Generic
/// parameter lists (`impl<T: Bound>`) are skipped by angle-depth tracking.
fn impl_self_type(file: &SourceFile, header_start: usize, open: usize) -> String {
    let mut angle = 0i64;
    let mut last_for: Option<usize> = None;
    for j in header_start..open {
        match file.code[j].kind {
            TokKind::Punct => match file.src.as_bytes()[file.code[j].start] {
                b'<' => angle += 1,
                b'>' => angle = (angle - 1).max(0),
                _ => {}
            },
            TokKind::Ident if angle == 0 && file.txt(j) == "for" => last_for = Some(j),
            _ => {}
        }
    }
    let from = last_for.map_or(header_start, |j| j + 1);
    // Last path-segment ident at angle depth 0 before the body opens.
    let mut angle = 0i64;
    let mut name = String::new();
    for j in from..open {
        match file.code[j].kind {
            TokKind::Punct => match file.src.as_bytes()[file.code[j].start] {
                b'<' => angle += 1,
                b'>' => angle = (angle - 1).max(0),
                _ => {}
            },
            TokKind::Ident if angle == 0 => {
                let t = file.txt(j);
                if !matches!(t, "dyn" | "mut" | "const" | "where") {
                    name = t.to_string();
                }
            }
            _ => {}
        }
    }
    name
}

/// Whether the `fn` keyword at code token `fn_idx` is declared bare `pub`:
/// walk back over `unsafe`/`const`/`async`/`extern "C"` modifiers, then
/// check for `pub` not followed by a restriction parenthesis.
fn is_pub_fn(file: &SourceFile, fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        let prev = j - 1;
        let is_modifier = match file.code[prev].kind {
            TokKind::Ident => matches!(file.txt(prev), "unsafe" | "const" | "async" | "extern"),
            TokKind::StrLit => true, // the ABI string of `extern "C"`
            _ => false,
        };
        if !is_modifier {
            break;
        }
        j = prev;
    }
    j > 0 && file.ident_is(j - 1, "pub") && !file.punct_is(j, '(')
}
