//! The `LINT_BASELINE.json` ratchet: known debt, enumerated and justified,
//! allowed only to shrink.
//!
//! A baseline entry keys on `(rule, file, symbol)` — never on line numbers,
//! so unrelated edits don't churn the file — and carries the number of
//! accepted findings plus a mandatory human justification. Applying a
//! baseline:
//!
//! * suppresses up to `count` matching diagnostics per entry;
//! * leaves any *excess* findings visible (new debt fails CI);
//! * marks entries that matched *fewer* findings than recorded as **stale**
//!   — the fix landed, so the entry must be deleted. Stale entries fail the
//!   run too: the ratchet only turns one way.
//!
//! `--write-baseline` regenerates the file from the current findings,
//! preserving existing justifications; new entries get a `TODO` placeholder
//! that the strict loader rejects, so an unjustified baseline cannot gate
//! CI.

use std::collections::BTreeMap;
use std::path::Path;

use memsense_experiments::json::Json;

use crate::report::Diagnostic;

/// The baseline file schema version.
pub const BASELINE_VERSION: &str = "memsense-lint-baseline/1";

/// The placeholder `--write-baseline` stamps on new entries.
pub const TODO_JUSTIFICATION: &str = "TODO: justify this accepted finding";

/// One accepted-debt entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// The flagged symbol (enclosing fn, `Owner::name` form).
    pub symbol: String,
    /// How many findings of this key are accepted.
    pub count: usize,
    /// Why the debt is acceptable. Must be non-empty and not the TODO
    /// placeholder for the baseline to gate a run.
    pub justification: String,
}

impl BaselineEntry {
    fn key(&self) -> (String, String, String) {
        (self.rule.clone(), self.file.clone(), self.symbol.clone())
    }
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries sorted by (rule, file, symbol).
    pub entries: Vec<BaselineEntry>,
}

/// The result of applying a baseline to a diagnostic list.
pub struct Applied {
    /// Diagnostics not covered by any entry (these fail the run).
    pub remaining: Vec<Diagnostic>,
    /// How many diagnostics the baseline suppressed.
    pub suppressed: usize,
    /// Keys whose entry matched fewer findings than recorded: the debt
    /// shrank, so the entry must be removed (these fail the run too).
    pub stale: Vec<String>,
}

fn diag_key(d: &Diagnostic) -> (String, String, String) {
    (d.rule.to_string(), d.file.clone(), d.symbol.clone())
}

impl Baseline {
    /// Parses a baseline document, enforcing the schema and — when `strict`
    /// — a real justification on every entry.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed JSON, a wrong schema
    /// version, or (strict) a missing/TODO justification.
    pub fn parse(src: &str, strict: bool) -> Result<Baseline, String> {
        let doc = Json::parse(src).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        match doc.get("version").and_then(Json::as_str) {
            Some(BASELINE_VERSION) => {}
            other => {
                return Err(format!(
                    "baseline version {other:?} (expected {BASELINE_VERSION:?})"
                ))
            }
        }
        let raw = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("baseline has no \"entries\" array")?;
        let mut entries = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let field = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("baseline entry {i} is missing string field {k:?}"))
            };
            let entry = BaselineEntry {
                rule: field("rule")?,
                file: field("file")?,
                symbol: field("symbol")?,
                count: e
                    .get("count")
                    .and_then(Json::as_f64)
                    .filter(|c| c.fract() == 0.0 && *c >= 1.0)
                    .ok_or(format!("baseline entry {i} needs a positive integer count"))?
                    as usize,
                justification: field("justification")?,
            };
            if strict {
                let j = entry.justification.trim();
                if j.is_empty() || j.starts_with("TODO") {
                    return Err(format!(
                        "baseline entry for ({}, {}, {}) has no justification; \
                         every accepted finding must say why",
                        entry.rule, entry.file, entry.symbol
                    ));
                }
            }
            entries.push(entry);
        }
        entries.sort_by_key(BaselineEntry::key);
        Ok(Baseline { entries })
    }

    /// Loads and strictly parses a baseline file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and [`Baseline::parse`] errors as messages.
    pub fn load(path: &Path, strict: bool) -> Result<Baseline, String> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::parse(&src, strict)
    }

    /// Applies the ratchet: suppress accepted findings, surface excess ones,
    /// and flag entries whose debt shrank.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Applied {
        let budget: BTreeMap<(String, String, String), usize> =
            self.entries.iter().map(|e| (e.key(), e.count)).collect();
        let mut used: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        let mut remaining = Vec::new();
        let mut suppressed = 0usize;
        for d in diags {
            let key = diag_key(&d);
            let Some(&count) = budget.get(&key) else {
                remaining.push(d);
                continue;
            };
            let seen = used.entry(key).or_insert(0);
            if *seen < count {
                *seen += 1;
                suppressed += 1;
            } else {
                remaining.push(d);
            }
        }
        let stale = self
            .entries
            .iter()
            .filter(|e| used.get(&e.key()).copied().unwrap_or(0) < e.count)
            .map(|e| format!("({}, {}, {})", e.rule, e.file, e.symbol))
            .collect();
        Applied {
            remaining,
            suppressed,
            stale,
        }
    }

    /// Builds a baseline from the current findings, carrying over
    /// justifications from `prev` and stamping [`TODO_JUSTIFICATION`] on new
    /// keys.
    pub fn from_findings(diags: &[Diagnostic], prev: &Baseline) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for d in diags {
            *counts.entry(diag_key(d)).or_insert(0) += 1;
        }
        let justifications: BTreeMap<(String, String, String), &str> = prev
            .entries
            .iter()
            .map(|e| (e.key(), e.justification.as_str()))
            .collect();
        let entries = counts
            .into_iter()
            .map(|((rule, file, symbol), count)| {
                let justification = justifications
                    .get(&(rule.clone(), file.clone(), symbol.clone()))
                    .map_or(TODO_JUSTIFICATION, |j| j)
                    .to_string();
                BaselineEntry {
                    rule,
                    file,
                    symbol,
                    count,
                    justification,
                }
            })
            .collect();
        Baseline { entries }
    }

    /// The baseline as pretty canonical JSON (the committed-file form).
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("version", Json::str(BASELINE_VERSION)),
            (
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("rule", Json::str(e.rule.clone())),
                                ("file", Json::str(e.file.clone())),
                                ("symbol", Json::str(e.symbol.clone())),
                                ("count", Json::num(e.count as f64)),
                                ("justification", Json::str(e.justification.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string_pretty()
    }
}
