//! The `memsense-lint` command-line driver.
//!
//! Exit codes follow the workspace convention (the `MEMSENSE_THREADS`
//! diagnostic convention from the experiments crate): `0` clean, `1` one or
//! more diagnostics (or stale baseline entries), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use memsense_lint::baseline::Baseline;
use memsense_lint::rules::{rule, RULES};

const USAGE: &str = "\
memsense-lint: workspace static analysis for determinism, panic-freedom, reactor-blocking, and wire-format invariants

USAGE:
    memsense-lint [--root DIR] [--format human|json] [--out FILE] [--graph FILE]
                  [--baseline FILE | --no-baseline] [--write-baseline FILE]
    memsense-lint --list-rules
    memsense-lint --explain <rule-id>

OPTIONS:
    --root DIR             Workspace root to scan (default: .)
    --format FORMAT        Report format: human (default) or json
    --out FILE             Write the report to FILE; diagnostics still print to stdout
    --graph FILE           Dump the workspace call graph as canonical JSON to FILE
    --baseline FILE        Apply the accepted-debt ratchet from FILE
    --no-baseline          Ignore an auto-detected LINT_BASELINE.json at the root
    --write-baseline FILE  Write the current findings as a baseline to FILE
                           (keeps existing justifications; new entries get a
                           TODO placeholder the strict loader rejects)
    --list-rules           List every rule id with a one-line summary
    --explain ID           Explain the invariant behind a rule and how to fix/suppress it

Without --baseline/--no-baseline, a LINT_BASELINE.json at the root is applied
automatically. Baseline entries key on (rule, file, symbol), carry a mandatory
justification, and may only shrink: findings beyond an entry's count fail the
run, and so do stale entries whose debt no longer exists.

EXIT CODES:
    0  clean tree (modulo the baseline)
    1  one or more diagnostics, or stale baseline entries
    2  usage, I/O, or baseline-format error

Suppression: `// memsense-lint: allow(rule-id)` on the offending line, or on
the line above, with a one-line justification.";

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut out: Option<PathBuf> = None;
    let mut graph_out: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            "--list-rules" => {
                for r in RULES {
                    println!("{:<32} {}", r.id, r.summary);
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--explain" => {
                let id = args.next().ok_or("--explain requires a rule id")?;
                let r = rule(&id).ok_or_else(|| {
                    format!("unknown rule {id:?}; run --list-rules for the rule set")
                })?;
                println!("{}\n", r.id);
                println!("invariant: {}\n", r.invariant);
                println!("fix: {}\n", r.fix);
                println!("suppress: // memsense-lint: allow({})", r.id);
                return Ok(ExitCode::SUCCESS);
            }
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root requires a directory")?);
            }
            "--format" => {
                format = match args
                    .next()
                    .ok_or("--format requires human or json")?
                    .as_str()
                {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?} (human or json)")),
                };
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().ok_or("--out requires a path")?));
            }
            "--graph" => {
                graph_out = Some(PathBuf::from(args.next().ok_or("--graph requires a path")?));
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    args.next().ok_or("--baseline requires a path")?,
                ));
            }
            "--no-baseline" => {
                no_baseline = true;
            }
            "--write-baseline" => {
                write_baseline = Some(PathBuf::from(
                    args.next().ok_or("--write-baseline requires a path")?,
                ));
            }
            other => {
                return Err(format!("unknown argument {other:?}\n\n{USAGE}"));
            }
        }
    }
    if no_baseline && baseline_path.is_some() {
        return Err("--baseline and --no-baseline are mutually exclusive".to_string());
    }

    if !root.join("Cargo.toml").exists() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let (mut report, graph) = memsense_lint::analyze_workspace(&root)
        .map_err(|e| format!("scanning {}: {e}", root.display()))?;

    if let Some(path) = &graph_out {
        let dump = graph.to_canonical_json() + "\n";
        std::fs::write(path, dump).map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    // The baseline in force: explicit, or auto-detected at the root.
    let auto = root.join("LINT_BASELINE.json");
    let effective = baseline_path
        .clone()
        .or_else(|| (!no_baseline && auto.exists()).then_some(auto));

    if let Some(path) = &write_baseline {
        // Carry over justifications from the effective baseline, leniently:
        // a half-filled file is exactly what's being regenerated.
        let prev = match &effective {
            Some(p) if p.exists() => Baseline::load(p, false)?,
            _ => Baseline::default(),
        };
        let next = Baseline::from_findings(&report.diagnostics, &prev);
        let todo = next
            .entries
            .iter()
            .filter(|e| e.justification.starts_with("TODO"))
            .count();
        std::fs::write(path, next.to_json() + "\n")
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "wrote {} baseline entr(ies) to {}{}",
            next.entries.len(),
            path.display(),
            if todo > 0 {
                format!(" ({todo} need a justification before the baseline can gate)")
            } else {
                String::new()
            }
        );
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(path) = &effective {
        let baseline = Baseline::load(path, true)?;
        let applied = baseline.apply(std::mem::take(&mut report.diagnostics));
        report.diagnostics = applied.remaining;
        report.suppressed = applied.suppressed;
        report.stale = applied.stale;
    }

    let rendered = match format {
        Format::Human => report.human(),
        Format::Json => report.to_json(),
    };
    match &out {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            // Keep the CI log readable even when the artifact is JSON.
            print!("{}", report.human());
        }
        None => print!("{rendered}"),
    }

    Ok(
        if report.diagnostics.is_empty() && report.stale.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        },
    )
}
