//! The `memsense-lint` command-line driver.
//!
//! Exit codes follow the workspace convention (the `MEMSENSE_THREADS`
//! diagnostic convention from the experiments crate): `0` clean, `1` one or
//! more diagnostics, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use memsense_lint::rules::{rule, RULES};

const USAGE: &str = "\
memsense-lint: workspace static analysis for determinism, panic-freedom, and wire-format invariants

USAGE:
    memsense-lint [--root DIR] [--format human|json] [--out FILE]
    memsense-lint --list-rules
    memsense-lint --explain <rule-id>

OPTIONS:
    --root DIR        Workspace root to scan (default: .)
    --format FORMAT   Report format: human (default) or json
    --out FILE        Write the report to FILE; diagnostics still print to stdout
    --list-rules      List every rule id with a one-line summary
    --explain ID      Explain the invariant behind a rule and how to fix/suppress it

EXIT CODES:
    0  clean tree
    1  one or more diagnostics
    2  usage or I/O error

Suppression: `// memsense-lint: allow(rule-id)` on the offending line, or on
the line above, with a one-line justification.";

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            "--list-rules" => {
                for r in RULES {
                    println!("{:<32} {}", r.id, r.summary);
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--explain" => {
                let id = args.next().ok_or("--explain requires a rule id")?;
                let r = rule(&id).ok_or_else(|| {
                    format!("unknown rule {id:?}; run --list-rules for the rule set")
                })?;
                println!("{}\n", r.id);
                println!("invariant: {}\n", r.invariant);
                println!("fix: {}\n", r.fix);
                println!("suppress: // memsense-lint: allow({})", r.id);
                return Ok(ExitCode::SUCCESS);
            }
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root requires a directory")?);
            }
            "--format" => {
                format = match args
                    .next()
                    .ok_or("--format requires human or json")?
                    .as_str()
                {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?} (human or json)")),
                };
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().ok_or("--out requires a path")?));
            }
            other => {
                return Err(format!("unknown argument {other:?}\n\n{USAGE}"));
            }
        }
    }

    if !root.join("Cargo.toml").exists() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let report = memsense_lint::lint_workspace(&root)
        .map_err(|e| format!("scanning {}: {e}", root.display()))?;

    let rendered = match format {
        Format::Human => report.human(),
        Format::Json => report.to_json(),
    };
    match &out {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            // Keep the CI log readable even when the artifact is JSON.
            print!("{}", report.human());
        }
        None => print!("{rendered}"),
    }

    Ok(if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
