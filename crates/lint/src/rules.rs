//! The rule set: each rule guards one repo invariant.
//!
//! | rule id | invariant |
//! |---|---|
//! | `no-unordered-output` | serialized output never iterates hash-ordered collections |
//! | `no-raw-float-format` | wire/CSV floats go through the canonical serializer |
//! | `no-panic-in-lib` | library code returns errors instead of panicking |
//! | `no-wallclock-in-deterministic` | deterministic paths never read wall clocks |
//! | `unsafe-needs-safety-comment` | every `unsafe` carries a `// SAFETY:` justification |
//! | `no-process-exit-in-lib` | only binaries decide process exit codes |
//! | `no-per-op-alloc` | sim hot-loop modules never allocate per op |
//! | `reactor-no-blocking-call` | nothing reachable from the epoll reactor blocks |
//! | `transitive-panic-in-lib` | public lib fns cannot reach a panic site |
//! | `nondeterminism-taint` | wallclock/RNG never flows into canonical JSON |
//!
//! The first seven rules are token-level and file-local by design: they see
//! declarations and uses within one file, which is exactly where the
//! regressions dynamic tests miss tend to appear (a new `HashMap` iterated
//! straight into a report, a stray `unwrap` on a request path). The last
//! three are interprocedural — they run over the workspace call graph
//! ([`crate::graph`]) and are implemented in [`crate::reach`]; this module
//! only registers them. Sites that are provably fine carry
//! `// memsense-lint: allow(rule-id)` with a one-line justification;
//! accepted debt lives in the `LINT_BASELINE.json` ratchet.

use std::collections::BTreeSet;

use crate::engine::{Role, SourceFile};
use crate::lexer::{num_is_float, TokKind};
use crate::report::Diagnostic;

/// Static description of one rule, consumed by `--list-rules`/`--explain`.
pub struct Rule {
    /// The stable diagnostic id.
    pub id: &'static str,
    /// One-line summary for `--list-rules`.
    pub summary: &'static str,
    /// The invariant the rule protects and why (for `--explain`).
    pub invariant: &'static str,
    /// How to fix a diagnostic (for `--explain`).
    pub fix: &'static str,
    /// Fixture stem: `tests/fixtures/bad_<stem>.rs` must fire the rule and
    /// `good_<stem>.rs` must stay quiet (enforced by the registry coverage
    /// test, so a rule cannot land undocumented or untested).
    pub fixture: &'static str,
    /// The workspace-relative path the fixture is linted under (rules scope
    /// themselves by path).
    pub fixture_rel: &'static str,
}

/// Every rule, in the order reports list them.
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-unordered-output",
        summary: "HashMap/HashSet iteration in crates that feed serialized output",
        invariant: "Repro outputs, serve responses, and sim counter reports are \
                    byte-identical across runs and thread counts. HashMap/HashSet \
                    iteration order is randomized per process, so iterating one on \
                    an output path silently breaks that guarantee. Scope: library \
                    code in crates/model, crates/experiments, crates/serve, and \
                    crates/sim.",
        fix: "Use BTreeMap/BTreeSet, or collect and sort before emitting. If the \
              iteration provably cannot reach serialized output, annotate the line \
              with `// memsense-lint: allow(no-unordered-output)` and say why.",
        fixture: "unordered",
        fixture_rel: "crates/serve/src/fake.rs",
    },
    Rule {
        id: "no-raw-float-format",
        summary: "format!/write! with {} or {:?} on f64 expressions in wire/CSV paths",
        invariant: "The wire format canonicalizes floats (shortest round-trip, \
                    -0.0 collapsed, no NaN/inf tokens) via \
                    memsense_experiments::json::fmt_f64. Formatting an f64 with \
                    bare {} or {:?} bypasses that policy and can leak NaN, inf, or \
                    -0.0 into documents keyed byte-for-byte. Scope: library code \
                    in crates/serve and crates/experiments.",
        fix: "Route the value through json::fmt_f64 (or Json::num), or give an \
              explicit deterministic precision such as {:.3}. Annotate the \
              canonical serializer itself with \
              `// memsense-lint: allow(no-raw-float-format)`.",
        fixture: "float_format",
        fixture_rel: "crates/serve/src/fake.rs",
    },
    Rule {
        id: "no-panic-in-lib",
        summary: "unwrap/expect/panic!/unreachable! in library code",
        invariant: "Library crates are consumed by the serve daemon, which must \
                    degrade to an error response rather than kill a worker thread. \
                    A panic in library code is an availability bug, and panic \
                    paths are exactly the ones dynamic tests rarely exercise. \
                    Tests, benches, binaries, and examples are exempt.",
        fix: "Return a Result, or restructure with if-let / let-else so the \
              invariant is checked by construction. For provably infallible sites \
              (validated constants, mutex poisoning), annotate with \
              `// memsense-lint: allow(no-panic-in-lib)` plus a justification.",
        fixture: "panic",
        fixture_rel: "crates/model/src/fake.rs",
    },
    Rule {
        id: "no-wallclock-in-deterministic",
        summary: "SystemTime::now/Instant::now outside the telemetry allowlist",
        invariant: "Model and sim results are pure functions of their inputs; the \
                    determinism CI gate diffs byte-identical outputs across thread \
                    counts. A wall-clock read on a compute path makes output \
                    timing-dependent. Executor job telemetry \
                    (crates/experiments/src/executor.rs) and the serve crate's \
                    request metrics are the deliberate exceptions.",
        fix: "Thread timing through the executor's job telemetry instead of \
              reading clocks inline, or annotate a deliberate telemetry site with \
              `// memsense-lint: allow(no-wallclock-in-deterministic)`.",
        fixture: "wallclock",
        fixture_rel: "crates/sim/src/fake.rs",
    },
    Rule {
        id: "unsafe-needs-safety-comment",
        summary: "unsafe block or fn without a preceding // SAFETY: comment",
        invariant: "Every workspace crate currently carries \
                    #![forbid(unsafe_code)]. If unsafe is ever introduced, the \
                    proof obligation must be written down where the compiler \
                    stops checking: a // SAFETY: comment immediately above the \
                    unsafe site.",
        fix: "Add `// SAFETY: <why the invariants hold>` on the line(s) directly \
              above the unsafe block or fn.",
        fixture: "unsafe",
        fixture_rel: "crates/model/src/fake.rs",
    },
    Rule {
        id: "no-process-exit-in-lib",
        summary: "process::exit/abort in library code",
        invariant: "Exit codes are an interface owned by the binaries (0 clean, \
                    1 diagnostics/failure, 2 usage or configuration error — the \
                    MEMSENSE_THREADS convention). Library code calling \
                    process::exit skips destructors and takes that decision away \
                    from the caller.",
        fix: "Return an error and let the binary map it to an exit code. The \
              documented MEMSENSE_THREADS diagnostic site is annotated with \
              `// memsense-lint: allow(no-process-exit-in-lib)`.",
        fixture: "exit",
        fixture_rel: "crates/model/src/fake.rs",
    },
    Rule {
        id: "no-per-op-alloc",
        summary: "Vec::new/vec![] in simulator hot-loop modules",
        invariant: "The sim's per-op pipeline (engine step loop, cache/TLB \
                    block passes, stream generators, prefetcher, memory \
                    controller) runs millions of times per experiment; the \
                    second-2x perf work made those paths allocation-free via \
                    reused scratch buffers. A fresh `Vec::new()` or `vec![…]` \
                    in one of those modules multiplies across every simulated \
                    op. Scope: the hot sim modules (engine, cache, tlb, \
                    trace, prefetch, mem).",
        fix: "Reuse a caller-owned scratch buffer (`clear()` + refill, as \
              `on_miss_into`/`fill_block` do) or pre-size once with \
              `Vec::with_capacity`. One-time construction and other cold \
              paths annotate with \
              `// memsense-lint: allow(no-per-op-alloc)` plus a justification.",
        fixture: "per_op_alloc",
        fixture_rel: "crates/sim/src/engine.rs",
    },
    Rule {
        id: "reactor-no-blocking-call",
        summary: "blocking calls (Mutex::lock, join, recv, blocking I/O, model solves) reachable from the epoll reactor",
        invariant: "The serve daemon's event loop (Reactor::run) is a single \
                    thread multiplexing every connection; one blocking call \
                    freezes them all at once (the PR 8 take_updates bug). This \
                    rule walks the workspace call graph from Reactor::run and \
                    flags every reachable call to Mutex::lock, thread joins, \
                    channel recv, Condvar waits, blocking reads/writes, \
                    thread::sleep, and direct model solves. Method resolution is \
                    name-based and over-approximate: a `.lock()` on any receiver \
                    counts, because the receiver's type is unknown.",
        fix: "Use the try_lock busy-retry discipline (return Busy / retry on \
              contention, as StreamRegistry::take_updates does), or hand the \
              work to the worker pool. Sites that are provably bounded or \
              deliberate (the epoll wait itself, shutdown teardown joins) carry \
              `// memsense-lint: allow(reactor-no-blocking-call)` with the \
              reachability justification.",
        fixture: "reactor_blocking",
        fixture_rel: "crates/serve/src/server.rs",
    },
    Rule {
        id: "transitive-panic-in-lib",
        summary: "public lib fns whose call graph reaches an unannotated unwrap/expect/panic!",
        invariant: "no-panic-in-lib sees a panic only in the file that contains \
                    it; a public library fn three calls above it still hands its \
                    callers an availability bug. This rule walks the call graph \
                    from every public lib fn and flags the ones that can reach a \
                    panic site that carries no allow-justification, naming the \
                    chain. Annotated panic sites (poisoned-mutex expects and \
                    friends) are accepted for every caller — the justification \
                    is written where the panic lives.",
        fix: "Return a Result along the chain, or justify the panic site itself \
              with `// memsense-lint: allow(no-panic-in-lib)`. A public fn whose \
              whole chain is deliberate can carry \
              `// memsense-lint: allow(transitive-panic-in-lib)`.",
        fixture: "transitive_panic",
        fixture_rel: "crates/model/src/fake.rs",
    },
    Rule {
        id: "nondeterminism-taint",
        summary: "wallclock/RNG sources in fns that can reach a canonical-JSON serializer",
        invariant: "Canonical JSON documents are byte-compared: golden tests, \
                    the result cache's content addressing, and the determinism \
                    CI gate all diff them. A fn that reads Instant::now, \
                    SystemTime::now, or an entropy source *and* can reach \
                    Json::canonical/to_string_pretty can leak timing or \
                    randomness into those documents. Unlike the per-file \
                    wallclock rule, this one has no path allowlist — it follows \
                    the call graph to the serializer and only fires when source \
                    and sink actually meet.",
        fix: "Keep timing in telemetry-only structs that never serialize \
              canonically, or split the fn so the clock read cannot flow into \
              the serialized value. Deliberate telemetry documents (metrics \
              bodies, bench tables) carry \
              `// memsense-lint: allow(nondeterminism-taint)` or a justified \
              LINT_BASELINE.json entry.",
        fixture: "nondet_taint",
        fixture_rel: "crates/serve/src/fake.rs",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Path prefixes whose library code feeds serialized output (tables, CSV,
/// wire JSON, sim counter reports).
const OUTPUT_SCOPES: &[&str] = &[
    "crates/model/src/",
    "crates/experiments/src/",
    "crates/serve/src/",
    "crates/sim/src/",
    "crates/plan/src/",
    "crates/stream/src/",
];

/// Path prefixes that assemble wire or CSV text directly.
const WIRE_SCOPES: &[&str] = &[
    "crates/serve/src/",
    "crates/experiments/src/",
    "crates/plan/src/",
    "crates/stream/src/",
];

/// Files and prefixes allowed to read wall clocks: executor job telemetry,
/// the serve daemon's request metrics/benchmarking, and the stream
/// throughput baseline.
/// Simulator hot-loop modules: library code here runs once per simulated
/// op, access, or miss, so a per-call allocation multiplies across millions
/// of ops per run.
const SIM_HOT_SCOPES: &[&str] = &[
    "crates/sim/src/engine.rs",
    "crates/sim/src/cache.rs",
    "crates/sim/src/tlb.rs",
    "crates/sim/src/trace.rs",
    "crates/sim/src/prefetch.rs",
    "crates/sim/src/mem.rs",
];

const WALLCLOCK_ALLOW: &[&str] = &[
    "crates/experiments/src/executor.rs",
    "crates/serve/src/",
    "crates/stream/src/baseline.rs",
];

fn in_scope(rel: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| rel == *s || rel.starts_with(s))
}

/// Runs every applicable rule over `file`, returning unsuppressed
/// diagnostics in source order.
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if file.role == Role::Lib {
        no_panic_in_lib(file, &mut diags);
        no_process_exit_in_lib(file, &mut diags);
        if !in_scope(&file.rel, WALLCLOCK_ALLOW) {
            no_wallclock_in_deterministic(file, &mut diags);
        }
        if in_scope(&file.rel, OUTPUT_SCOPES) {
            no_unordered_output(file, &mut diags);
        }
        if in_scope(&file.rel, WIRE_SCOPES) {
            no_raw_float_format(file, &mut diags);
        }
        if in_scope(&file.rel, SIM_HOT_SCOPES) {
            no_per_op_alloc(file, &mut diags);
        }
    }
    unsafe_needs_safety_comment(file, &mut diags);
    diags.retain(|d| !file.is_allowed(d.rule, d.line));
    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags
}

fn push(diags: &mut Vec<Diagnostic>, file: &SourceFile, i: usize, rule: &'static str, msg: String) {
    let tok = file.code[i];
    diags.push(Diagnostic {
        file: file.rel.clone(),
        line: tok.line,
        col: tok.col,
        rule,
        symbol: String::new(), // filled from the syntax layer by the caller
        message: msg,
    });
}

fn no_panic_in_lib(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-panic-in-lib";
    for i in 0..file.code.len() {
        if file.code[i].kind != TokKind::Ident || file.in_test_item(i) {
            continue;
        }
        match file.txt(i) {
            m @ ("unwrap" | "expect")
                if i > 0 && file.punct_is(i - 1, '.') && file.punct_is(i + 1, '(') =>
            {
                push(
                    diags,
                    file,
                    i,
                    RULE,
                    format!("`.{m}()` can panic in library code; return a Result or restructure"),
                );
            }
            m @ ("panic" | "unreachable" | "todo" | "unimplemented")
                if file.punct_is(i + 1, '!') =>
            {
                push(
                    diags,
                    file,
                    i,
                    RULE,
                    format!("`{m}!` in library code; return an error instead"),
                );
            }
            _ => {}
        }
    }
}

fn no_process_exit_in_lib(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for i in 3..file.code.len() {
        if file.in_test_item(i) {
            continue;
        }
        let name = match file.code[i].kind {
            TokKind::Ident => file.txt(i),
            _ => continue,
        };
        if matches!(name, "exit" | "abort")
            && file.punct_is(i - 1, ':')
            && file.punct_is(i - 2, ':')
            && file.ident_is(i - 3, "process")
        {
            push(
                diags,
                file,
                i - 3,
                "no-process-exit-in-lib",
                format!("`process::{name}` in library code; return an error and let the binary choose the exit code"),
            );
        }
    }
}

fn no_wallclock_in_deterministic(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for i in 3..file.code.len() {
        if file.in_test_item(i) || !file.ident_is(i, "now") {
            continue;
        }
        if file.punct_is(i - 1, ':') && file.punct_is(i - 2, ':') {
            for clock in ["Instant", "SystemTime"] {
                if file.ident_is(i - 3, clock) {
                    push(
                        diags,
                        file,
                        i - 3,
                        "no-wallclock-in-deterministic",
                        format!("`{clock}::now()` on a deterministic path; route timing through executor telemetry"),
                    );
                }
            }
        }
    }
}

fn unsafe_needs_safety_comment(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for i in 0..file.code.len() {
        if !file.ident_is(i, "unsafe") {
            continue;
        }
        let tok = file.code[i];
        let justified = file.toks.iter().any(|c| {
            c.is_comment()
                && c.text(&file.src).contains("SAFETY:")
                && c.start < tok.start
                && c.end_line(&file.src) + 3 >= tok.line
        });
        if !justified {
            push(
                diags,
                file,
                i,
                "unsafe-needs-safety-comment",
                "`unsafe` without a `// SAFETY:` comment on the preceding lines".to_string(),
            );
        }
    }
}

fn no_per_op_alloc(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-per-op-alloc";
    for i in 0..file.code.len() {
        if file.code[i].kind != TokKind::Ident || file.in_test_item(i) {
            continue;
        }
        match file.txt(i) {
            "Vec"
                if file.punct_is(i + 1, ':')
                    && file.punct_is(i + 2, ':')
                    && file.ident_is(i + 3, "new")
                    && file.punct_is(i + 4, '(') =>
            {
                push(
                    diags,
                    file,
                    i,
                    RULE,
                    "`Vec::new()` in a sim hot-loop module; reuse a scratch buffer or pre-size with Vec::with_capacity".to_string(),
                );
            }
            "vec" if file.punct_is(i + 1, '!') => {
                push(
                    diags,
                    file,
                    i,
                    RULE,
                    "`vec![…]` in a sim hot-loop module; reuse a scratch buffer or pre-size with Vec::with_capacity".to_string(),
                );
            }
            _ => {}
        }
    }
}

/// Hash-collection iteration methods whose order is nondeterministic.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Names bound (file-locally) to a `HashMap`/`HashSet`: struct fields,
/// `let`/parameter annotations (`name: HashMap<…>`, `name: &mut HashSet<…>`),
/// and `let name = HashMap::new()` initializers.
/// Names declared with a `HashMap`/`HashSet` type or initializer, minus any
/// name *also* declared as a `BTreeMap`/`BTreeSet` elsewhere in the file.
/// Tracking is name-based and file-local, so a name bound to both families
/// (say, a `counts` parameter in two different functions) is ambiguous — the
/// rule skips it rather than flag ordered iteration, preferring a false
/// negative over blocking CI on a false positive.
fn hash_collection_names(file: &SourceFile) -> BTreeSet<String> {
    let hash = collection_names(file, &["HashMap", "HashSet"]);
    let btree = collection_names(file, &["BTreeMap", "BTreeSet"]);
    hash.difference(&btree).cloned().collect()
}

fn collection_names(file: &SourceFile, types: &[&str]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..file.code.len() {
        if file.code[i].kind != TokKind::Ident || !types.contains(&file.txt(i)) {
            continue;
        }
        // Walk back over a `std :: collections ::`-style path prefix.
        let mut j = i;
        while j >= 3
            && file.punct_is(j - 1, ':')
            && file.punct_is(j - 2, ':')
            && file.code[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        // `name : [& mut] HashMap<…>` — field, param, or annotated let.
        let mut k = j - 1;
        while k > 0 && (file.punct_is(k, '&') || file.ident_is(k, "mut")) {
            k -= 1;
        }
        if file.punct_is(k, ':')
            && k >= 1
            && !file.punct_is(k - 1, ':')
            && file.code[k - 1].kind == TokKind::Ident
        {
            names.insert(file.txt(k - 1).to_string());
            continue;
        }
        // `let [mut] name = HashMap::new()`.
        if file.punct_is(j - 1, '=') && j >= 2 && file.code[j - 2].kind == TokKind::Ident {
            names.insert(file.txt(j - 2).to_string());
        }
    }
    names
}

fn no_unordered_output(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-unordered-output";
    let names = hash_collection_names(file);
    if names.is_empty() {
        return;
    }
    for i in 0..file.code.len() {
        if file.in_test_item(i) || file.code[i].kind != TokKind::Ident {
            continue;
        }
        let name = file.txt(i);
        // `name.iter()` / `name.keys()` / … method iteration.
        if names.contains(name)
            && file.punct_is(i + 1, '.')
            && file
                .code
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident)
            && ITER_METHODS.contains(&file.txt(i + 2))
            && file.punct_is(i + 3, '(')
        {
            let method = file.txt(i + 2).to_string();
            push(
                diags,
                file,
                i,
                RULE,
                format!("`{name}.{method}()` iterates a hash-ordered collection on an output-feeding path; use BTreeMap/BTreeSet or sort first"),
            );
            continue;
        }
        // `for pat in <expr containing a hash collection> {`.
        if name == "for" {
            let Some(in_pos) =
                (i + 1..file.code.len().min(i + 24)).find(|&j| file.ident_is(j, "in"))
            else {
                continue;
            };
            let mut depth = 0i64;
            for j in in_pos + 1..file.code.len().min(in_pos + 48) {
                let t = file.code[j];
                if t.kind == TokKind::Punct {
                    match file.src.as_bytes()[t.start] {
                        b'{' if depth == 0 => break,
                        b'(' | b'[' | b'{' => depth += 1,
                        b')' | b']' | b'}' => depth -= 1,
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident && names.contains(file.txt(j)) {
                    let hash_name = file.txt(j).to_string();
                    push(
                        diags,
                        file,
                        j,
                        RULE,
                        format!("`for … in` over hash-ordered `{hash_name}` on an output-feeding path; use BTreeMap/BTreeSet or sort first"),
                    );
                    break;
                }
            }
        }
    }
}

/// Names bound (file-locally) to `f64`/`f32` values: `name: f64` fields,
/// params, and lets, plus `let name = <float literal>`.
fn float_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..file.code.len() {
        if file.code[i].kind == TokKind::Ident && matches!(file.txt(i), "f64" | "f32") && i >= 2 {
            let mut k = i - 1;
            while k > 0 && (file.punct_is(k, '&') || file.ident_is(k, "mut")) {
                k -= 1;
            }
            if file.punct_is(k, ':')
                && k >= 1
                && !file.punct_is(k - 1, ':')
                && file.code[k - 1].kind == TokKind::Ident
            {
                names.insert(file.txt(k - 1).to_string());
            }
        }
        if file.ident_is(i, "let") {
            // `let [mut] name = <float literal>`.
            let mut k = i + 1;
            if file.ident_is(k, "mut") {
                k += 1;
            }
            if file.code.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                && file.punct_is(k + 1, '=')
                && file
                    .code
                    .get(k + 2)
                    .is_some_and(|t| t.kind == TokKind::NumLit)
                && num_is_float(file.txt(k + 2))
            {
                names.insert(file.txt(k).to_string());
            }
        }
    }
    names
}

/// Format-string macros whose output can reach the wire or CSV files.
const FORMAT_MACROS: &[&str] = &[
    "format",
    "format_args",
    "write",
    "writeln",
    "print",
    "println",
    "eprint",
    "eprintln",
];

/// One `{…}` placeholder: optional argument name (or explicit position) and
/// its format spec (the part after `:`).
struct Placeholder {
    name: Option<String>,
    position: Option<usize>,
    spec: String,
}

/// Parses placeholders out of a format string's unquoted content.
fn parse_placeholders(content: &str) -> Vec<Placeholder> {
    let mut out = Vec::new();
    let mut chars = content.chars().peekable();
    let mut implicit = 0usize;
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
            }
            '{' => {
                let mut inner = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    inner.push(c);
                }
                let (who, spec) = match inner.split_once(':') {
                    Some((w, s)) => (w, s.to_string()),
                    None => (inner.as_str(), String::new()),
                };
                let (name, position) = if who.is_empty() {
                    let p = implicit;
                    implicit += 1;
                    (None, Some(p))
                } else if let Ok(idx) = who.parse::<usize>() {
                    (None, Some(idx))
                } else {
                    (Some(who.to_string()), None)
                };
                out.push(Placeholder {
                    name,
                    position,
                    spec,
                });
            }
            _ => {}
        }
    }
    out
}

/// The unquoted content of a string-literal token's text.
fn str_content(text: &str) -> &str {
    let open = match text.find('"') {
        Some(i) => i,
        None => return text,
    };
    let close = match text.rfind('"') {
        Some(i) if i > open => i,
        _ => return text,
    };
    &text[open + 1..close]
}

/// Whether the code tokens in `range` form a float-valued expression the
/// scanner can prove: a float literal, an `as f64`/`as f32` cast, or a lone
/// identifier with a file-local `f64`/`f32` binding.
fn float_ish(file: &SourceFile, range: core::ops::Range<usize>, floats: &BTreeSet<String>) -> bool {
    if range.len() == 1 {
        let t = file.code[range.start];
        if t.kind == TokKind::Ident && floats.contains(file.txt(range.start)) {
            return true;
        }
    }
    for i in range.clone() {
        let t = file.code[i];
        if t.kind == TokKind::NumLit && num_is_float(file.txt(i)) {
            return true;
        }
        if t.kind == TokKind::Ident
            && file.txt(i) == "as"
            && file
                .code
                .get(i + 1)
                .is_some_and(|n| matches!(n.text(&file.src), "f64" | "f32"))
        {
            return true;
        }
    }
    false
}

fn no_raw_float_format(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-raw-float-format";
    let floats = float_names(file);
    for i in 0..file.code.len() {
        if file.in_test_item(i)
            || file.code[i].kind != TokKind::Ident
            || !FORMAT_MACROS.contains(&file.txt(i))
            || !file.punct_is(i + 1, '!')
            || !(file.punct_is(i + 2, '(')
                || file.punct_is(i + 2, '[')
                || file.punct_is(i + 2, '{'))
        {
            continue;
        }
        let Some(close) = file.matching_bracket(i + 2) else {
            continue;
        };
        // Split the macro body at top-level commas.
        let mut args: Vec<core::ops::Range<usize>> = Vec::new();
        let mut depth = 0i64;
        let mut arg_start = i + 3;
        for j in i + 3..close {
            let t = file.code[j];
            if t.kind != TokKind::Punct {
                continue;
            }
            match file.src.as_bytes()[t.start] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b',' if depth == 0 => {
                    args.push(arg_start..j);
                    arg_start = j + 1;
                }
                _ => {}
            }
        }
        if arg_start < close {
            args.push(arg_start..close);
        }
        // The format string: the first argument that is a lone string literal.
        let Some(fmt_idx) = args.iter().position(|r| {
            r.len() == 1
                && matches!(
                    file.code[r.start].kind,
                    TokKind::StrLit | TokKind::RawStrLit
                )
        }) else {
            continue;
        };
        let fmt_tok_idx = args[fmt_idx].start;
        let content = str_content(file.code[fmt_tok_idx].text(&file.src));
        // Positional and named value arguments after the format string.
        let value_args = &args[fmt_idx + 1..];
        let named = |name: &str| -> Option<core::ops::Range<usize>> {
            value_args
                .iter()
                .find(|r| {
                    r.len() >= 3
                        && file.ident_is(r.start, name)
                        && file.punct_is(r.start + 1, '=')
                        && !file.punct_is(r.start + 2, '=')
                })
                .map(|r| r.start + 2..r.end)
        };
        let positional: Vec<&core::ops::Range<usize>> = value_args
            .iter()
            .filter(|r| {
                !(r.len() >= 3
                    && file.punct_is(r.start + 1, '=')
                    && !file.punct_is(r.start + 2, '='))
            })
            .collect();
        for ph in parse_placeholders(content) {
            if !matches!(ph.spec.as_str(), "" | "?" | "#?") {
                continue; // explicit width/precision/format is deterministic
            }
            let fired = match (&ph.name, ph.position) {
                (Some(name), _) => match named(name) {
                    Some(range) => float_ish(file, range, &floats),
                    None => floats.contains(name), // inline capture `{name}`
                },
                (None, Some(idx)) => positional
                    .get(idx)
                    .is_some_and(|r| float_ish(file, (*r).clone(), &floats)),
                (None, None) => false,
            };
            if fired {
                let what = ph.name.as_deref().unwrap_or("argument");
                push(
                    diags,
                    file,
                    fmt_tok_idx,
                    RULE,
                    format!("float `{what}` formatted with bare `{{}}`/`{{:?}}` on a wire/CSV path; use json::fmt_f64 or an explicit precision"),
                );
                break; // one diagnostic per macro call is enough
            }
        }
    }
}
