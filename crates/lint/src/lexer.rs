//! An error-tolerant Rust token scanner.
//!
//! The rules in this crate need real tokens, not regex hits: `unwrap` inside
//! a string literal, a doc-comment example, or a nested block comment must
//! not fire a diagnostic. This lexer handles the parts of the Rust grammar
//! that defeat line-oriented matching:
//!
//! * raw strings (`r"…"`, `r#"…"#` with any number of hashes) and their
//!   byte-string forms (`b"…"`, `br#"…"#`),
//! * nested block comments (`/* /* */ */`), line comments, and doc comments,
//! * `'a'` char literals vs `'a` lifetimes (including multi-byte chars and
//!   escape forms like `'\u{1F600}'`),
//! * numeric literals with separators, base prefixes, exponents, and type
//!   suffixes (`1_000u64`, `0xFE`, `2.5e-3f64`).
//!
//! The scanner never fails: malformed input (an unterminated string, a stray
//! byte) degrades to best-effort tokens so the linter can still report on the
//! rest of the file. Positions are 1-based lines and 1-based byte columns.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `unsafe`, `for`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// A char literal (`'x'`, `'\n'`) or byte char (`b'x'`).
    CharLit,
    /// A (cooked) string literal, including byte strings.
    StrLit,
    /// A raw string literal (`r"…"`, `r#"…"#`, `br"…"`).
    RawStrLit,
    /// A numeric literal.
    NumLit,
    /// A single punctuation byte (`.`, `:`, `!`, `{`, …).
    Punct,
    /// A `//` comment, including `///` and `//!` doc comments.
    LineComment,
    /// A `/* … */` comment (nesting handled), including `/** … */`.
    BlockComment,
}

/// One token: its kind, byte span in the source, and start position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte within its line.
    pub col: u32,
}

impl Tok {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether the token is a line or block comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// The 1-based line of the token's last byte (comments and strings can
    /// span lines).
    pub fn end_line(&self, src: &str) -> u32 {
        let newlines = src[self.start..self.end]
            .bytes()
            .filter(|&b| b == b'\n')
            .count();
        self.line + newlines as u32
    }
}

/// Lexes `src` into a best-effort token stream (comments included).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

/// Whether a decimal numeric literal's text denotes a float (`1.5`, `2e3`,
/// `1f64`) rather than an integer. Base-prefixed literals are never floats.
pub fn num_is_float(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains(['e', 'E'])
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// Byte length of the UTF-8 sequence starting with `b` (1 for ASCII or for
/// malformed lead bytes, which we tolerate).
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if let Some(&b) = self.src.get(self.pos) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Vec<Tok> {
        let mut toks = Vec::new();
        while let Some(b) = self.peek(0) {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.bump();
                continue;
            }
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = match b {
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' if self.raw_string_ahead(1) => self.raw_string(),
                // Raw identifier (`r#type`): one token, like rustc lexes it.
                b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                    self.bump_n(2);
                    self.ident()
                }
                b'b' => match self.peek(1) {
                    Some(b'\'') => {
                        self.bump();
                        self.char_or_lifetime();
                        TokKind::CharLit
                    }
                    Some(b'"') => {
                        self.bump();
                        self.string()
                    }
                    Some(b'r') if self.raw_string_ahead(2) => {
                        self.bump();
                        self.raw_string()
                    }
                    _ => self.ident(),
                },
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => {
                    self.bump();
                    TokKind::Punct
                }
            };
            toks.push(Tok {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        toks
    }

    fn line_comment(&mut self) -> TokKind {
        while let Some(b) = self.peek(0) {
            // Stop before the CR of a CRLF ending too, so the token text
            // never carries a trailing `\r` on Windows-style files.
            if b == b'\n' || (b == b'\r' && self.peek(1) == Some(b'\n')) {
                break;
            }
            self.bump();
        }
        TokKind::LineComment
    }

    fn block_comment(&mut self) -> TokKind {
        self.bump_n(2); // consume `/*`
        let mut depth = 1usize;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        TokKind::BlockComment
    }

    /// Whether, with the cursor `at` bytes before a potential `r`, the bytes
    /// at the cursor start a raw string: `r`, zero or more `#`, then `"`.
    /// `r#ident` (a raw identifier) has an identifier character after the
    /// hash and is not a raw string.
    fn raw_string_ahead(&self, hashes_from: usize) -> bool {
        let mut i = hashes_from;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    fn raw_string(&mut self) -> TokKind {
        self.bump(); // `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening `"`
        while let Some(b) = self.peek(0) {
            self.bump();
            if b == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == Some(b'#') {
                    matched += 1;
                    self.bump();
                }
                if matched == hashes {
                    break;
                }
            }
        }
        TokKind::RawStrLit
    }

    fn string(&mut self) -> TokKind {
        self.bump(); // opening `"`
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump_n(2);
            } else if b == b'"' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        TokKind::StrLit
    }

    /// Disambiguates `'a'` (char), `'\n'` (escaped char), and `'a` /
    /// `'static` (lifetime or label). Called with the cursor on `'`.
    fn char_or_lifetime(&mut self) -> TokKind {
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: consume the opening quote, then
                // escape pairs as units (so `'\''` terminates on the real
                // closing quote, not the escaped one).
                self.bump();
                while let Some(b) = self.peek(0) {
                    if b == b'\\' {
                        self.bump_n(2);
                    } else {
                        self.bump();
                        if b == b'\'' {
                            break;
                        }
                    }
                }
                TokKind::CharLit
            }
            Some(c) if self.peek(1 + utf8_len(c)) == Some(b'\'') => {
                // One char then a closing quote: `'x'`, `'∂'`.
                self.bump_n(2 + utf8_len(c));
                TokKind::CharLit
            }
            _ => {
                // Lifetime or loop label: `'a`, `'static`, `'_`.
                self.bump();
                while let Some(b) = self.peek(0) {
                    if is_ident_continue(b) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokKind::Lifetime
            }
        }
    }

    fn number(&mut self) -> TokKind {
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            self.bump_n(2);
            while let Some(b) = self.peek(0) {
                if b.is_ascii_hexdigit() || b == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            self.digits();
            // A fractional part only if `.` is followed by a digit (so
            // `1..n` ranges and `1.method()` are untouched).
            if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
                self.digits();
            }
            // Exponent: `e`/`E`, optional sign, required digits.
            if matches!(self.peek(0), Some(b'e' | b'E')) {
                let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
                if self.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                    self.bump_n(1 + sign);
                    self.digits();
                }
            }
        }
        // Type suffix (`u64`, `f32`, `usize`).
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.bump();
            } else {
                break;
            }
        }
        TokKind::NumLit
    }

    fn digits(&mut self) {
        while let Some(b) = self.peek(0) {
            if b.is_ascii_digit() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) -> TokKind {
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.bump();
            } else {
                break;
            }
        }
        TokKind::Ident
    }
}
