//! Scanned-file model and the workspace walker.
//!
//! [`SourceFile`] wraps one lexed `.rs` file with everything the rules need:
//!
//! * its workspace-relative path and [`Role`] (library, binary, test,
//!   bench, example) — rules scope themselves by role and path;
//! * a comment-free code-token stream, with a parallel mask marking tokens
//!   inside `#[cfg(test)]` / `#[test]` / `#[bench]` items (panic-style rules
//!   skip those regions);
//! * the inline suppressions: `// memsense-lint: allow(rule-id)` on a line
//!   of code suppresses that rule on that line; on a line of its own it
//!   suppresses the next line of code. Multiple ids may be listed,
//!   comma-separated.
//!
//! [`scan_workspace`] walks a workspace root for `.rs` files, skipping
//! `vendor/` (third-party shims), `target/`, `fixtures/` directories (lint
//! test inputs), and dot-directories.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, TokKind};

/// What kind of compilation target a file belongs to, inferred from its
/// workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code: the default, and the strictest scope.
    Lib,
    /// A binary (`src/bin/`, `src/main.rs`, `build.rs`).
    Bin,
    /// An integration test (under a `tests/` directory).
    Test,
    /// A benchmark (under a `benches/` directory).
    Bench,
    /// An example (under an `examples/` directory).
    Example,
}

/// Classifies a workspace-relative path (with `/` separators) into a [`Role`].
pub fn classify(rel: &str) -> Role {
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        Role::Test
    } else if rel.starts_with("benches/") || rel.contains("/benches/") {
        Role::Bench
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        Role::Example
    } else if rel.starts_with("src/bin/")
        || rel.contains("/src/bin/")
        || rel.ends_with("/main.rs")
        || rel == "src/main.rs"
        || rel.ends_with("build.rs")
    {
        Role::Bin
    } else {
        Role::Lib
    }
}

/// One lexed source file plus the derived facts rules consume.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The file contents.
    pub src: String,
    /// All tokens, comments included (for `SAFETY:` comment checks).
    pub toks: Vec<Tok>,
    /// Code tokens only (comments stripped).
    pub code: Vec<Tok>,
    /// The file's role.
    pub role: Role,
    /// Parallel to `code`: true for tokens inside test-only items.
    test_mask: Vec<bool>,
    /// Line → rule ids suppressed on that line.
    allows: BTreeMap<u32, BTreeSet<String>>,
}

/// The marker comment syntax: `// memsense-lint: allow(rule-id, …)`.
pub const ALLOW_MARKER: &str = "memsense-lint:";

impl SourceFile {
    /// Lexes `src` and derives roles, test regions, and suppressions.
    pub fn parse(rel: &str, src: String) -> SourceFile {
        let toks = lex(&src);
        let code: Vec<Tok> = toks.iter().copied().filter(|t| !t.is_comment()).collect();
        let test_mask = test_mask(&src, &code);
        let allows = collect_allows(&src, &toks, &code);
        SourceFile {
            rel: rel.to_string(),
            src,
            toks,
            code,
            role: classify(rel),
            test_mask,
            allows,
        }
    }

    /// The text of code token `i`.
    pub fn txt(&self, i: usize) -> &str {
        self.code[i].text(&self.src)
    }

    /// Whether code token `i` is an identifier with exactly this text.
    pub fn ident_is(&self, i: usize, text: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(&self.src) == text)
    }

    /// Whether code token `i` is the single punctuation byte `p`.
    pub fn punct_is(&self, i: usize, p: char) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && self.src[t.start..].starts_with(p))
    }

    /// Whether code token `i` sits inside a `#[cfg(test)]`/`#[test]` item.
    pub fn in_test_item(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Whether a diagnostic for `rule` at `line` is suppressed by an inline
    /// allow comment.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(&line).is_some_and(|set| set.contains(rule))
    }

    /// For code token `open` being `[`, `(`, or `{`, the index of its
    /// matching close bracket.
    pub fn matching_bracket(&self, open: usize) -> Option<usize> {
        matching_bracket(&self.src, &self.code, open)
    }
}

/// Marks code tokens covered by items annotated `#[cfg(test)]`, `#[test]`,
/// or `#[bench]` (any attribute mentioning `test`/`bench` outside a `not(…)`
/// counts). The mask covers the attribute itself through the end of the
/// annotated item — its matching closing brace, or a top-level `;`.
fn test_mask(src: &str, code: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if !(is_punct(src, code, i, '#') && is_punct(src, code, i + 1, '[')) {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching_bracket(src, code, i + 1) else {
            break;
        };
        if !attr_is_test(src, &code[i + 2..attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between the test attribute and the item.
        let mut k = attr_end + 1;
        while is_punct(src, code, k, '#') && is_punct(src, code, k + 1, '[') {
            match matching_bracket(src, code, k + 1) {
                Some(end) => k = end + 1,
                None => break,
            }
        }
        let end = item_end(src, code, k).unwrap_or(code.len() - 1);
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

fn is_punct(src: &str, code: &[Tok], i: usize, p: char) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && src[t.start..].starts_with(p))
}

/// For `code[open]` being `[`, `(`, or `{`, the index of its matching close.
fn matching_bracket(src: &str, code: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, tok) in code.iter().enumerate().skip(open) {
        if tok.kind != TokKind::Punct {
            continue;
        }
        match src.as_bytes()[tok.start] {
            b'[' | b'(' | b'{' => depth += 1,
            b']' | b')' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether attribute tokens (the part between `#[` and `]`) mark a test-only
/// item. `not` anywhere makes it non-test (`#[cfg(not(test))]` is code that
/// ships).
fn attr_is_test(src: &str, attr: &[Tok]) -> bool {
    let mut saw_test = false;
    for t in attr {
        if t.kind == TokKind::Ident {
            match t.text(src) {
                "not" => return false,
                "test" | "bench" => saw_test = true,
                _ => {}
            }
        }
    }
    saw_test
}

/// The last code-token index of the item starting at `k`: the matching `}`
/// of the first top-level `{`, or a top-level `;`, whichever comes first.
fn item_end(src: &str, code: &[Tok], k: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, tok) in code.iter().enumerate().skip(k) {
        if tok.kind != TokKind::Punct {
            continue;
        }
        match src.as_bytes()[tok.start] {
            b';' if depth == 0 => return Some(j),
            b'{' if depth == 0 => return matching_bracket(src, code, j),
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            _ => {}
        }
    }
    None
}

/// Collects `// memsense-lint: allow(…)` suppressions. A trailing comment
/// anchors to its own line; a standalone comment anchors to the whole
/// statement (or list element) that follows, so a rustfmt-wrapped builder
/// chain stays covered however its lines break.
fn collect_allows(src: &str, toks: &[Tok], code: &[Tok]) -> BTreeMap<u32, BTreeSet<String>> {
    let mut allows: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for tok in toks.iter().filter(|t| t.is_comment()) {
        let text = tok.text(src);
        let Some(marker) = text.find(ALLOW_MARKER) else {
            continue;
        };
        let after = &text[marker + ALLOW_MARKER.len()..];
        let Some(open) = after.find("allow(") else {
            continue;
        };
        let Some(close) = after[open..].find(')') else {
            continue;
        };
        let ids: Vec<String> = after[open + "allow(".len()..open + close]
            .split(',')
            .map(|id| id.trim().to_string())
            .filter(|id| !id.is_empty())
            .collect();
        if ids.is_empty() {
            continue;
        }
        let trailing = code
            .iter()
            .any(|c| c.line == tok.line && c.start < tok.start);
        let (first_line, last_line) = if trailing {
            (tok.line, tok.line)
        } else {
            let end = tok.end_line(src);
            match code.iter().position(|c| c.line > end) {
                Some(start) => statement_lines(src, code, start),
                None => (end + 1, end + 1),
            }
        };
        for line in first_line..=last_line {
            allows.entry(line).or_default().extend(ids.iter().cloned());
        }
    }
    allows
}

/// The line span of the statement (or list element) beginning at code token
/// `start`: it runs until a `;`, `,`, or block-opening `{` at the starting
/// nesting depth, or until the enclosing bracket closes — whichever comes
/// first.
fn statement_lines(src: &str, code: &[Tok], start: usize) -> (u32, u32) {
    let first = code[start].line;
    let mut depth = 0i32;
    let mut last = first;
    for tok in &code[start..] {
        let text = tok.text(src);
        if tok.kind == TokKind::Punct {
            match text {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                "{" if depth == 0 => return (first, tok.line),
                "}" if depth == 0 => break,
                ";" | "," if depth == 0 => return (first, tok.line),
                _ => {}
            }
        }
        last = tok.line;
    }
    (first, last)
}

/// Directory names never scanned: third-party shims, build output, lint
/// test inputs, and dot-directories.
fn skip_dir(name: &str) -> bool {
    name.starts_with('.') || matches!(name, "target" | "vendor" | "fixtures" | "node_modules")
}

/// Walks `root` and returns every `.rs` file path, sorted for deterministic
/// reports.
///
/// # Errors
///
/// Returns the underlying I/O error if a directory cannot be read.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// `path` relative to `root`, with `/` separators.
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
