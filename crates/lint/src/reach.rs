//! Layer 3 of the interprocedural analyzer: reachability rules over the
//! workspace call graph.
//!
//! | rule id | invariant |
//! |---|---|
//! | `reactor-no-blocking-call` | nothing reachable from `Reactor::run` blocks |
//! | `transitive-panic-in-lib` | public lib fns cannot reach a panic site |
//! | `nondeterminism-taint` | wallclock/RNG never flows into canonical JSON |
//!
//! All three inherit the graph's over-approximation policy: a method call's
//! receiver type is unknown, so a bare `.lock()` is treated **both** as every
//! workspace fn named `lock` *and* as a potential `std::sync::Mutex::lock`.
//! False positives are silenced with justified `allow` comments or baseline
//! entries; false negatives are what the rules exist to prevent.

use std::collections::BTreeSet;

use crate::engine::{Role, SourceFile};
use crate::graph::{CallGraph, CallKind, CallSite};
use crate::lexer::TokKind;
use crate::report::Diagnostic;

/// Method names that block the calling thread in std (`Mutex::lock`,
/// `JoinHandle::join`, `Receiver::recv`, `Condvar::wait`, blocking I/O).
/// `Sender::send` is absent: the workspace only uses unbounded channels,
/// whose send never blocks.
const BLOCKING_METHODS: &[&str] = &[
    "lock",
    "join",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "park",
    "sleep",
    "read_to_end",
    "read_to_string",
    "read_line",
    "read_exact",
    "write_all",
];

/// Free/path callees that block (`thread::sleep`, `thread::park`).
const BLOCKING_FREE: &[&str] = &["sleep", "park"];

/// Workspace fns that are a full model solve: far too heavy for the event
/// loop even though they never park the thread.
const HEAVY_SINKS: &[&str] = &["solve_cpi"];

/// Macro names whose expansion panics.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Entropy/wallclock sources for the taint rule.
const ENTROPY_CALLS: &[&str] = &["thread_rng", "from_entropy"];

/// Fns whose output is canonical JSON: reaching one of these from a tainted
/// fn means timing/randomness can leak into byte-compared documents.
const CANONICAL_SINKS: &[&str] = &["canonical", "to_string_pretty"];

/// Runs every graph rule, appending unsuppressed diagnostics.
pub fn check_graph(files: &[SourceFile], graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    reactor_no_blocking_call(files, graph, diags);
    transitive_panic_in_lib(files, graph, diags);
    nondeterminism_taint(files, graph, diags);
}

fn blocking_sink(site: &CallSite) -> Option<String> {
    match &site.kind {
        CallKind::Method if BLOCKING_METHODS.contains(&site.name.as_str()) => {
            // `self.lock()` resolving to the enclosing impl's own method is
            // that method, not std's — and its body is analyzed on its own.
            if site.self_recv && !site.resolved.is_empty() {
                return None;
            }
            Some(format!("`.{}()` (potential std blocking call)", site.name))
        }
        CallKind::Free | CallKind::Path(_) if BLOCKING_FREE.contains(&site.name.as_str()) => {
            Some(format!("`{}()` (blocks the calling thread)", site.name))
        }
        _ if HEAVY_SINKS.contains(&site.name.as_str()) => {
            Some(format!("`{}()` (a full model solve)", site.name))
        }
        _ => None,
    }
}

/// `reactor-no-blocking-call`: every fn reachable from the epoll reactor's
/// event loop (`Reactor::run`) must stay non-blocking — a parked reactor
/// thread freezes every connection at once (the PR 8 `take_updates` bug).
fn reactor_no_blocking_call(files: &[SourceFile], graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "reactor-no-blocking-call";
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&n| {
            let item = &graph.nodes[n].item;
            item.name == "run" && item.owner.as_deref() == Some("Reactor") && !item.is_test
        })
        .collect();
    if roots.is_empty() {
        return;
    }
    let parent = graph.reach(&roots);
    for n in 0..graph.nodes.len() {
        if parent[n].is_none() || graph.nodes[n].item.is_test {
            continue;
        }
        let file = &files[graph.nodes[n].file];
        for site in &graph.calls[n] {
            let Some(sink) = blocking_sink(site) else {
                continue;
            };
            if file.is_allowed(RULE, site.line) {
                continue;
            }
            let chain = graph.chain(&parent, n).join(" -> ");
            diags.push(Diagnostic {
                file: file.rel.clone(),
                line: site.line,
                col: site.col,
                rule: RULE,
                symbol: graph.nodes[n].item.display(),
                message: format!(
                    "{sink} is reachable from the reactor event loop (chain: {chain}); \
                     use the try_lock busy-retry discipline or move the work to a worker"
                ),
            });
        }
    }
}

/// Per-node panic sinks: the first unannotated `.unwrap()`/`.expect()` call
/// or panic-family macro inside the node's body. Sites already justified
/// with `allow(no-panic-in-lib)` are not sinks — their justification covers
/// every caller.
fn panic_sink(file: &SourceFile, body: (usize, usize)) -> Option<(u32, u32, String)> {
    let (open, close) = body;
    for i in open + 1..close {
        if file.code[i].kind != TokKind::Ident || file.in_test_item(i) {
            continue;
        }
        let tok = file.code[i];
        let annotated = file.is_allowed("no-panic-in-lib", tok.line)
            || file.is_allowed("transitive-panic-in-lib", tok.line);
        if annotated {
            continue;
        }
        match file.txt(i) {
            m @ ("unwrap" | "expect")
                if i > 0 && file.punct_is(i - 1, '.') && file.punct_is(i + 1, '(') =>
            {
                return Some((tok.line, tok.col, format!("`.{m}()`")));
            }
            m if PANIC_MACROS.contains(&m) && file.punct_is(i + 1, '!') => {
                return Some((tok.line, tok.col, format!("`{m}!`")));
            }
            _ => {}
        }
    }
    None
}

/// `transitive-panic-in-lib`: a public library fn whose call graph reaches
/// an unannotated panic site hands its callers an availability bug the
/// intraprocedural `no-panic-in-lib` rule cannot see from the caller's file.
fn transitive_panic_in_lib(files: &[SourceFile], graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "transitive-panic-in-lib";
    let sinks: Vec<Option<(u32, u32, String)>> = (0..graph.nodes.len())
        .map(|n| {
            let node = &graph.nodes[n];
            if node.role != Role::Lib || node.item.is_test {
                return None;
            }
            node.item
                .body
                .and_then(|body| panic_sink(&files[node.file], body))
        })
        .collect();
    if sinks.iter().all(Option::is_none) {
        return;
    }
    for root in 0..graph.nodes.len() {
        let node = &graph.nodes[root];
        if node.role != Role::Lib || !node.item.is_pub || node.item.is_test {
            continue;
        }
        let file = &files[node.file];
        if file.is_allowed(RULE, node.item.line) {
            continue;
        }
        let parent = graph.reach(&[root]);
        // Nearest reachable sink, excluding the root itself (the
        // intraprocedural rule owns direct panics).
        let hit = (0..graph.nodes.len())
            .filter(|&n| n != root && parent[n].is_some())
            .filter_map(|n| {
                sinks[n]
                    .as_ref()
                    .map(|(line, col, desc)| (graph.chain(&parent, n).len(), n, *line, *col, desc))
            })
            .min_by_key(|&(depth, n, ..)| (depth, n));
        let Some((_, n, line, col, desc)) = hit else {
            continue;
        };
        let chain = graph.chain(&parent, n).join(" -> ");
        diags.push(Diagnostic {
            file: file.rel.clone(),
            line: node.item.line,
            col: node.item.col,
            rule: RULE,
            symbol: node.item.display(),
            message: format!(
                "public fn `{}` can reach {desc} at {}:{line}:{col} (chain: {chain}); \
                 return a Result along the chain or justify the panic site",
                node.item.display(),
                graph.nodes[n].rel,
            ),
        });
    }
}

/// Wallclock/entropy call sites inside a node's recorded call list.
fn taint_sources(node_calls: &[CallSite]) -> Vec<(u32, u32, String)> {
    let mut out = Vec::new();
    for site in node_calls {
        let tainted = match &site.kind {
            CallKind::Path(qual) => {
                site.name == "now" && matches!(qual.as_str(), "Instant" | "SystemTime")
            }
            _ => ENTROPY_CALLS.contains(&site.name.as_str()),
        };
        if tainted {
            let label = match &site.kind {
                CallKind::Path(qual) => format!("{qual}::{}", site.name),
                _ => site.name.clone(),
            };
            out.push((site.line, site.col, label));
        }
    }
    out
}

/// `nondeterminism-taint`: a lib fn that reads a wall clock or entropy
/// source *and* can reach a canonical-JSON serializer can leak
/// timing/randomness into byte-compared output. The per-file wallclock rule
/// has telemetry allowlists; this rule follows the data to the serializer
/// and only fires when the two meet.
fn nondeterminism_taint(files: &[SourceFile], graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "nondeterminism-taint";
    let sink_set: BTreeSet<usize> = (0..graph.nodes.len())
        .filter(|&n| CANONICAL_SINKS.contains(&graph.nodes[n].item.name.as_str()))
        .collect();
    if sink_set.is_empty() {
        return;
    }
    for n in 0..graph.nodes.len() {
        let node = &graph.nodes[n];
        if node.role != Role::Lib || node.item.is_test {
            continue;
        }
        let sources = taint_sources(&graph.calls[n]);
        if sources.is_empty() {
            continue;
        }
        let file = &files[node.file];
        let parent = graph.reach(&[n]);
        let Some(&sink) = sink_set.iter().find(|&&s| parent[s].is_some()) else {
            continue;
        };
        let chain = graph.chain(&parent, sink).join(" -> ");
        for (line, col, label) in sources {
            if file.is_allowed(RULE, line) {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel.clone(),
                line,
                col,
                rule: RULE,
                symbol: node.item.display(),
                message: format!(
                    "`{label}` in `{}` can taint canonical JSON output (chain: {chain}); \
                     keep timing out of serialized documents or justify the telemetry",
                    node.item.display(),
                ),
            });
        }
    }
}
