//! Benches regenerating the measured figures: Fig. 1 trends, the
//! Fig. 2/4/5 characterization time series, and the Fig. 7 loaded-latency
//! calibration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use memsense_bench::check;
use memsense_experiments::figures::{fig1_trends, fig7_table};
use memsense_experiments::timeseries::{class_series, SeriesBudget};
use memsense_mlc::{composite_queueing_curve, loaded_latency_sweep, MlcConfig};
use memsense_workloads::Class;

fn bench_budget() -> SeriesBudget {
    SeriesBudget {
        threads: 4,
        warmup_ops: 30_000,
        interval_ns: 10_000.0,
        samples: 10,
    }
}

fn fig1_trends_bench(c: &mut Criterion) {
    c.bench_function("fig1_trends", |b| {
        b.iter(|| {
            let t = fig1_trends(8);
            check(
                t.last().unwrap().cpu_capability > t.last().unwrap().dram_density,
                "gap",
            );
            black_box(t.len())
        })
    });
}

fn fig2_bigdata_timeseries(c: &mut Criterion) {
    c.bench_function("fig2_bigdata_timeseries", |b| {
        b.iter(|| {
            let series = class_series(Class::BigData, &bench_budget()).unwrap();
            check(series.len() == 4, "four big data workloads");
            black_box(series.iter().map(|s| s.samples.len()).sum::<usize>())
        })
    });
}

fn fig4_enterprise_timeseries(c: &mut Criterion) {
    c.bench_function("fig4_enterprise_timeseries", |b| {
        b.iter(|| {
            let series = class_series(Class::Enterprise, &bench_budget()).unwrap();
            black_box(series.iter().map(|s| s.mean_cpi()).sum::<f64>())
        })
    });
}

fn fig5_hpc_timeseries(c: &mut Criterion) {
    c.bench_function("fig5_hpc_timeseries", |b| {
        b.iter(|| {
            let series = class_series(Class::Hpc, &bench_budget()).unwrap();
            black_box(series.iter().map(|s| s.mean_bandwidth()).sum::<f64>())
        })
    });
}

fn fig7_queueing(c: &mut Criterion) {
    let quick = MlcConfig {
        offered_gbps: vec![2.0, 12.0, 22.0, 30.0, 36.0, 42.0, 50.0],
        window_ns: 80_000.0,
        ..MlcConfig::default()
    };
    c.bench_function("fig7_queueing", |b| {
        b.iter(|| {
            let sweeps = vec![
                loaded_latency_sweep(&quick),
                loaded_latency_sweep(&MlcConfig {
                    read_fraction: 0.67,
                    ..quick.clone()
                }),
            ];
            let curve = composite_queueing_curve(&sweeps).unwrap();
            check(
                curve.delay(0.9).value() > curve.delay(0.2).value(),
                "monotone",
            );
            let fig = memsense_experiments::figures::Fig7 {
                sweeps,
                composite: curve,
            };
            black_box(fig7_table(&fig).len())
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig1_trends_bench,
    fig2_bigdata_timeseries,
    fig4_enterprise_timeseries,
    fig5_hpc_timeseries,
    fig7_queueing
);
criterion_main!(figures);
