//! Benches regenerating the analytic-model artifacts: Figs. 8–11, Tab. 7,
//! the Eq. 5 hierarchy exploration, and the queueing-curve ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use memsense_bench::check;
use memsense_model::hierarchy::{break_even_near_hit, TieredMemory};
use memsense_model::queueing::QueueingCurve;
use memsense_model::sensitivity::{
    bandwidth_derivative, bandwidth_sweep, default_bandwidth_deltas, default_latency_steps,
    equivalence, latency_derivative, latency_sweep,
};
use memsense_model::solver::{solve_cpi, Regime};
use memsense_model::system::SystemConfig;
use memsense_model::units::{GigaHertz, Nanoseconds};
use memsense_model::workload::WorkloadParams;

fn inputs() -> (Vec<WorkloadParams>, SystemConfig, QueueingCurve) {
    (
        WorkloadParams::all_classes(),
        SystemConfig::paper_baseline(),
        QueueingCurve::composite_default(),
    )
}

fn fig8_bw_sweep(c: &mut Criterion) {
    let (classes, sys, curve) = inputs();
    c.bench_function("fig8_bw_sweep", |b| {
        b.iter(|| {
            let mut rows = 0;
            for class in &classes {
                let sweep =
                    bandwidth_sweep(class, &sys, &curve, &default_bandwidth_deltas()).unwrap();
                rows += sweep.len();
                // Shape: HPC is bandwidth bound at every point.
                if class.name.contains("HPC") {
                    check(
                        sweep
                            .iter()
                            .all(|p| p.solved.regime == Regime::BandwidthBound),
                        "HPC bandwidth bound across Fig. 8",
                    );
                }
            }
            black_box(rows)
        })
    });
}

fn fig9_bw_derivative(c: &mut Criterion) {
    let (classes, sys, curve) = inputs();
    c.bench_function("fig9_bw_derivative", |b| {
        b.iter(|| {
            let sweep =
                bandwidth_sweep(&classes[2], &sys, &curve, &default_bandwidth_deltas()).unwrap();
            let deriv = bandwidth_derivative(&sweep).unwrap();
            check(
                deriv.last().unwrap().pct_per_unit > deriv.first().unwrap().pct_per_unit,
                "marginal impact grows as bandwidth shrinks",
            );
            black_box(deriv.len())
        })
    });
}

fn fig10_latency_sweep(c: &mut Criterion) {
    let (classes, sys, curve) = inputs();
    c.bench_function("fig10_latency_sweep", |b| {
        b.iter(|| {
            let mut last_ratio = Vec::new();
            for class in &classes {
                let sweep = latency_sweep(class, &sys, &curve, &default_latency_steps()).unwrap();
                last_ratio.push(sweep.last().unwrap().cpi_ratio);
            }
            // Enterprise > big data > HPC (flat).
            check(
                last_ratio[0] > last_ratio[1],
                "enterprise most latency sensitive",
            );
            check(last_ratio[2] < 1.0 + 1e-9, "HPC latency-flat");
            black_box(last_ratio)
        })
    });
}

fn fig11_latency_derivative(c: &mut Criterion) {
    let (classes, sys, curve) = inputs();
    c.bench_function("fig11_latency_derivative", |b| {
        b.iter(|| {
            let sweep = latency_sweep(&classes[0], &sys, &curve, &default_latency_steps()).unwrap();
            let deriv = latency_derivative(&sweep).unwrap();
            let avg = deriv.iter().map(|d| d.pct_per_unit).sum::<f64>() / deriv.len() as f64;
            check((avg - 3.5).abs() < 1.0, "enterprise ~3.5% per 10 ns");
            black_box(avg)
        })
    });
}

fn tab7_equivalence(c: &mut Criterion) {
    let (classes, sys, curve) = inputs();
    c.bench_function("tab7_equivalence", |b| {
        b.iter(|| {
            let rows: Vec<_> = classes
                .iter()
                .map(|class| equivalence(class, &sys, &curve).unwrap())
                .collect();
            check(
                rows[2].latency_equivalent_of_bandwidth.is_none(),
                "no latency compensates HPC bandwidth",
            );
            black_box(rows.len())
        })
    });
}

fn solver_fixed_point(c: &mut Criterion) {
    let (classes, sys, curve) = inputs();
    c.bench_function("solver_fixed_point", |b| {
        b.iter(|| {
            for class in &classes {
                black_box(solve_cpi(class, &sys, &curve).unwrap());
            }
        })
    });
}

fn hierarchy_break_even(c: &mut Criterion) {
    let (classes, _, _) = inputs();
    c.bench_function("hierarchy_break_even", |b| {
        b.iter(|| {
            for class in &classes {
                let be = break_even_near_hit(
                    class,
                    Nanoseconds(50.0),
                    Nanoseconds(300.0),
                    Nanoseconds(75.0),
                    GigaHertz(2.7),
                )
                .unwrap();
                black_box(be);
                black_box(
                    TieredMemory::two_tier(0.8, Nanoseconds(50.0), Nanoseconds(300.0)).unwrap(),
                );
            }
        })
    });
}

fn ablation_queueing_curves(c: &mut Criterion) {
    let (classes, sys, _) = inputs();
    let composite = QueueingCurve::composite_default();
    let mm1 = QueueingCurve::mm1(Nanoseconds(12.0)).unwrap();
    c.bench_function("ablation_queueing_curves", |b| {
        b.iter(|| {
            for class in &classes {
                let a = solve_cpi(class, &sys, &composite).unwrap().cpi_eff;
                let b2 = solve_cpi(class, &sys, &mm1).unwrap().cpi_eff;
                black_box((a, b2));
            }
        })
    });
}

fn numa_penalty_bench(c: &mut Criterion) {
    use memsense_model::numa::{numa_penalty, NumaConfig};
    let classes = WorkloadParams::all_classes();
    let sys = SystemConfig::characterization_platform();
    let curve = QueueingCurve::composite_default();
    c.bench_function("numa_penalty", |b| {
        b.iter(|| {
            for class in &classes {
                let p = numa_penalty(
                    class,
                    &sys,
                    &curve,
                    &NumaConfig::new(0.5, Nanoseconds(60.0)).unwrap(),
                )
                .unwrap();
                black_box(p);
            }
        })
    });
}

fn tornado_analysis(c: &mut Criterion) {
    use memsense_experiments::tornado::tornado;
    let (classes, sys, curve) = inputs();
    c.bench_function("tornado_analysis", |b| {
        b.iter(|| {
            for class in &classes {
                let bars = tornado(class, &sys, &curve, 0.2).unwrap();
                check(bars.len() == 4, "four parameters");
                black_box(bars);
            }
        })
    });
}

fn phased_solve(c: &mut Criterion) {
    use memsense_model::phases::{solve_phased, PhasedWorkload};
    use memsense_model::workload::Segment;
    let (_, sys, curve) = inputs();
    let shuffle = WorkloadParams::new("shuffle", Segment::BigData, 0.85, 0.30, 9.0, 0.8).unwrap();
    let map = WorkloadParams::new("map", Segment::BigData, 1.0, 0.10, 1.5, 0.3).unwrap();
    let phased = PhasedWorkload::new("job", vec![(shuffle, 1.0), (map, 3.0)]).unwrap();
    c.bench_function("phased_solve", |b| {
        b.iter(|| black_box(solve_phased(&phased, &sys, &curve).unwrap().cpi_eff))
    });
}

fn design_space_search(c: &mut Criterion) {
    use memsense_model::design::{default_grid, evaluate, pareto_frontier, Mix};
    let (_, sys, curve) = inputs();
    c.bench_function("design_space_search", |b| {
        b.iter(|| {
            let ev = evaluate(&default_grid(), &Mix::balanced(), &sys, &curve).unwrap();
            let frontier = pareto_frontier(&ev);
            check(!frontier.is_empty(), "non-empty frontier");
            black_box(frontier.len())
        })
    });
}

fn channel_speed_sweeps(c: &mut Criterion) {
    use memsense_experiments::sweeps::{channel_sweep_table, speed_sweep_table};
    let (classes, sys, curve) = inputs();
    c.bench_function("channel_speed_sweeps", |b| {
        b.iter(|| {
            let a = channel_sweep_table(&classes, &sys, &curve).unwrap();
            let s = speed_sweep_table(&classes, &sys, &curve).unwrap();
            black_box((a.len(), s.len()))
        })
    });
}

criterion_group!(
    name = model;
    config = Criterion::default().sample_size(20);
    targets = fig8_bw_sweep,
    fig9_bw_derivative,
    fig10_latency_sweep,
    fig11_latency_derivative,
    tab7_equivalence,
    solver_fixed_point,
    hierarchy_break_even,
    ablation_queueing_curves,
    numa_penalty_bench,
    tornado_analysis,
    phased_solve,
    design_space_search,
    channel_speed_sweeps
);
criterion_main!(model);
