//! Substrate micro-benchmarks: simulator throughput per subsystem, so
//! regressions in the engine show up independently of the experiment suite.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use memsense_sim::config::{MemoryConfig, SimConfig};
use memsense_sim::mem::MemoryController;
use memsense_sim::{Machine, Op};
use memsense_workloads::Workload;

fn cache_hierarchy_access(c: &mut Criterion) {
    use memsense_sim::cache::CacheHierarchy;
    let cfg = SimConfig::xeon_like(1);
    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("cache_hierarchy_10k_accesses", |b| {
        b.iter(|| {
            let mut h = CacheHierarchy::new(&cfg);
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                let addr = (i.wrapping_mul(0x9e3779b97f4a7c15)) % (8 << 20);
                let r = h.access(addr & !63, i % 7 == 0);
                acc += r.memory_writeback.is_some() as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn memory_controller_requests(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("memory_controller_10k_requests", |b| {
        b.iter(|| {
            let mut m = MemoryController::new(MemoryConfig::ddr3_1867(), 64);
            let mut t = 0.0;
            let mut acc = 0.0;
            for i in 0..10_000u64 {
                let addr = (i.wrapping_mul(0x2545f4914f6cdd1d)) % (1 << 30);
                acc += m.request(t, addr & !63, i % 3 == 0).latency_ns;
                t += 2.0;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn engine_instruction_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("engine_50k_mixed_ops", |b| {
        b.iter(|| {
            let cfg = SimConfig::xeon_like(2);
            let streams = Workload::StructuredData.streams(2, 1);
            let mut m = Machine::new(cfg, streams).unwrap();
            m.run_ops(25_000);
            black_box(m.total_counters().instructions)
        })
    });
    group.finish();
}

fn engine_pure_compute(c: &mut Criterion) {
    use memsense_sim::trace::PatternStream;
    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("engine_100k_compute_ops", |b| {
        b.iter(|| {
            let cfg = SimConfig::xeon_like(1);
            let stream = PatternStream::new(vec![Op::compute(), Op::compute_heavy(2)]);
            let mut m = Machine::new(cfg, vec![Box::new(stream)]).unwrap();
            m.run_ops(100_000);
            black_box(m.total_counters().busy_ns)
        })
    });
    group.finish();
}

criterion_group!(
    name = sim;
    config = Criterion::default().sample_size(15);
    targets = cache_hierarchy_access,
    memory_controller_requests,
    engine_instruction_throughput,
    engine_pure_compute
);
criterion_main!(sim);
