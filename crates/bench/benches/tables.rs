//! Benches regenerating the calibration-driven tables: Fig. 3 fits,
//! Tabs. 2–6, and the constant-BF ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use memsense_bench::check;
use memsense_experiments::ablation::constant_bf_table;
use memsense_experiments::calibrate::{calibrate, CalibrationBudget};
use memsense_experiments::classify::{class_means, fig6_table, tab6_table};
use memsense_experiments::tables::{fig3, tab2};
use memsense_experiments::validate::validate_calibration;
use memsense_workloads::{Class, Workload};

fn bench_budget() -> CalibrationBudget {
    CalibrationBudget {
        warmup_ops: 40_000,
        window_ns: 50_000.0,
        threads: 4,
        hpc_threads: 2,
    }
}

fn fig3_cpi_fit(c: &mut Criterion) {
    c.bench_function("fig3_cpi_fit", |b| {
        b.iter(|| {
            let cal = calibrate(Workload::StructuredData, &bench_budget()).unwrap();
            check(cal.r_squared > 0.7, "good linear fit");
            black_box(fig3(&[cal]).len())
        })
    });
}

fn tab2_bigdata_params(c: &mut Criterion) {
    c.bench_function("tab2_bigdata_params", |b| {
        b.iter(|| {
            let cals: Vec<_> = Workload::all()
                .into_iter()
                .filter(|w| w.class() == Class::BigData)
                .map(|w| calibrate(w, &bench_budget()).unwrap())
                .collect();
            black_box(tab2(&cals).len())
        })
    });
}

fn tab3_validation(c: &mut Criterion) {
    c.bench_function("tab3_validation", |b| {
        b.iter(|| {
            let cal = calibrate(Workload::StructuredData, &bench_budget()).unwrap();
            let v = validate_calibration(cal);
            check(v.max_abs_error() < 0.10, "Tab. 3 error bound");
            black_box(v.points.len())
        })
    });
}

fn tab45_class_params(c: &mut Criterion) {
    c.bench_function("tab45_class_params", |b| {
        b.iter(|| {
            let cals: Vec<_> = [Workload::Oltp, Workload::Bwaves]
                .into_iter()
                .map(|w| calibrate(w, &bench_budget()).unwrap())
                .collect();
            check(cals[0].bf > cals[1].bf, "enterprise BF > HPC BF");
            black_box(cals.len())
        })
    });
}

fn fig6_tab6_classification(c: &mut Criterion) {
    // Calibrate once; bench the classification step itself.
    let cals: Vec<_> = Workload::all()
        .into_iter()
        .map(|w| calibrate(w, &bench_budget()).unwrap())
        .collect();
    c.bench_function("fig6_tab6_classification", |b| {
        b.iter(|| {
            let means = class_means(&cals).unwrap();
            check(means.len() == 3, "three class means");
            black_box((
                fig6_table(&cals).unwrap().len(),
                tab6_table(&cals).unwrap().len(),
            ))
        })
    });
}

fn ablation_constant_bf(c: &mut Criterion) {
    let cals: Vec<_> = [Workload::StructuredData, Workload::Oltp]
        .into_iter()
        .map(|w| calibrate(w, &bench_budget()).unwrap())
        .collect();
    c.bench_function("ablation_constant_bf", |b| {
        b.iter(|| black_box(constant_bf_table(&cals).len()))
    });
}

criterion_group!(
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = fig3_cpi_fit,
    tab2_bigdata_params,
    tab3_validation,
    tab45_class_params,
    fig6_tab6_classification,
    ablation_constant_bf
);
criterion_main!(tables);
