//! Benchmark harness crate for memsense.
//!
//! The Criterion benches under `benches/` regenerate every table and figure
//! of the paper while measuring how long the regeneration takes:
//!
//! | Bench group | Paper artifact |
//! |---|---|
//! | `figures::fig1_trends` | Fig. 1 |
//! | `figures::fig2_bigdata_timeseries` | Fig. 2 |
//! | `figures::fig4_enterprise_timeseries` | Fig. 4 |
//! | `figures::fig5_hpc_timeseries` | Fig. 5 |
//! | `figures::fig7_queueing` | Fig. 7 |
//! | `tables::fig3_cpi_fit` | Fig. 3 |
//! | `tables::tab2_bigdata_params` | Tab. 2 |
//! | `tables::tab3_validation` | Tab. 3 |
//! | `tables::tab45_class_params` | Tabs. 4–5 |
//! | `tables::fig6_tab6_classification` | Fig. 6 / Tab. 6 |
//! | `model::fig8_bw_sweep` … `model::tab7_equivalence` | Figs. 8–11, Tab. 7 |
//! | `model::ablation_*` | DESIGN.md ablations |
//! | `sim::*` | substrate micro-benchmarks |
//!
//! Run with `cargo bench --workspace`; results land in `target/criterion/`.

/// Shared tiny helper: assert a condition inside a bench body without
/// optimizing the computation away.
pub fn check(cond: bool, what: &str) {
    assert!(cond, "bench sanity check failed: {what}");
}
