//! `memsense-bench` — record and check the recorded performance baselines.
//!
//! ```text
//! memsense-bench sim-baseline                           # record BENCH_sim.json
//! memsense-bench sim-baseline --out path.json           # record elsewhere
//! memsense-bench sim-baseline --check BENCH_sim.json    # gate against a baseline
//! memsense-bench sim-baseline --check BENCH_sim.json --tolerance 0.5 \
//!     --repeats 1 --report gate.json                    # CI mode
//!
//! memsense-bench serve-baseline                         # record BENCH_serve.json
//! memsense-bench serve-baseline --check BENCH_serve.json --tolerance 1.0 \
//!     --report serve_gate.json                          # CI mode
//!
//! memsense-bench stream-baseline                        # record BENCH_stream.json
//! memsense-bench stream-baseline --check BENCH_stream.json --tolerance 1.0 \
//!     --report stream_gate.json                         # CI mode
//! ```
//!
//! **sim-baseline** times the sim-heavy repro stages (reduced budgets) one
//! stage at a time, keeping the minimum wall per stage across `--repeats`
//! runs. Stage walls are always undiluted by co-running stages; the worker
//! pool instead serves each stage's *inner* jobs (sweep points, series
//! workloads, pressure cells). `MEMSENSE_THREADS` is honored when set (the
//! recorded `threads` field says which mode a file was recorded in) and
//! defaults to `1` — fully serial — when unset. `--check` re-measures and
//! fails (exit 1) when any stage, or the total, exceeds the recorded
//! baseline by more than `--tolerance` (fraction, default 0.5 = allow up to
//! 1.5×), when the baseline's recorded stage set has diverged from the
//! current one (stale file), or when the thread counts differ. `--profile`
//! additionally prints each stage's simulator work counters (ops, cache/TLB
//! accesses, prefetch fills; columns documented in EXPERIMENTS.md).
//!
//! **serve-baseline** drives the `memsense-serve` load generator against a
//! dedicated in-process server (epoll reactor + worker pool) at a fixed
//! concurrency and records sustained throughput plus nearest-rank warm
//! p50/p99 latency. `--check` re-measures with the baseline's recorded
//! connections/duration/path (overridable) and fails when throughput drops
//! below `baseline / (1 + tolerance)` or a latency exceeds
//! `baseline × (1 + tolerance)`.
//!
//! **stream-baseline** replays a fixed deterministic delta stream into
//! fresh incremental sweep sessions (`memsense-stream`), once per batch
//! size, and records the throughput-vs-batch-size table plus the headline
//! incremental win: the fraction of grid cells a single-point delta
//! re-solves. `--check` re-measures and fails when the fraction exceeds the
//! absolute gate or any batch size's deltas/s drops below
//! `baseline / (1 + tolerance)`.
//!
//! Use a release build; debug timings are not comparable.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use memsense_experiments::simbench::{self, DEFAULT_REPEATS, DEFAULT_TOLERANCE};
use memsense_serve::baseline as servebench;
use memsense_stream::baseline as streambench;

const USAGE: &str = "usage: memsense-bench sim-baseline \
[--out PATH] [--check PATH] [--tolerance T] [--repeats N] [--profile] [--report PATH]
       memsense-bench serve-baseline \
[--out PATH] [--check PATH] [--tolerance T] [--connections N] [--duration S] \
[--path ENDPOINT] [--report PATH]
       memsense-bench stream-baseline \
[--out PATH] [--check PATH] [--tolerance T] [--deltas N] [--repeats N] \
[--report PATH]";

enum Command {
    Sim,
    Serve,
    Stream,
}

struct Args {
    command: Command,
    out: PathBuf,
    check: Option<PathBuf>,
    tolerance: f64,
    repeats: usize,
    connections: Option<usize>,
    duration: Option<Duration>,
    deltas: Option<usize>,
    path: Option<String>,
    report: Option<PathBuf>,
    profile: bool,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _exe = argv.next();
    let command = match argv.next().as_deref() {
        Some("sim-baseline") => Command::Sim,
        Some("serve-baseline") => Command::Serve,
        Some("stream-baseline") => Command::Stream,
        Some(other) => return Err(format!("unknown command {other:?}\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    };
    let mut args = Args {
        out: PathBuf::from(match command {
            Command::Sim => "BENCH_sim.json",
            Command::Serve => "BENCH_serve.json",
            Command::Stream => "BENCH_stream.json",
        }),
        tolerance: match command {
            Command::Sim => DEFAULT_TOLERANCE,
            Command::Serve => servebench::DEFAULT_TOLERANCE,
            Command::Stream => streambench::DEFAULT_TOLERANCE,
        },
        command,
        check: None,
        repeats: DEFAULT_REPEATS,
        connections: None,
        duration: None,
        deltas: None,
        path: None,
        report: None,
        profile: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--check" => args.check = Some(PathBuf::from(value("--check")?)),
            "--report" => args.report = Some(PathBuf::from(value("--report")?)),
            "--tolerance" => {
                let v = value("--tolerance")?;
                args.tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("invalid --tolerance {v:?}"))?;
            }
            "--repeats" => {
                let v = value("--repeats")?;
                args.repeats = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("invalid --repeats {v:?}"))?;
            }
            "--connections" => {
                let v = value("--connections")?;
                args.connections = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| format!("invalid --connections {v:?}"))?,
                );
            }
            "--duration" => {
                let v = value("--duration")?;
                let s = v
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .ok_or_else(|| format!("invalid --duration {v:?}"))?;
                args.duration = Some(Duration::from_secs_f64(s));
            }
            "--deltas" => {
                let v = value("--deltas")?;
                args.deltas = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| format!("invalid --deltas {v:?}"))?,
                );
            }
            "--path" => args.path = Some(value("--path")?),
            "--profile" => args.profile = true,
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match args.command {
        Command::Sim => run_sim(&args),
        Command::Serve => run_serve(&args),
        Command::Stream => run_stream(&args),
    }
}

fn run_sim(args: &Args) -> ExitCode {
    // Default the executor serial before its OnceLock initializes; an
    // explicit MEMSENSE_THREADS is honored (the recorded `threads` field
    // documents the mode, and `--check` enforces like-for-like).
    if std::env::var_os("MEMSENSE_THREADS").is_none() {
        std::env::set_var("MEMSENSE_THREADS", "1");
    }

    // Read the baseline up front so a bad path fails before measurement.
    let baseline = match &args.check {
        None => None,
        Some(check_path) => match std::fs::read_to_string(check_path)
            .map_err(|e| format!("cannot read {}: {e}", check_path.display()))
            .and_then(|text| simbench::from_json(&text).map_err(|e| e.to_string()))
        {
            Ok(b) => Some(b),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        },
    };

    eprintln!(
        "measuring {} sim stages x {} repeat(s), one stage at a time \
         (best-of-N walls)...",
        simbench::STAGES.len(),
        args.repeats
    );
    let (current, profiles) = match simbench::measure_profiled(args.repeats) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.profile {
        print!(
            "{}",
            simbench::profile_table(&current, &profiles).to_ascii()
        );
    }

    let Some(baseline) = baseline else {
        // Record mode.
        if let Err(e) = std::fs::write(&args.out, simbench::to_json(&current)) {
            eprintln!("error: cannot write {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        println!(
            "recorded {} ({} stages at {} thread(s), total {:.1} ms)",
            args.out.display(),
            current.stages.len(),
            current.threads,
            current.total_ms()
        );
        return ExitCode::SUCCESS;
    };

    // Check mode.
    let comparison = simbench::compare(&current, &baseline, args.tolerance);
    print!("{}", comparison.to_table().to_ascii());
    for msg in comparison.diagnostics() {
        eprintln!("error: {msg}");
    }
    if let Some(report) = &args.report {
        if let Err(e) = std::fs::write(report, comparison.to_json_value().to_string_pretty()) {
            eprintln!("error: cannot write {}: {e}", report.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", report.display());
    }
    if comparison.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("sim perf gate FAILED (tolerance {:.2})", args.tolerance);
        ExitCode::FAILURE
    }
}

fn run_stream(args: &Args) -> ExitCode {
    if args.connections.is_some() || args.duration.is_some() || args.path.is_some() {
        eprintln!("error: --connections/--duration/--path apply to serve-baseline only\n{USAGE}");
        return ExitCode::from(2);
    }
    if args.profile {
        eprintln!("error: --profile applies to sim-baseline only\n{USAGE}");
        return ExitCode::from(2);
    }

    // Read the baseline up front so a bad path fails before measurement; in
    // check mode the recorded delta count is reused unless overridden, so
    // the gate compares like with like.
    let baseline = match &args.check {
        None => None,
        Some(check_path) => match std::fs::read_to_string(check_path)
            .map_err(|e| format!("cannot read {}: {e}", check_path.display()))
            .and_then(|text| streambench::from_json(&text).map_err(|e| e.to_string()))
        {
            Ok(b) => Some(b),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        },
    };

    let deltas = args.deltas.unwrap_or_else(|| {
        baseline
            .as_ref()
            .map(|b| b.deltas)
            .unwrap_or(streambench::DEFAULT_DELTAS)
    });

    eprintln!(
        "replaying {deltas} deltas per batch size {:?} x {} repeat(s)...",
        streambench::BATCH_SIZES,
        args.repeats
    );
    let current = match streambench::measure(deltas, args.repeats) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let Some(baseline) = baseline else {
        // Record mode.
        if let Err(e) = std::fs::write(&args.out, streambench::to_json(&current)) {
            eprintln!("error: cannot write {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        println!(
            "recorded {} ({} deltas over a {}-cell grid; a single-point delta \
             re-solves {} cells = {:.1}% of the grid)",
            args.out.display(),
            current.deltas,
            current.grid_cells,
            current.single_point_resolved,
            current.single_point_fraction * 100.0
        );
        return ExitCode::SUCCESS;
    };

    // Check mode.
    let comparison = streambench::compare(&current, &baseline, args.tolerance);
    print!("{}", comparison.to_table().to_ascii());
    if let Some(report) = &args.report {
        if let Err(e) = std::fs::write(report, comparison.to_json_value().to_string_pretty()) {
            eprintln!("error: cannot write {}: {e}", report.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", report.display());
    }
    if comparison.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("stream perf gate FAILED (tolerance {:.2})", args.tolerance);
        ExitCode::FAILURE
    }
}

fn run_serve(args: &Args) -> ExitCode {
    if args.repeats != DEFAULT_REPEATS {
        eprintln!("error: --repeats applies to sim-baseline only\n{USAGE}");
        return ExitCode::from(2);
    }
    if args.profile {
        eprintln!("error: --profile applies to sim-baseline only\n{USAGE}");
        return ExitCode::from(2);
    }

    // Read the baseline up front so a bad path fails before measurement; in
    // check mode the recorded load shape (connections/duration/path) is
    // reused unless overridden, so the gate compares like with like.
    let baseline = match &args.check {
        None => None,
        Some(check_path) => match std::fs::read_to_string(check_path)
            .map_err(|e| format!("cannot read {}: {e}", check_path.display()))
            .and_then(|text| servebench::from_json(&text).map_err(|e| e.to_string()))
        {
            Ok(b) => Some(b),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        },
    };

    let connections = args.connections.unwrap_or_else(|| {
        baseline
            .as_ref()
            .map(|b| b.connections)
            .unwrap_or(servebench::DEFAULT_CONNECTIONS)
    });
    let duration = args.duration.unwrap_or_else(|| {
        baseline
            .as_ref()
            .map(|b| Duration::from_secs_f64(b.duration_s))
            .unwrap_or(servebench::DEFAULT_DURATION)
    });
    let path = args.path.clone().unwrap_or_else(|| {
        baseline
            .as_ref()
            .map(|b| b.path.clone())
            .unwrap_or_else(|| servebench::DEFAULT_PATH.to_string())
    });

    eprintln!(
        "driving POST {path} with {connections} connections for {:.1} s...",
        duration.as_secs_f64()
    );
    let current = match servebench::measure(connections, duration, &path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let Some(baseline) = baseline else {
        // Record mode.
        if let Err(e) = std::fs::write(&args.out, servebench::to_json(&current)) {
            eprintln!("error: cannot write {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        println!(
            "recorded {} ({} requests, {:.1} req/s, warm p50 {:.3} ms, p99 {:.3} ms)",
            args.out.display(),
            current.requests,
            current.throughput_rps,
            current.warm_p50_ms,
            current.warm_p99_ms
        );
        return ExitCode::SUCCESS;
    };

    // Check mode.
    let comparison = servebench::compare(&current, &baseline, args.tolerance);
    print!("{}", comparison.to_table().to_ascii());
    if let Some(report) = &args.report {
        if let Err(e) = std::fs::write(report, comparison.to_json_value().to_string_pretty()) {
            eprintln!("error: cannot write {}: {e}", report.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", report.display());
    }
    if comparison.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("serve perf gate FAILED (tolerance {:.2})", args.tolerance);
        ExitCode::FAILURE
    }
}
