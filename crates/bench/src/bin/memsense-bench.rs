//! `memsense-bench` — record and check the simulator performance baseline.
//!
//! ```text
//! memsense-bench sim-baseline                         # record BENCH_sim.json
//! memsense-bench sim-baseline --out path.json         # record elsewhere
//! memsense-bench sim-baseline --check BENCH_sim.json  # gate against a baseline
//! memsense-bench sim-baseline --check BENCH_sim.json --tolerance 0.5 \
//!     --repeats 1 --report gate.json                  # CI mode
//! ```
//!
//! Recording times the sim-heavy repro stages (reduced budgets) serially —
//! the binary forces `MEMSENSE_THREADS=1` before the executor starts so
//! stage walls are undiluted by co-running stages — keeping the minimum
//! wall per stage across `--repeats` runs. `--check` re-measures and fails
//! (exit 1) when any stage, or the total, exceeds the recorded baseline by
//! more than `--tolerance` (fraction, default 0.5 = allow up to 1.5×).
//! Use a release build; debug timings are not comparable.

use std::path::PathBuf;
use std::process::ExitCode;

use memsense_experiments::simbench::{
    self, compare, from_json, measure, to_json, DEFAULT_REPEATS, DEFAULT_TOLERANCE,
};

const USAGE: &str = "usage: memsense-bench sim-baseline \
[--out PATH] [--check PATH] [--tolerance T] [--repeats N] [--report PATH]";

struct Args {
    out: PathBuf,
    check: Option<PathBuf>,
    tolerance: f64,
    repeats: usize,
    report: Option<PathBuf>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _exe = argv.next();
    match argv.next().as_deref() {
        Some("sim-baseline") => {}
        Some(other) => return Err(format!("unknown command {other:?}\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    let mut args = Args {
        out: PathBuf::from("BENCH_sim.json"),
        check: None,
        tolerance: DEFAULT_TOLERANCE,
        repeats: DEFAULT_REPEATS,
        report: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--check" => args.check = Some(PathBuf::from(value("--check")?)),
            "--report" => args.report = Some(PathBuf::from(value("--report")?)),
            "--tolerance" => {
                let v = value("--tolerance")?;
                args.tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("invalid --tolerance {v:?}"))?;
            }
            "--repeats" => {
                let v = value("--repeats")?;
                args.repeats = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("invalid --repeats {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // Pin the executor serial before its OnceLock initializes: baseline
    // walls must measure single-stage throughput, not pool contention.
    std::env::set_var("MEMSENSE_THREADS", "1");

    // Read the baseline up front so a bad path fails before measurement.
    let baseline = match &args.check {
        None => None,
        Some(check_path) => match std::fs::read_to_string(check_path)
            .map_err(|e| format!("cannot read {}: {e}", check_path.display()))
            .and_then(|text| from_json(&text).map_err(|e| e.to_string()))
        {
            Ok(b) => Some(b),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        },
    };

    eprintln!(
        "measuring {} sim stages x {} repeat(s), serial (best-of-N walls)...",
        simbench::STAGES.len(),
        args.repeats
    );
    let current = match measure(args.repeats) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let Some(baseline) = baseline else {
        // Record mode.
        if let Err(e) = std::fs::write(&args.out, to_json(&current)) {
            eprintln!("error: cannot write {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        println!(
            "recorded {} ({} stages, total {:.1} ms)",
            args.out.display(),
            current.stages.len(),
            current.total_ms()
        );
        return ExitCode::SUCCESS;
    };

    // Check mode.
    let comparison = compare(&current, &baseline, args.tolerance);
    print!("{}", comparison.to_table().to_ascii());
    if let Some(report) = &args.report {
        if let Err(e) = std::fs::write(report, comparison.to_json_value().to_string_pretty()) {
            eprintln!("error: cannot write {}: {e}", report.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", report.display());
    }
    if comparison.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("sim perf gate FAILED (tolerance {:.2})", args.tolerance);
        ExitCode::FAILURE
    }
}
