//! Memory latency checker — the memsense analogue of Intel® MLC.
//!
//! The paper calibrates its queueing-delay-vs-utilization relationship
//! (Fig. 7) by running MLC: a traffic generator that issues memory requests
//! at controlled arrival rates and records the loaded latency at each
//! delivered bandwidth, for two DDR speeds × two read/write mixes. This
//! crate reproduces that experiment against the simulated memory controller
//! and converts the measurements into the composite
//! [`memsense_model::QueueingCurve`] the analytic model consumes.
//!
//! # Examples
//!
//! ```
//! use memsense_mlc::{loaded_latency_sweep, MlcConfig};
//! use memsense_sim::config::MemoryConfig;
//!
//! let sweep = loaded_latency_sweep(&MlcConfig {
//!     memory: MemoryConfig::ddr3_1867(),
//!     read_fraction: 1.0,
//!     ..MlcConfig::default()
//! });
//! // Latency rises with offered load.
//! let first = sweep.points.first().unwrap();
//! let last = sweep.points.last().unwrap();
//! assert!(last.avg_latency_ns > first.avg_latency_ns);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use memsense_model::queueing::QueueingCurve;
use memsense_model::ModelError;
use memsense_sim::config::MemoryConfig;
use memsense_sim::mem::MemoryController;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for a loaded-latency sweep.
#[derive(Debug, Clone)]
pub struct MlcConfig {
    /// Memory subsystem under test.
    pub memory: MemoryConfig,
    /// Fraction of requests that are reads (1.0 = read-only; the paper uses
    /// two mixes).
    pub read_fraction: f64,
    /// Offered bandwidths to test, in GB/s. Defaults to a ramp from idle to
    /// well past saturation.
    pub offered_gbps: Vec<f64>,
    /// Measurement window per point, in ns of simulated time.
    pub window_ns: f64,
    /// Footprint the random addresses cover (bytes).
    pub region: u64,
    /// RNG seed for address generation and arrival jitter.
    pub seed: u64,
}

impl Default for MlcConfig {
    fn default() -> Self {
        MlcConfig {
            memory: MemoryConfig::ddr3_1867(),
            read_fraction: 1.0,
            offered_gbps: (1..=30).map(|i| i as f64 * 2.0).collect(),
            window_ns: 400_000.0,
            region: 1 << 30,
            seed: 0x316c,
        }
    }
}

/// One measured point of the loaded-latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadedLatencyPoint {
    /// Offered (injected) bandwidth, GB/s.
    pub offered_gbps: f64,
    /// Delivered bandwidth, GB/s.
    pub delivered_gbps: f64,
    /// Average read latency over the window, ns.
    pub avg_latency_ns: f64,
    /// Whether the controller kept up with the offered rate (delivered
    /// within 2% of offered and latency stable).
    pub stable: bool,
}

/// A full loaded-latency sweep for one speed/mix combination.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedLatencySweep {
    /// Human-readable label, e.g. `"DDR3-1867 100%R"`.
    pub label: String,
    /// Measured points in offered-rate order.
    pub points: Vec<LoadedLatencyPoint>,
    /// The compulsory (unloaded) latency: the latency at the lightest load.
    pub unloaded_latency_ns: f64,
    /// Maximum stable delivered bandwidth observed ("efficiency" × peak).
    pub max_stable_gbps: f64,
    /// Theoretical peak bandwidth of the configuration.
    pub peak_gbps: f64,
}

impl LoadedLatencySweep {
    /// Bus efficiency: max stable delivered bandwidth over theoretical peak
    /// (the paper observes ~70% for its DDR3-1867 baseline).
    pub fn efficiency(&self) -> f64 {
        self.max_stable_gbps / self.peak_gbps
    }

    /// Converts the sweep into `(utilization, queueing delay)` points:
    /// utilization is delivered bandwidth normalized to the maximum stable
    /// bandwidth, and queueing delay is measured latency minus the unloaded
    /// latency — exactly the Fig. 7 construction.
    pub fn queueing_points(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter(|p| p.stable)
            .map(|p| {
                (
                    (p.delivered_gbps / self.max_stable_gbps).clamp(0.0, 1.0),
                    (p.avg_latency_ns - self.unloaded_latency_ns).max(0.0),
                )
            })
            .collect()
    }

    /// Builds a [`QueueingCurve`] from this sweep alone.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when the sweep has no stable
    /// points or the measurements are not monotone after merging.
    pub fn to_queueing_curve(&self) -> Result<QueueingCurve, ModelError> {
        let mut pts = self.queueing_points();
        pts.insert(0, (0.0, 0.0));
        // Enforce monotonicity: queueing theory guarantees it, but discrete
        // sampling can produce sub-ns inversions at light load.
        let mut max_so_far = 0.0;
        for p in &mut pts {
            if p.1 < max_so_far {
                p.1 = max_so_far;
            }
            max_so_far = p.1;
        }
        QueueingCurve::from_measurements(pts, 0.95)
    }
}

/// Runs one loaded-latency sweep.
///
/// For each offered rate, requests with uniformly-random line addresses are
/// injected at jittered arrivals over [`MlcConfig::window_ns`]; read latency
/// and delivered bandwidth are derived from controller statistics, matching
/// how MLC "generates traffic … at different arrival rates, and collects
/// performance counter data as it runs".
pub fn loaded_latency_sweep(config: &MlcConfig) -> LoadedLatencySweep {
    let mix_pct = (config.read_fraction * 100.0).round();
    let label = format!(
        "DDR3-{:.0} {mix_pct:.0}%R",
        config.memory.mega_transfers.round()
    );
    let peak = config.memory.peak_bandwidth_gbps();
    let mut points = Vec::with_capacity(config.offered_gbps.len());
    let mut unloaded = f64::INFINITY;
    let mut max_stable: f64 = 0.0;

    for &offered in &config.offered_gbps {
        let point = run_point(config, offered);
        unloaded = unloaded.min(point.avg_latency_ns);
        if point.stable {
            max_stable = max_stable.max(point.delivered_gbps);
        }
        points.push(point);
    }

    LoadedLatencySweep {
        label,
        points,
        unloaded_latency_ns: unloaded,
        max_stable_gbps: max_stable,
        peak_gbps: peak,
    }
}

/// Maximum requests in flight across the injector threads — MLC is a
/// closed-loop tool (bounded concurrency per thread × many threads), which
/// is what keeps its measured loaded latency finite even past saturation.
const MAX_OUTSTANDING: usize = 128;

fn run_point(config: &MlcConfig, offered_gbps: f64) -> LoadedLatencyPoint {
    let mut controller = MemoryController::new(config.memory, 64);
    let mut rng = SmallRng::seed_from_u64(config.seed ^ offered_gbps.to_bits());
    let interval_ns = 64.0 / offered_gbps; // bytes / (GB/s) = ns
    let window = config.window_ns;

    let mut now = 0.0;
    let mut read_latency_sum = 0.0;
    let mut reads = 0u64;
    let mut bytes = 0u64;
    let mut last_complete = 0.0f64;
    let mut outstanding: std::collections::VecDeque<f64> = std::collections::VecDeque::new();

    while now < window {
        // Closed loop: block the injector when its concurrency is exhausted.
        while let Some(&done) = outstanding.front() {
            if done <= now {
                outstanding.pop_front();
            } else {
                break;
            }
        }
        if outstanding.len() >= MAX_OUTSTANDING {
            // Blocked: the arrival clock slips, so delivered bandwidth falls
            // below offered and the point reads as unstable.
            if let Some(done) = outstanding.pop_front() {
                now = now.max(done);
            }
        }
        let addr = rng.gen_range(0..config.region) & !63;
        let write = rng.gen::<f64>() >= config.read_fraction;
        let resp = controller.request(now, addr, write);
        outstanding.push_back(resp.complete_ns);
        bytes += 64;
        last_complete = last_complete.max(resp.complete_ns);
        if !write {
            read_latency_sum += resp.latency_ns;
            reads += 1;
        }
        // Jittered arrivals around the configured rate.
        now += interval_ns * rng.gen_range(0.5..1.5);
    }

    let elapsed = last_complete.max(window);
    let delivered = bytes as f64 / elapsed;
    let avg_latency = if reads > 0 {
        read_latency_sum / reads as f64
    } else {
        0.0
    };
    let stable = delivered >= offered_gbps * 0.98;

    LoadedLatencyPoint {
        offered_gbps,
        delivered_gbps: delivered,
        avg_latency_ns: avg_latency,
        stable,
    }
}

/// Runs the full Fig. 7 experiment: two memory speeds × two read/write
/// mixes, returning the four sweeps in a fixed order
/// (1867/100%R, 1867/67%R, 1333/100%R, 1333/67%R).
pub fn fig7_sweeps() -> Vec<LoadedLatencySweep> {
    let combos = [
        (MemoryConfig::ddr3_1867(), 1.0),
        (MemoryConfig::ddr3_1867(), 0.67),
        (MemoryConfig::ddr3_1333(), 1.0),
        (MemoryConfig::ddr3_1333(), 0.67),
    ];
    combos
        .into_iter()
        .map(|(memory, read_fraction)| {
            loaded_latency_sweep(&MlcConfig {
                memory,
                read_fraction,
                ..MlcConfig::default()
            })
        })
        .collect()
}

/// Builds the composite queueing curve from several sweeps, as the paper
/// averages its four measured curves into one model input.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] when `sweeps` is empty or no
/// sweep yields a valid curve.
pub fn composite_queueing_curve(
    sweeps: &[LoadedLatencySweep],
) -> Result<QueueingCurve, ModelError> {
    let curves: Vec<QueueingCurve> = sweeps
        .iter()
        .filter_map(|s| s.to_queueing_curve().ok())
        .collect();
    if curves.is_empty() {
        return Err(ModelError::InvalidParameter(
            "no valid queueing curves from sweeps",
        ));
    }
    QueueingCurve::composite(&curves)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> MlcConfig {
        MlcConfig {
            offered_gbps: vec![2.0, 10.0, 20.0, 28.0, 32.0, 36.0, 40.0, 46.0, 52.0, 60.0],
            window_ns: 150_000.0,
            ..MlcConfig::default()
        }
    }

    #[test]
    fn latency_monotone_in_offered_load() {
        let sweep = loaded_latency_sweep(&quick_config());
        let stable: Vec<_> = sweep.points.iter().filter(|p| p.stable).collect();
        assert!(stable.len() >= 3, "need several stable points");
        for w in stable.windows(2) {
            assert!(
                w[1].avg_latency_ns >= w[0].avg_latency_ns - 1.0,
                "latency should rise with load: {} then {}",
                w[0].avg_latency_ns,
                w[1].avg_latency_ns
            );
        }
    }

    #[test]
    fn unloaded_latency_near_compulsory() {
        let sweep = loaded_latency_sweep(&quick_config());
        let expected = MemoryConfig::ddr3_1867().unloaded_latency_ns(64);
        assert!(
            (sweep.unloaded_latency_ns - expected).abs() < 8.0,
            "unloaded {} vs compulsory {}",
            sweep.unloaded_latency_ns,
            expected
        );
    }

    #[test]
    fn efficiency_in_plausible_band() {
        let sweep = loaded_latency_sweep(&quick_config());
        let eff = sweep.efficiency();
        assert!(
            (0.55..0.95).contains(&eff),
            "efficiency {eff} (max stable {} / peak {})",
            sweep.max_stable_gbps,
            sweep.peak_gbps
        );
    }

    #[test]
    fn saturation_detected_past_capacity() {
        let sweep = loaded_latency_sweep(&quick_config());
        let last = sweep.points.last().unwrap();
        assert!(!last.stable, "60 GB/s offered must saturate 4×DDR3-1867");
        assert!(last.delivered_gbps < 55.0);
    }

    #[test]
    fn write_mix_reduces_stable_bandwidth() {
        let reads = loaded_latency_sweep(&quick_config());
        let mixed = loaded_latency_sweep(&MlcConfig {
            read_fraction: 0.67,
            ..quick_config()
        });
        assert!(
            mixed.max_stable_gbps <= reads.max_stable_gbps + 1.0,
            "turnarounds cost bandwidth: {} vs {}",
            mixed.max_stable_gbps,
            reads.max_stable_gbps
        );
    }

    #[test]
    fn slower_memory_lower_bandwidth() {
        let fast = loaded_latency_sweep(&quick_config());
        let slow = loaded_latency_sweep(&MlcConfig {
            memory: MemoryConfig::ddr3_1333(),
            ..quick_config()
        });
        assert!(slow.max_stable_gbps < fast.max_stable_gbps);
        assert!(slow.unloaded_latency_ns > fast.unloaded_latency_ns - 1.0);
    }

    #[test]
    fn queueing_curve_built_and_monotone() {
        let sweep = loaded_latency_sweep(&quick_config());
        let curve = sweep.to_queueing_curve().unwrap();
        assert_eq!(curve.delay(0.0).value(), 0.0);
        assert!(curve.delay(0.9).value() >= curve.delay(0.3).value());
    }

    #[test]
    fn composite_from_multiple_sweeps() {
        let a = loaded_latency_sweep(&quick_config());
        let b = loaded_latency_sweep(&MlcConfig {
            read_fraction: 0.67,
            ..quick_config()
        });
        let curve = composite_queueing_curve(&[a, b]).unwrap();
        assert!(curve.delay(0.8).value() > 0.0);
        assert!(composite_queueing_curve(&[]).is_err());
    }

    #[test]
    fn sweep_label_includes_speed_and_mix() {
        let sweep = loaded_latency_sweep(&quick_config());
        assert_eq!(sweep.label, "DDR3-1867 100%R");
    }

    #[test]
    fn deterministic() {
        let a = loaded_latency_sweep(&quick_config());
        let b = loaded_latency_sweep(&quick_config());
        assert_eq!(a, b);
    }
}
