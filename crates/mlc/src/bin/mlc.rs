//! `mlc` — command-line loaded-latency tool, mirroring Intel® MLC's
//! headline modes against the simulated memory controller.
//!
//! ```text
//! mlc                      # default: loaded-latency sweep, DDR3-1867, reads
//! mlc --idle_latency       # unloaded latency only
//! mlc --peak_bandwidth     # max stable bandwidth per speed/mix
//! mlc --loaded_latency     # the full Fig. 7 sweep table
//! mlc --mix 0.67           # read fraction (default 1.0)
//! mlc --speed 1333         # DDR3-1333 timing (default 1867)
//! ```

use std::process::ExitCode;

use memsense_mlc::{loaded_latency_sweep, MlcConfig};
use memsense_sim::config::MemoryConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!(
            "usage: mlc [--idle_latency | --peak_bandwidth | --loaded_latency] \
             [--mix <read_fraction>] [--speed <1333|1867>]"
        );
        return ExitCode::from(2);
    }

    let mut config = MlcConfig::default();
    let mut mode = "--loaded_latency".to_string();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--idle_latency" | "--peak_bandwidth" | "--loaded_latency" => {
                mode = arg.clone();
            }
            "--mix" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--mix requires a fraction in [0, 1]");
                    return ExitCode::from(2);
                };
                if !(0.0..=1.0).contains(&v) {
                    eprintln!("--mix must be in [0, 1]");
                    return ExitCode::from(2);
                }
                config.read_fraction = v;
            }
            "--speed" => {
                config.memory = match it.next().map(|s| s.as_str()) {
                    Some("1333") => MemoryConfig::ddr3_1333(),
                    Some("1867") => MemoryConfig::ddr3_1867(),
                    other => {
                        eprintln!("--speed must be 1333 or 1867, got {other:?}");
                        return ExitCode::from(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let sweep = loaded_latency_sweep(&config);
    match mode.as_str() {
        "--idle_latency" => {
            println!("idle latency: {:.1} ns", sweep.unloaded_latency_ns);
        }
        "--peak_bandwidth" => {
            println!(
                "peak (theoretical): {:.1} GB/s\nmax stable (measured): {:.1} GB/s ({:.0}% efficiency)",
                sweep.peak_gbps,
                sweep.max_stable_gbps,
                sweep.efficiency() * 100.0
            );
        }
        _ => {
            println!(
                "{}  (idle {:.1} ns)",
                sweep.label, sweep.unloaded_latency_ns
            );
            println!(
                "{:>12} {:>12} {:>12} {:>8}",
                "offered", "delivered", "latency", "stable"
            );
            for p in &sweep.points {
                println!(
                    "{:>9.1} GB/s {:>9.2} GB/s {:>9.1} ns {:>8}",
                    p.offered_gbps,
                    p.delivered_gbps,
                    p.avg_latency_ns,
                    if p.stable { "yes" } else { "no" }
                );
            }
        }
    }
    ExitCode::SUCCESS
}
