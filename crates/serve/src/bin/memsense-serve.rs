//! CLI for the model-as-a-service daemon.
//!
//! ```sh
//! memsense-serve serve --addr 127.0.0.1:7878   # run the daemon
//! memsense-serve bench --connections 4 --duration 5
//! ```

use std::process::ExitCode;
use std::time::Duration;

use memsense_serve::bench::{self, BenchConfig};
use memsense_serve::server::{Server, ServerConfig};

const USAGE: &str = "\
memsense-serve: the calibrated memory-sensitivity model as a service

USAGE:
    memsense-serve serve [--addr HOST:PORT] [--max-connections N] [--cache-mb N]
                         [--workers N]
    memsense-serve bench [--addr HOST:PORT] [--connections N] [--duration S]
                         [--requests N] [--path PATH] [--body JSON]
                         [--expect-speedup X] [--json]

serve options:
    --addr HOST:PORT    bind address (default 127.0.0.1:7878; port 0 = any)
    --max-connections N simultaneous connection cap (default 256)
    --cache-mb N        result-cache budget in MiB (default 64)
    --workers N         model-solve worker threads (default: auto, 2..=8)

bench options:
    --addr HOST:PORT    target server (default: throwaway in-process server)
    --connections N     concurrent keep-alive connections (default 4)
    --duration S        warm-phase seconds (default 5)
    --requests N        stop the warm phase after N requests
    --path PATH         endpoint to hammer (default /v1/sweep/bandwidth)
    --body JSON         request body (default: dense bandwidth sweep)
    --expect-speedup X  exit non-zero unless cache_speedup >= X
    --json              print the report as JSON instead of text

Endpoints: POST /v1/solve, /v1/sweep/bandwidth, /v1/sweep/latency,
/v1/equivalence, /v1/capacity, /v1/plan, /v1/stream/open,
/v1/stream/{id}/delta, /v1/admin/shutdown; GET /v1/stream/{id}/updates
(chunked NDJSON), /healthz, /metrics.
";

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown command {other:?} (see --help)")),
    }
}

/// Pulls the value of `--flag VALUE` out of `args`, parsing it with `parse`.
fn take_flag<T>(
    args: &mut Vec<String>,
    flag: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Option<T>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    parse(&value)
        .map(Some)
        .ok_or_else(|| format!("invalid value {value:?} for {flag}"))
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn run_serve(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let parsed = (|| -> Result<(), String> {
        if let Some(addr) = take_flag(&mut args, "--addr", |v| Some(v.to_string()))? {
            config.addr = addr;
        }
        if let Some(n) = take_flag(&mut args, "--max-connections", |v| v.parse().ok())? {
            config.max_connections = n;
        }
        if let Some(mb) = take_flag(&mut args, "--cache-mb", |v| v.parse::<usize>().ok())? {
            config.cache_budget = mb.saturating_mul(1024 * 1024);
        }
        if let Some(n) = take_flag(&mut args, "--workers", |v| v.parse().ok())? {
            config.workers = n;
        }
        Ok(())
    })();
    if let Err(message) = parsed {
        return fail(&message);
    }
    if let Some(extra) = args.first() {
        return fail(&format!("unexpected argument {extra:?}"));
    }
    let mut server = match Server::start(&config) {
        Ok(server) => server,
        Err(e) => return fail(&format!("cannot bind {}: {e}", config.addr)),
    };
    println!("memsense-serve listening on {}", server.addr());
    server.join();
    println!("memsense-serve shut down cleanly");
    ExitCode::SUCCESS
}

fn run_bench(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let mut config = BenchConfig::default();
    let mut expect_speedup: Option<f64> = None;
    let json_output = take_switch(&mut args, "--json");
    let parsed = (|| -> Result<(), String> {
        config.addr = take_flag(&mut args, "--addr", |v| Some(v.to_string()))?;
        if let Some(n) = take_flag(&mut args, "--connections", |v| v.parse().ok())? {
            config.connections = n;
        }
        if let Some(s) = take_flag(&mut args, "--duration", |v| v.parse::<f64>().ok())? {
            if !s.is_finite() || s <= 0.0 {
                return Err("--duration must be positive".to_string());
            }
            config.duration = Duration::from_secs_f64(s);
        }
        if let Some(n) = take_flag(&mut args, "--requests", |v| v.parse().ok())? {
            config.max_requests = Some(n);
        }
        if let Some(path) = take_flag(&mut args, "--path", |v| Some(v.to_string()))? {
            config.path = path;
        }
        if let Some(body) = take_flag(&mut args, "--body", |v| Some(v.to_string()))? {
            config.body = body;
        }
        expect_speedup = take_flag(&mut args, "--expect-speedup", |v| v.parse::<f64>().ok())?;
        Ok(())
    })();
    if let Err(message) = parsed {
        return fail(&message);
    }
    if let Some(extra) = args.first() {
        return fail(&format!("unexpected argument {extra:?}"));
    }
    let report = match bench::run(&config) {
        Ok(report) => report,
        Err(e) => return fail(&format!("bench failed: {e}")),
    };
    if json_output {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        print!("{}", report.to_text());
    }
    if let Some(expected) = expect_speedup {
        if report.cache_speedup < expected {
            eprintln!(
                "error: cache speedup {:.2}x is below the required {expected:.2}x",
                report.cache_speedup
            );
            return ExitCode::FAILURE;
        }
        println!(
            "cache speedup {:.1}x meets the required {expected:.1}x",
            report.cache_speedup
        );
    }
    ExitCode::SUCCESS
}
