//! The daemon: `TcpListener` accept loop, per-connection workers, routing,
//! and the cache/metrics glue.
//!
//! Each accepted connection gets its own worker thread speaking keep-alive
//! HTTP/1.1 (with blocking std-only I/O, a *fixed* pool would let one idle
//! keep-alive connection starve every queued connection), capped at
//! [`ServerConfig::max_connections`] — excess connections are turned away
//! with a 503. Connection threads do no model math themselves: model work
//! *inside* a request (sweeping many workloads, capacity grids) is fanned
//! through `memsense_experiments::executor`, so `MEMSENSE_THREADS` bounds
//! model parallelism process-wide regardless of how many connections are
//! open.
//!
//! Caching: successful `POST /v1/*` responses are stored in the
//! content-addressed [`ResultCache`](crate::cache::ResultCache) keyed by
//! `"{method} {path}#{canonical body}"`. A hit skips the model entirely and
//! returns the original body byte-for-byte.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use memsense_experiments::json::Json;

use crate::api::{self, error_body, ApiError, SweepKind};
use crate::cache::{ResultCache, DEFAULT_BUDGET_BYTES};
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::metrics::Metrics;

/// How long a keep-alive connection may sit idle before being dropped.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Most simultaneously open connections; excess get a 503. `0` = 256.
    pub max_connections: usize,
    /// Result-cache byte budget.
    pub cache_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 0,
            cache_budget: DEFAULT_BUDGET_BYTES,
        }
    }
}

/// Shared state visible to every connection worker.
struct State {
    addr: SocketAddr,
    cache: ResultCache,
    metrics: Metrics,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
}

/// A running daemon; dropping the handle does not stop it — call
/// [`Server::stop`] or POST `/v1/admin/shutdown`.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let max_connections = if config.max_connections == 0 {
            256
        } else {
            config.max_connections
        };
        let state = Arc::new(State {
            addr,
            cache: ResultCache::new(config.cache_budget),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
        });

        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                if accept_state
                    .active_connections
                    .fetch_add(1, Ordering::SeqCst)
                    >= max_connections
                {
                    accept_state
                        .active_connections
                        .fetch_sub(1, Ordering::SeqCst);
                    let response = Response {
                        status: 503,
                        body: error_body("connection limit reached"),
                    };
                    let _ = write_response(&mut stream, &response, false);
                    continue;
                }
                let state = Arc::clone(&accept_state);
                // One thread per connection: a blocked keep-alive read only
                // ever parks its own thread, never another connection. The
                // threads are detached; they exit when their peer closes (or
                // times out) and the process does not wait on them at
                // shutdown.
                std::thread::spawn(move || {
                    handle_connection(stream, &state);
                    state.active_connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });

        Ok(Server {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and unblocks the accept loop.
    pub fn stop(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // `accept` only returns on a connection; poke it so it re-checks.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the accept loop to finish. Connection threads are detached
    /// and wind down on their own once their peers hang up.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Whether shutdown has been requested (via [`Server::stop`] or the
    /// `/v1/admin/shutdown` endpoint).
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }
}

/// Serves one connection: keep-alive request loop with routing + telemetry.
fn handle_connection(stream: TcpStream, state: &State) {
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    // Responses are written as head + body; without nodelay, Nagle plus
    // delayed ACKs can add ~40 ms to every small response.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(request) => request,
            Err(ReadError::Eof) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Bad(status, message)) => {
                let response = Response {
                    status,
                    body: error_body(message),
                };
                let _ = write_response(&mut write_half, &response, false);
                return;
            }
        };
        let keep_alive = !request.wants_close() && !state.shutdown.load(Ordering::SeqCst);
        let started = Instant::now();
        let (endpoint, response) = route(state, &request);
        state
            .metrics
            .record(endpoint, response.status, started.elapsed());
        if write_response(&mut write_half, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Routes one request; returns the metrics endpoint label and the response.
fn route(state: &State, request: &Request) -> (&'static str, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (
            "/healthz",
            Response::ok(Json::obj(vec![("status", Json::str("ok"))]).to_string()),
        ),
        ("GET", "/metrics") => (
            "/metrics",
            Response::ok(state.metrics.to_json(state.cache.stats()).to_string()),
        ),
        ("POST", "/v1/admin/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            // The accept loop only re-checks the flag when `accept` returns,
            // so poke it with a throwaway connection.
            let _ = TcpStream::connect(state.addr);
            (
                "/v1/admin/shutdown",
                Response::ok(Json::obj(vec![("status", Json::str("shutting-down"))]).to_string()),
            )
        }
        ("POST", "/v1/solve") => ("/v1/solve", cached(state, request, api::solve)),
        ("POST", "/v1/sweep/bandwidth") => (
            "/v1/sweep/bandwidth",
            cached(state, request, |body| {
                api::sweep(SweepKind::Bandwidth, body)
            }),
        ),
        ("POST", "/v1/sweep/latency") => (
            "/v1/sweep/latency",
            cached(state, request, |body| api::sweep(SweepKind::Latency, body)),
        ),
        ("POST", "/v1/equivalence") => (
            "/v1/equivalence",
            cached(state, request, api::equivalence_endpoint),
        ),
        ("POST", "/v1/capacity") => ("/v1/capacity", cached(state, request, api::capacity)),
        (_, "/healthz" | "/metrics") | ("GET" | "PUT" | "DELETE" | "HEAD" | "PATCH", _)
            if known_path(&request.path) =>
        {
            (
                "other",
                Response {
                    status: 405,
                    body: error_body("method not allowed for this endpoint"),
                },
            )
        }
        _ => (
            "other",
            Response {
                status: 404,
                body: error_body(&format!("no such endpoint: {}", request.path)),
            },
        ),
    }
}

fn known_path(path: &str) -> bool {
    matches!(
        path,
        "/healthz"
            | "/metrics"
            | "/v1/solve"
            | "/v1/sweep/bandwidth"
            | "/v1/sweep/latency"
            | "/v1/equivalence"
            | "/v1/capacity"
            | "/v1/admin/shutdown"
    )
}

/// Parses the body, consults the result cache, and runs `handler` on a miss.
fn cached(
    state: &State,
    request: &Request,
    handler: impl Fn(&Json) -> Result<Json, ApiError>,
) -> Response {
    let body = if request.body.is_empty() {
        Json::obj(Vec::new())
    } else {
        let text = match std::str::from_utf8(&request.body) {
            Ok(text) => text,
            Err(_) => {
                return Response {
                    status: 400,
                    body: error_body("request body must be UTF-8"),
                }
            }
        };
        match Json::parse(text) {
            Ok(body) => body,
            Err(e) => {
                return Response {
                    status: 400,
                    body: error_body(&format!("invalid JSON: {e}")),
                }
            }
        }
    };
    let key = format!("{} {}#{}", request.method, request.path, body.canonical());
    if let Some(hit) = state.cache.get(&key) {
        return Response::ok(hit);
    }
    match handler(&body) {
        Ok(response) => {
            let body = response.to_string();
            state.cache.put(&key, &body);
            Response::ok(body)
        }
        Err(e) => Response {
            status: e.status,
            body: e.body(),
        },
    }
}
