//! The daemon: a nonblocking epoll reactor, a small worker pool for model
//! solves, and the cache/metrics/single-flight glue.
//!
//! One **reactor thread** owns every connection. It waits on an
//! [`Epoll`] instance (via `memsense-epoll`, raw syscalls, no external
//! crates) with the listener registered level-triggered and every accepted
//! connection registered edge-triggered (`EPOLLIN | EPOLLOUT | EPOLLRDHUP |
//! EPOLLET`). Each connection is a small state machine: bytes accumulate in
//! a read buffer and are parsed incrementally with
//! [`parse_request`](crate::http::parse_request) (partial heads and bodies
//! simply wait for more bytes), responses accumulate in a write queue that
//! is flushed as far as the socket allows. A blocked keep-alive connection
//! therefore costs one map entry — not a parked thread, which is what the
//! previous thread-per-connection design paid (and why it collapsed under
//! hundreds of concurrent connections on small machines: the kernel spent
//! its time context-switching stacks, not serving requests).
//!
//! Model endpoints (`POST /v1/*`) never run on the reactor thread. On a
//! cache miss the request is handed to a fixed **worker pool** over a
//! channel; workers push completions into a vector and ring an
//! [`EventFd`] the reactor waits on. Fast endpoints (`/healthz`,
//! `/metrics`, cache hits, 4xx/5xx) are answered inline.
//!
//! Because the reactor serializes request admission, it can coalesce
//! duplicate work without locks: a [`SingleFlight`] table keyed by the same
//! canonical request key as the result cache guarantees that N concurrent
//! identical requests perform **exactly one** model solve (and exactly one
//! cache miss) — the first admission leads, the rest join and share the
//! lead's response behind an `Arc<str>`, byte-identical and copy-free.
//!
//! Caching: successful `POST /v1/*` responses are stored in the sharded,
//! content-addressed [`ResultCache`](crate::cache::ResultCache) keyed by
//! `"{method} {path}#{canonical body}"`. A hit skips the model entirely and
//! returns the original body byte-for-byte.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use memsense_epoll::{Epoll, EventFd, EPOLLET, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use memsense_experiments::json::Json;

use crate::api::{self, error_body, ApiError, SweepKind};
use crate::cache::{ResultCache, DEFAULT_BUDGET_BYTES};
use crate::flight::{Admission, SingleFlight};
use crate::http::{
    chunk_frame, chunked_head, is_idle_read_error, parse_request, response_head, write_response,
    Parse, Request, Response, CHUNKED_TERMINATOR,
};
use crate::metrics::Metrics;
use crate::streams::{StreamRegistry, UpdatesPoll, SESSION_IDLE_TIMEOUT};

/// Accept backlog requested at startup (kernel-capped by
/// `net.core.somaxconn`); sized for synchronized herds of benchmark clients.
const LISTEN_BACKLOG: u32 = 1024;

/// Entries kept in the raw-request → canonical-key memo before it is
/// wholesale cleared. Steady-state traffic uses a handful of distinct
/// requests; the cap only bounds adversarial unique-body streams.
const KEY_MEMO_CAP: usize = 64;

/// How long a keep-alive connection may sit idle before being dropped.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// How long shutdown waits for queued response bytes to drain before the
/// reactor exits anyway.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// epoll token of the listener (level-triggered).
const TOKEN_LISTENER: u64 = 0;
/// epoll token of the cross-thread wakeup eventfd (level-triggered).
const TOKEN_WAKE: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Most simultaneously open connections; excess get a 503. `0` = 256.
    pub max_connections: usize,
    /// Result-cache byte budget.
    pub cache_budget: usize,
    /// Model-solve worker threads. `0` = auto: the machine's available
    /// parallelism clamped to `2..=8` (the reactor needs at least one worker
    /// making progress while another is mid-solve, and past a handful the
    /// sweep fan-out inside `memsense_experiments::executor` is the real
    /// parallelism knob).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 0,
            cache_budget: DEFAULT_BUDGET_BYTES,
            workers: 0,
        }
    }
}

/// Shared state visible to the reactor, the workers, and the [`Server`]
/// handle.
struct State {
    cache: ResultCache,
    metrics: Metrics,
    streams: StreamRegistry,
    shutdown: AtomicBool,
}

/// A running daemon; dropping the handle does not stop it — call
/// [`Server::stop`] or POST `/v1/admin/shutdown`.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    wake: Arc<EventFd>,
    reactor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the reactor thread and the worker pool, and returns.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener or creating the epoll/eventfd
    /// kernel objects (including `Unsupported` on non-Linux targets).
    pub fn start(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        // std hardcodes a listen backlog of 128, which a synchronized herd of
        // a few hundred connects overflows before the reactor is scheduled
        // (the victims see RST on their first write). Widen it; best-effort
        // because the stub syscall layer reports Unsupported off Linux and
        // the bound-but-short backlog still works for small fleets.
        let _ = memsense_epoll::widen_listen_backlog(&listener, LISTEN_BACKLOG);
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let max_connections = if config.max_connections == 0 {
            256
        } else {
            config.max_connections
        };
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 8)
        } else {
            config.workers
        };

        let state = Arc::new(State {
            cache: ResultCache::new(config.cache_budget),
            metrics: Metrics::new(),
            streams: StreamRegistry::new(),
            shutdown: AtomicBool::new(false),
        });
        let wake = Arc::new(EventFd::new()?);
        let epoll = Epoll::new(512)?;
        epoll.add(&listener, TOKEN_LISTENER, EPOLLIN)?;
        epoll.add(wake.as_ref(), TOKEN_WAKE, EPOLLIN)?;

        let (jobs, job_rx) = std::sync::mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let completions = Arc::clone(&completions);
            let wake = Arc::clone(&wake);
            let state = Arc::clone(&state);
            worker_handles.push(std::thread::spawn(move || {
                worker_loop(&job_rx, &completions, &wake, &state);
            }));
        }

        let reactor = Reactor {
            epoll,
            wake: Arc::clone(&wake),
            listener: Some(listener),
            conns: BTreeMap::new(),
            next_token: TOKEN_FIRST_CONN,
            max_connections,
            flight: SingleFlight::new(),
            key_memo: BTreeMap::new(),
            jobs,
            completions,
            workers: worker_handles,
            state: Arc::clone(&state),
        };
        let handle = std::thread::spawn(move || reactor.run());

        Ok(Server {
            addr,
            state,
            wake,
            reactor: Some(handle),
        })
    }

    /// The bound address (useful with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and wakes the reactor so it notices immediately.
    pub fn stop(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.wake.notify();
    }

    /// Waits for the reactor thread to finish. The reactor drains in-flight
    /// model work and flushes queued response bytes (bounded by a grace
    /// period) before exiting, and joins its worker pool on the way out.
    pub fn join(&mut self) {
        if let Some(handle) = self.reactor.take() {
            // memsense-lint: allow(reactor-no-blocking-call) — name-resolution over-approximation: Server::join runs on the owner thread, never on the reactor (the reactor cannot join itself)
            let _ = handle.join();
        }
    }

    /// Whether shutdown has been requested (via [`Server::stop`] or the
    /// `/v1/admin/shutdown` endpoint).
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }
}

/// A computation handed to the worker pool.
struct Job {
    reply: Reply,
    work: Work,
}

/// Where a finished computation's response goes.
///
/// Cacheable model work fans out through the single-flight table by key;
/// stream work is sessionful (two identical requests mutate state twice), so
/// its response goes straight back to the one connection that asked —
/// never near the cache or the flight table.
enum Reply {
    /// Fan out to every waiter admitted under this single-flight key.
    Flight(String),
    /// Deliver directly to one connection token.
    Conn(u64),
}

/// What the worker actually runs.
enum Work {
    /// A stateless model endpoint (cacheable, single-flighted).
    Model { body: Json, endpoint: Endpoint },
    /// `POST /v1/stream/open` — may solve a full grid; too slow for the
    /// reactor thread.
    StreamOpen { body: Json },
    /// `POST /v1/stream/{id}/delta` — may re-solve dirty cells.
    StreamDelta { id: u64, body: Json },
}

/// A finished computation, pushed by a worker for the reactor to fan out.
struct Completion {
    reply: Reply,
    status: u16,
    body: String,
}

/// The model-backed endpoints (everything the worker pool can run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Solve,
    SweepBandwidth,
    SweepLatency,
    Equivalence,
    Capacity,
    Plan,
}

impl Endpoint {
    fn from_path(path: &str) -> Option<Endpoint> {
        match path {
            "/v1/solve" => Some(Endpoint::Solve),
            "/v1/sweep/bandwidth" => Some(Endpoint::SweepBandwidth),
            "/v1/sweep/latency" => Some(Endpoint::SweepLatency),
            "/v1/equivalence" => Some(Endpoint::Equivalence),
            "/v1/capacity" => Some(Endpoint::Capacity),
            "/v1/plan" => Some(Endpoint::Plan),
            _ => None,
        }
    }

    /// Metrics label (the request path).
    fn label(self) -> &'static str {
        match self {
            Endpoint::Solve => "/v1/solve",
            Endpoint::SweepBandwidth => "/v1/sweep/bandwidth",
            Endpoint::SweepLatency => "/v1/sweep/latency",
            Endpoint::Equivalence => "/v1/equivalence",
            Endpoint::Capacity => "/v1/capacity",
            Endpoint::Plan => "/v1/plan",
        }
    }

    /// Runs the model for this endpoint (worker-pool side).
    fn run(self, body: &Json) -> Result<Json, ApiError> {
        match self {
            Endpoint::Solve => api::solve(body),
            Endpoint::SweepBandwidth => api::sweep(SweepKind::Bandwidth, body),
            Endpoint::SweepLatency => api::sweep(SweepKind::Latency, body),
            Endpoint::Equivalence => api::equivalence_endpoint(body),
            Endpoint::Capacity => api::capacity(body),
            Endpoint::Plan => api::plan_endpoint(body),
        }
    }
}

/// One queued slice of response bytes. Large cached bodies are shared
/// (`Arc<str>` refcount bump), never copied per connection.
enum Chunk {
    Owned(Vec<u8>),
    Shared(Arc<str>),
}

impl Chunk {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Chunk::Owned(bytes) => bytes,
            Chunk::Shared(text) => text.as_bytes(),
        }
    }
}

/// Bookkeeping for a request parked on the worker pool (lead or joined).
struct Waiting {
    keep_alive: bool,
    started: Instant,
    /// Metrics label (the endpoint path).
    label: &'static str,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed by a complete request.
    rbuf: Vec<u8>,
    /// Response bytes not yet accepted by the socket.
    out: VecDeque<Chunk>,
    /// Progress into `out.front()`.
    out_pos: usize,
    /// `Some` while a model solve for this connection is in flight; request
    /// handling is serial per connection, so parsing pauses until fan-out.
    waiting: Option<Waiting>,
    /// Close once `out` drains (error teardown or `Connection: close`).
    close_after_flush: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            out: VecDeque::new(),
            out_pos: 0,
            waiting: None,
            close_after_flush: false,
            last_activity: Instant::now(),
        }
    }
}

/// The reactor: owns the epoll instance, every connection, and the
/// single-flight table. Runs on its own thread until shutdown.
struct Reactor {
    epoll: Epoll,
    wake: Arc<EventFd>,
    listener: Option<TcpListener>,
    conns: BTreeMap<u64, Conn>,
    next_token: u64,
    max_connections: usize,
    flight: SingleFlight,
    /// Raw request signature → memoized canonical cache key. Steady-state
    /// traffic repeats byte-identical requests, and deriving the key the
    /// honest way (JSON parse + canonical float re-formatting) is the single
    /// hottest per-request cost; a byte-compare memo skips it entirely. Only
    /// bodies that parsed successfully are memoized, and the parser is
    /// deterministic, so a memo hit proves the body re-parses cleanly.
    key_memo: BTreeMap<Vec<u8>, String>,
    jobs: Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<State>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Vec::new();
        let mut last_sweep = Instant::now();
        let mut shutdown_at: Option<Instant> = None;
        loop {
            // memsense-lint: allow(reactor-no-blocking-call) — epoll_wait is the event loop's one designed block point: parked here means idle, not stalled
            if self.epoll.wait(&mut events, 1000).is_err() {
                break;
            }
            for event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => {
                        self.wake.drain();
                    }
                    token => self.pump(token),
                }
            }
            self.drain_completions();

            if self.state.shutdown.load(Ordering::SeqCst) {
                // Stop accepting; deliver what is owed, then leave.
                if let Some(listener) = self.listener.take() {
                    let _ = self.epoll.delete(&listener);
                }
                let deadline = *shutdown_at.get_or_insert_with(Instant::now);
                let owes = !self.flight.is_empty()
                    || self
                        .conns
                        .values()
                        .any(|c| !c.out.is_empty() || c.waiting.is_some());
                if !owes || deadline.elapsed() > SHUTDOWN_GRACE {
                    break;
                }
            }

            if last_sweep.elapsed() >= Duration::from_secs(1) {
                last_sweep = Instant::now();
                let stale: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| {
                        c.waiting.is_none() && c.last_activity.elapsed() > IDLE_TIMEOUT
                    })
                    .map(|(&token, _)| token)
                    .collect();
                for token in stale {
                    self.conns.remove(&token);
                }
                // Stream sessions ride the same sweep, on their own (much
                // longer) timeout: clients poll updates between batches, so
                // a session outlives any one connection.
                self.state.streams.evict_idle(SESSION_IDLE_TIMEOUT);
            }
        }
        // Teardown: dropping the job sender makes every worker's `recv` fail,
        // so the pool drains and exits; join it so no thread outlives `run`.
        let Reactor {
            jobs,
            workers,
            conns,
            ..
        } = self;
        drop(conns);
        drop(jobs);
        for handle in workers {
            // memsense-lint: allow(reactor-no-blocking-call) — shutdown teardown: the event loop has already exited and the dropped job queue unblocks every worker
            let _ = handle.join();
        }
    }

    /// Accepts until the listener would block. Over-cap connections get a
    /// one-shot 503 on the still-blocking socket and are dropped.
    fn accept_ready(&mut self) {
        loop {
            let accepted = match self.listener.as_ref() {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((mut stream, _)) => {
                    if self.state.shutdown.load(Ordering::SeqCst) {
                        continue;
                    }
                    if self.conns.len() >= self.max_connections {
                        let response = Response {
                            status: 503,
                            body: error_body("connection limit reached"),
                        };
                        let _ = write_response(&mut stream, &response, false);
                        continue;
                    }
                    // Responses are written as head + body; without nodelay,
                    // Nagle plus delayed ACKs can add ~40 ms per response.
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .epoll
                        .add(&stream, token, EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream));
                    // Edge-triggered: data may already be buffered; pump now.
                    self.pump(token);
                }
                Err(e) if is_idle_read_error(&e) => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Drives one connection as far as it can go without blocking: flush
    /// queued output, parse and dispatch buffered requests, read fresh
    /// bytes. Drops the connection on transport errors or clean teardown.
    fn pump(&mut self, token: u64) {
        let Reactor {
            conns,
            flight,
            key_memo,
            jobs,
            state,
            wake,
            ..
        } = self;
        let Some(conn) = conns.get_mut(&token) else {
            return;
        };

        let mut alive = flush(conn);
        while alive && conn.waiting.is_none() && !conn.close_after_flush {
            match parse_request(&conn.rbuf) {
                Parse::Partial => match read_some(conn) {
                    ReadOutcome::Data => continue,
                    ReadOutcome::WouldBlock => break,
                    ReadOutcome::Closed => {
                        if conn.rbuf.iter().any(|&b| b != b'\r' && b != b'\n') {
                            // Mid-request hangup of the write half: the read
                            // side may still be open, so report it.
                            queue_response(
                                conn,
                                &Response {
                                    status: 400,
                                    body: error_body("truncated request head"),
                                },
                                false,
                            );
                        }
                        conn.close_after_flush = true;
                        break;
                    }
                    ReadOutcome::Error => {
                        alive = false;
                        break;
                    }
                },
                Parse::Bad(status, message) => {
                    conn.rbuf.clear();
                    queue_response(
                        conn,
                        &Response {
                            status,
                            body: error_body(message),
                        },
                        false,
                    );
                    conn.close_after_flush = true;
                }
                Parse::Complete(request, consumed) => {
                    conn.rbuf.drain(..consumed);
                    dispatch(conn, token, &request, state, flight, key_memo, jobs, wake);
                }
            }
        }
        if alive {
            alive = flush(conn);
        }
        if !alive || (conn.out.is_empty() && conn.close_after_flush) {
            // Dropping the stream closes the fd, which deregisters it from
            // epoll implicitly.
            conns.remove(&token);
        }
    }

    /// Fans finished worker computations out to their waiters (lead and
    /// joined alike share one `Arc<str>` body) and resumes those
    /// connections.
    fn drain_completions(&mut self) {
        let completions = {
            // memsense-lint: allow(reactor-no-blocking-call) — workers hold this lock only to push one completion record; the exchange is a bounded Vec swap
            let Ok(mut guard) = self.completions.lock() else {
                return;
            };
            std::mem::take(&mut *guard)
        };
        for done in completions {
            match done.reply {
                Reply::Flight(key) => self.fan_out(&key, done.status, &done.body),
                Reply::Conn(token) => self.deliver(token, done.status, &done.body),
            }
        }
    }

    /// Completes a single-flight key: caches a 200, then hands the shared
    /// body to every admitted waiter.
    fn fan_out(&mut self, key: &str, status: u16, body: &str) {
        let body: Arc<str> = Arc::from(body);
        if status == 200 {
            self.state.cache.put(key, &body);
        }
        let waiters = self.flight.complete(key);
        for &waiter in &waiters {
            let Some(conn) = self.conns.get_mut(&waiter) else {
                continue;
            };
            let Some(waiting) = conn.waiting.take() else {
                continue;
            };
            self.state
                .metrics
                .record(waiting.label, status, waiting.started.elapsed());
            queue_shared(conn, status, &body, waiting.keep_alive);
            if !waiting.keep_alive {
                conn.close_after_flush = true;
            }
            conn.last_activity = Instant::now();
        }
        for waiter in waiters {
            self.pump(waiter);
        }
    }

    /// Delivers a sessionful (stream) completion straight to its one
    /// connection — no caching, no fan-out.
    fn deliver(&mut self, token: u64, status: u16, body: &str) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let Some(waiting) = conn.waiting.take() else {
                return;
            };
            self.state
                .metrics
                .record(waiting.label, status, waiting.started.elapsed());
            queue_response(
                conn,
                &Response {
                    status,
                    body: body.to_string(),
                },
                waiting.keep_alive,
            );
            if !waiting.keep_alive {
                conn.close_after_flush = true;
            }
            conn.last_activity = Instant::now();
        }
        self.pump(token);
    }
}

/// Routes one parsed request. Fast endpoints (and every error) are answered
/// inline; model endpoints consult the cache and otherwise enter the
/// single-flight table, parking the connection until a worker completes.
#[allow(clippy::too_many_arguments)] // disjoint reactor fields, split for the borrow checker
fn dispatch(
    conn: &mut Conn,
    token: u64,
    request: &Request,
    state: &State,
    flight: &mut SingleFlight,
    key_memo: &mut BTreeMap<Vec<u8>, String>,
    jobs: &Sender<Job>,
    wake: &EventFd,
) {
    // Decided before any route side effect: the response that *requests*
    // shutdown still says keep-alive; every request parsed after the flag is
    // set closes.
    let keep_alive = !request.wants_close() && !state.shutdown.load(Ordering::SeqCst);
    let started = Instant::now();
    let path = request.path.as_str();

    // Session-bearing endpoints are routed around the result cache and the
    // single-flight table entirely: their responses depend on mutable
    // session state, so byte-identical requests must each execute.
    if bypasses_result_cache(path) {
        dispatch_stream(conn, token, request, state, jobs, keep_alive, started);
        return;
    }

    let inline: Option<(&'static str, Response)> = match (request.method.as_str(), path) {
        ("GET", "/healthz") => Some((
            "/healthz",
            Response::ok(Json::obj(vec![("status", Json::str("ok"))]).to_string()),
        )),
        ("GET", "/metrics") => Some((
            "/metrics",
            Response::ok(
                state
                    .metrics
                    .to_json(
                        state.cache.stats(),
                        flight.snapshot(),
                        state.streams.snapshot(),
                    )
                    .to_string(),
            ),
        )),
        ("POST", "/v1/admin/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            wake.notify();
            Some((
                "/v1/admin/shutdown",
                Response::ok(Json::obj(vec![("status", Json::str("shutting-down"))]).to_string()),
            ))
        }
        ("POST", _) if Endpoint::from_path(path).is_some() => None,
        (_, "/healthz" | "/metrics") | ("GET" | "PUT" | "DELETE" | "HEAD" | "PATCH", _)
            if known_path(path) =>
        {
            Some((
                "other",
                Response {
                    status: 405,
                    body: error_body("method not allowed for this endpoint"),
                },
            ))
        }
        _ => Some((
            "other",
            Response {
                status: 404,
                body: error_body(&format!("no such endpoint: {path}")),
            },
        )),
    };
    if let Some((endpoint, response)) = inline {
        respond(conn, state, endpoint, &response, started, keep_alive);
        return;
    }

    // Model endpoint: parse the body, consult the cache, then single-flight.
    let Some(endpoint) = Endpoint::from_path(path) else {
        return; // unreachable by construction of `inline`
    };
    // Identical raw bytes always canonicalize to the identical key, so a
    // byte-compare memo skips the JSON parse + canonical re-formatting on
    // the steady-state path. Only successfully parsed bodies are memoized;
    // malformed bodies take (and keep taking) the 400 path below.
    let mut raw_sig =
        Vec::with_capacity(request.method.len() + path.len() + request.body.len() + 2);
    raw_sig.extend_from_slice(request.method.as_bytes());
    raw_sig.push(b' ');
    raw_sig.extend_from_slice(path.as_bytes());
    raw_sig.push(b'\n');
    raw_sig.extend_from_slice(&request.body);

    // `body` stays unparsed (`None`) on a memo hit; it is only materialized
    // if this request must actually be dispatched to a worker.
    let (key, mut body): (String, Option<Json>) = match key_memo.get(&raw_sig) {
        Some(key) => (key.clone(), None),
        None => {
            let body = match parse_model_body(&request.body) {
                Ok(body) => body,
                Err(response) => {
                    respond(
                        conn,
                        state,
                        endpoint.label(),
                        &response,
                        started,
                        keep_alive,
                    );
                    return;
                }
            };
            let key = format!("{} {}#{}", request.method, request.path, body.canonical());
            if key_memo.len() >= KEY_MEMO_CAP {
                key_memo.clear();
            }
            key_memo.insert(raw_sig, key.clone());
            (key, Some(body))
        }
    };
    // In-flight check BEFORE the cache: joiners must not touch the cache at
    // all, so N concurrent identical requests record exactly one miss (the
    // lead's) no matter how they interleave.
    if flight.is_inflight(&key) {
        let admission = flight.admit(&key, token);
        debug_assert_eq!(admission, Admission::Joined);
        conn.waiting = Some(Waiting {
            keep_alive,
            started,
            label: endpoint.label(),
        });
        return;
    }
    if let Some(hit) = state.cache.get(&key) {
        state
            .metrics
            .record(endpoint.label(), 200, started.elapsed());
        queue_shared(conn, 200, &hit, keep_alive);
        if !keep_alive {
            conn.close_after_flush = true;
        }
        return;
    }
    if body.is_none() {
        // Memo hit but cache miss (the entry was evicted): materialize the
        // body for the worker. A memo hit proves these exact bytes parsed
        // cleanly before, and the parser is deterministic — but stay honest
        // if that invariant is ever broken rather than panicking.
        match parse_model_body(&request.body) {
            Ok(parsed) => body = Some(parsed),
            Err(response) => {
                respond(
                    conn,
                    state,
                    endpoint.label(),
                    &response,
                    started,
                    keep_alive,
                );
                return;
            }
        }
    }
    let Some(body) = body else {
        return; // unreachable: `body` was just materialized
    };
    if flight.admit(&key, token) == Admission::Lead
        && jobs
            .send(Job {
                reply: Reply::Flight(key.clone()),
                work: Work::Model { body, endpoint },
            })
            .is_err()
    {
        // Worker pool gone (shutdown race): answer directly.
        flight.complete(&key);
        let response = Response {
            status: 503,
            body: error_body("server is shutting down"),
        };
        respond(
            conn,
            state,
            endpoint.label(),
            &response,
            started,
            keep_alive,
        );
        return;
    }
    conn.waiting = Some(Waiting {
        keep_alive,
        started,
        label: endpoint.label(),
    });
}

/// Whether `path` belongs to the session-bearing route family that must
/// never be served from the result cache or coalesced by the single-flight
/// table. Stream requests mutate per-session state, so two byte-identical
/// `POST .../delta` requests must both execute — serving the second from
/// the cache (or joining it to the first's solve) would silently drop ops.
pub fn bypasses_result_cache(path: &str) -> bool {
    path == "/v1/stream" || path.starts_with("/v1/stream/")
}

/// A parsed `/v1/stream/...` route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamRoute {
    Open,
    Delta(u64),
    Updates(u64),
}

impl StreamRoute {
    fn from_path(path: &str) -> Option<StreamRoute> {
        let rest = path.strip_prefix("/v1/stream/")?;
        if rest == "open" {
            return Some(StreamRoute::Open);
        }
        let (id, tail) = rest.split_once('/')?;
        let id: u64 = id.parse().ok()?;
        match tail {
            "delta" => Some(StreamRoute::Delta(id)),
            "updates" => Some(StreamRoute::Updates(id)),
            _ => None,
        }
    }
}

/// Routes one `/v1/stream/...` request. Open/delta run on the worker pool
/// (they solve grid cells) with the response delivered straight back to
/// this connection; updates drains the session's buffer inline and streams
/// it as chunked NDJSON — the first consumer of the reactor's queued-write
/// machinery that is not a single `Content-Length` body.
fn dispatch_stream(
    conn: &mut Conn,
    token: u64,
    request: &Request,
    state: &State,
    jobs: &Sender<Job>,
    keep_alive: bool,
    started: Instant,
) {
    let route = StreamRoute::from_path(&request.path);
    let method = request.method.as_str();
    let (label, work) = match (method, route) {
        ("POST", Some(StreamRoute::Open)) => ("/v1/stream/open", None),
        ("POST", Some(StreamRoute::Delta(id))) => ("/v1/stream/delta", Some(id)),
        ("GET", Some(StreamRoute::Updates(id))) => {
            // Served inline on the reactor thread, so the drain must never
            // wait on the session lock (a worker mid-delta holds it across
            // the whole solve): the registry uses try_lock and a busy
            // session answers 503 retry instead of stalling every
            // connection on the server.
            let response = match state.streams.take_updates(id) {
                UpdatesPoll::Unknown => {
                    respond(
                        conn,
                        state,
                        "/v1/stream/updates",
                        &Response {
                            status: 404,
                            body: error_body(&format!("no such session: {id}")),
                        },
                        started,
                        keep_alive,
                    );
                    return;
                }
                UpdatesPoll::Busy => {
                    respond(
                        conn,
                        state,
                        "/v1/stream/updates",
                        &Response {
                            status: 503,
                            body: error_body(&format!(
                                "session {id} is busy applying a delta; retry"
                            )),
                        },
                        started,
                        keep_alive,
                    );
                    return;
                }
                UpdatesPoll::Drained(updates) => updates,
            };
            let mut bytes = chunked_head(200, keep_alive).into_bytes();
            for update in &response {
                bytes.extend_from_slice(chunk_frame(&format!("{}\n", update.body)).as_bytes());
            }
            bytes.extend_from_slice(CHUNKED_TERMINATOR.as_bytes());
            state
                .metrics
                .record("/v1/stream/updates", 200, started.elapsed());
            conn.out.push_back(Chunk::Owned(bytes));
            if !keep_alive {
                conn.close_after_flush = true;
            }
            return;
        }
        (_, Some(_)) => {
            respond(
                conn,
                state,
                "other",
                &Response {
                    status: 405,
                    body: error_body("method not allowed for this endpoint"),
                },
                started,
                keep_alive,
            );
            return;
        }
        (_, None) => {
            respond(
                conn,
                state,
                "other",
                &Response {
                    status: 404,
                    body: error_body(&format!("no such endpoint: {}", request.path)),
                },
                started,
                keep_alive,
            );
            return;
        }
    };

    let body = match parse_model_body(&request.body) {
        Ok(body) => body,
        Err(response) => {
            respond(conn, state, label, &response, started, keep_alive);
            return;
        }
    };
    let job = Job {
        reply: Reply::Conn(token),
        work: match work {
            None => Work::StreamOpen { body },
            Some(id) => Work::StreamDelta { id, body },
        },
    };
    if jobs.send(job).is_err() {
        let response = Response {
            status: 503,
            body: error_body("server is shutting down"),
        };
        respond(conn, state, label, &response, started, keep_alive);
        return;
    }
    conn.waiting = Some(Waiting {
        keep_alive,
        started,
        label,
    });
}

/// Parses a model-endpoint request body (empty = `{}`), mapping failures to
/// the exact 400 responses the route has always produced.
fn parse_model_body(raw: &[u8]) -> Result<Json, Response> {
    if raw.is_empty() {
        return Ok(Json::obj(Vec::new()));
    }
    let text = std::str::from_utf8(raw).map_err(|_| Response {
        status: 400,
        body: error_body("request body must be UTF-8"),
    })?;
    Json::parse(text).map_err(|e| Response {
        status: 400,
        body: error_body(&format!("invalid JSON: {e}")),
    })
}

/// Records metrics for an inline response and queues its bytes.
fn respond(
    conn: &mut Conn,
    state: &State,
    endpoint: &'static str,
    response: &Response,
    started: Instant,
    keep_alive: bool,
) {
    state
        .metrics
        .record(endpoint, response.status, started.elapsed());
    queue_response(conn, response, keep_alive);
    if !keep_alive {
        conn.close_after_flush = true;
    }
}

fn known_path(path: &str) -> bool {
    matches!(
        path,
        "/healthz"
            | "/metrics"
            | "/v1/solve"
            | "/v1/sweep/bandwidth"
            | "/v1/sweep/latency"
            | "/v1/equivalence"
            | "/v1/capacity"
            | "/v1/plan"
            | "/v1/admin/shutdown"
    )
}

/// Queues head + body as one owned chunk (inline responses are small).
fn queue_response(conn: &mut Conn, response: &Response, keep_alive: bool) {
    let mut bytes = response_head(response.status, response.body.len(), keep_alive).into_bytes();
    bytes.extend_from_slice(response.body.as_bytes());
    conn.out.push_back(Chunk::Owned(bytes));
}

/// Queues a (possibly large, possibly multiply-fanned-out) shared body:
/// only the head is owned; the body is an `Arc<str>` refcount bump.
fn queue_shared(conn: &mut Conn, status: u16, body: &Arc<str>, keep_alive: bool) {
    // Small responses go out as one owned chunk: a ≤16 KiB memcpy costs less
    // than the extra write(2) the split head/body representation would take.
    const INLINE_BODY_LIMIT: usize = 16 * 1024;
    let head = response_head(status, body.len(), keep_alive);
    if body.len() <= INLINE_BODY_LIMIT {
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(body.as_bytes());
        conn.out.push_back(Chunk::Owned(bytes));
    } else {
        conn.out.push_back(Chunk::Owned(head.into_bytes()));
        conn.out.push_back(Chunk::Shared(Arc::clone(body)));
    }
}

/// Writes queued chunks until the socket would block or the queue drains.
/// Returns `false` when the connection died.
fn flush(conn: &mut Conn) -> bool {
    while let Some(front) = conn.out.front() {
        let bytes = front.as_bytes();
        match conn.stream.write(&bytes[conn.out_pos..]) {
            Ok(0) => return false,
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = Instant::now();
                if conn.out_pos == bytes.len() {
                    conn.out.pop_front();
                    conn.out_pos = 0;
                }
            }
            Err(e) if is_idle_read_error(&e) => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}

/// Outcome of one nonblocking read attempt.
enum ReadOutcome {
    /// Fresh bytes landed in `rbuf`.
    Data,
    /// Nothing buffered; wait for the next readiness edge.
    WouldBlock,
    /// Peer closed its write half (clean end-of-stream).
    Closed,
    /// Transport failure; tear the connection down.
    Error,
}

/// Reads once into the connection's buffer.
fn read_some(conn: &mut Conn) -> ReadOutcome {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
                return ReadOutcome::Data;
            }
            Err(e) if is_idle_read_error(&e) => return ReadOutcome::WouldBlock,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Error,
        }
    }
}

/// Worker-pool body: pull jobs until the channel closes, run the work, and
/// post the completion for the reactor to fan out.
fn worker_loop(
    jobs: &Mutex<Receiver<Job>>,
    completions: &Mutex<Vec<Completion>>,
    wake: &EventFd,
    state: &State,
) {
    loop {
        let job = {
            let Ok(rx) = jobs.lock() else { return };
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        let (status, body) = match job.work {
            Work::Model { body, endpoint } => match endpoint.run(&body) {
                Ok(json) => (200, json.to_string()),
                Err(e) => (e.status, e.body()),
            },
            Work::StreamOpen { body } => state.streams.open(&body),
            Work::StreamDelta { id, body } => state.streams.delta(id, &body),
        };
        if let Ok(mut done) = completions.lock() {
            done.push(Completion {
                reply: job.reply,
                status,
                body,
            });
        }
        wake.notify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_bypass_covers_exactly_the_stream_family() {
        // Session-bearing endpoints must never be cache-served or coalesced.
        assert!(bypasses_result_cache("/v1/stream/open"));
        assert!(bypasses_result_cache("/v1/stream/7/delta"));
        assert!(bypasses_result_cache("/v1/stream/7/updates"));
        // Even unroutable stream-prefixed paths bypass: they 404 in the
        // stream dispatcher, not through the cached route.
        assert!(bypasses_result_cache("/v1/stream"));
        assert!(bypasses_result_cache("/v1/stream/nope"));
        // Stateless endpoints keep the cache.
        assert!(!bypasses_result_cache("/v1/solve"));
        assert!(!bypasses_result_cache("/v1/sweep/bandwidth"));
        assert!(!bypasses_result_cache("/v1/plan"));
        assert!(!bypasses_result_cache("/metrics"));
        // Prefix means path segments, not string prefix of another route.
        assert!(!bypasses_result_cache("/v1/streaming"));
    }

    #[test]
    fn stream_routes_parse_ids_and_reject_junk() {
        assert_eq!(
            StreamRoute::from_path("/v1/stream/open"),
            Some(StreamRoute::Open)
        );
        assert_eq!(
            StreamRoute::from_path("/v1/stream/42/delta"),
            Some(StreamRoute::Delta(42))
        );
        assert_eq!(
            StreamRoute::from_path("/v1/stream/1/updates"),
            Some(StreamRoute::Updates(1))
        );
        assert_eq!(StreamRoute::from_path("/v1/stream"), None);
        assert_eq!(StreamRoute::from_path("/v1/stream/"), None);
        assert_eq!(StreamRoute::from_path("/v1/stream/x/delta"), None);
        assert_eq!(StreamRoute::from_path("/v1/stream/1/nope"), None);
        assert_eq!(StreamRoute::from_path("/v1/stream/1"), None);
    }
}
