//! Single-flight coalescing: N concurrent identical requests, one solve.
//!
//! Keyed on the same canonical request key as the result cache
//! (`"{method} {path}#{canonical body}"`), so any two requests the cache
//! would consider identical are also coalesced while in flight. The first
//! admission for a key becomes the **lead** and is the only one dispatched
//! to the worker pool; later admissions for the same key **join** the flight
//! and simply wait. When the computation completes, [`SingleFlight::complete`]
//! returns every waiter (lead first, then joiners in arrival order) so the
//! reactor can fan the one response out to all of them.
//!
//! This table is owned and touched exclusively by the reactor thread, which
//! serializes request admission — that is what makes the "exactly one cache
//! miss for N concurrent identical requests" guarantee airtight: between the
//! lead's cache miss and its completion, every identical request is observed
//! by the same thread and joins the flight instead of re-missing. No lock is
//! needed, and a `BTreeMap` keeps the bookkeeping deterministic.

use std::collections::BTreeMap;

/// How an admission was classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// First in: the caller must dispatch the computation.
    Lead,
    /// An identical request is already in flight: wait for its fan-out.
    Joined,
}

/// Point-in-time coalescing counters, for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightSnapshot {
    /// Distinct keys currently being computed.
    pub in_flight: usize,
    /// Total admissions that joined an existing flight instead of computing.
    pub coalesced: u64,
}

/// The in-flight table: canonical key → waiting connection tokens.
#[derive(Debug, Default)]
pub struct SingleFlight {
    inflight: BTreeMap<String, Vec<u64>>,
    coalesced: u64,
}

impl SingleFlight {
    /// An empty table.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Admits connection `token` for `key`: [`Admission::Lead`] when no
    /// identical request is in flight (caller dispatches the work),
    /// [`Admission::Joined`] otherwise.
    pub fn admit(&mut self, key: &str, token: u64) -> Admission {
        match self.inflight.get_mut(key) {
            Some(waiters) => {
                waiters.push(token);
                self.coalesced += 1;
                Admission::Joined
            }
            None => {
                self.inflight.insert(key.to_string(), vec![token]);
                Admission::Lead
            }
        }
    }

    /// Ends the flight for `key`, returning every waiting token (lead first,
    /// joiners in arrival order). Empty when the key was never admitted.
    pub fn complete(&mut self, key: &str) -> Vec<u64> {
        self.inflight.remove(key).unwrap_or_default()
    }

    /// Whether `key` is currently being computed. Callers check this
    /// *before* consulting the result cache: joining an existing flight must
    /// not record a spurious cache miss, or "N concurrent identical requests
    /// miss exactly once" would degrade to "miss up to N times".
    pub fn is_inflight(&self, key: &str) -> bool {
        self.inflight.contains_key(key)
    }

    /// Counters for `/metrics`.
    pub fn snapshot(&self) -> FlightSnapshot {
        FlightSnapshot {
            in_flight: self.inflight.len(),
            coalesced: self.coalesced,
        }
    }

    /// Whether any computation is still in flight (used by shutdown
    /// draining).
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_admission_leads_and_later_ones_join() {
        let mut flight = SingleFlight::new();
        assert!(!flight.is_inflight("k"));
        assert_eq!(flight.admit("k", 10), Admission::Lead);
        assert!(flight.is_inflight("k"));
        assert_eq!(flight.admit("k", 11), Admission::Joined);
        assert_eq!(flight.admit("k", 12), Admission::Joined);
        let snap = flight.snapshot();
        assert_eq!(snap.in_flight, 1);
        assert_eq!(snap.coalesced, 2);
        assert_eq!(flight.complete("k"), vec![10, 11, 12]);
        assert!(flight.is_empty());
        // Counters survive completion; the flight itself is gone.
        assert_eq!(flight.snapshot().coalesced, 2);
        assert_eq!(flight.complete("k"), Vec::<u64>::new());
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let mut flight = SingleFlight::new();
        assert_eq!(flight.admit("a", 1), Admission::Lead);
        assert_eq!(flight.admit("b", 2), Admission::Lead);
        assert_eq!(flight.admit("a", 3), Admission::Joined);
        assert_eq!(flight.snapshot().in_flight, 2);
        assert_eq!(flight.complete("a"), vec![1, 3]);
        assert_eq!(flight.snapshot().in_flight, 1);
        assert_eq!(flight.complete("b"), vec![2]);
        assert!(flight.is_empty());
    }

    #[test]
    fn same_key_can_fly_again_after_completion() {
        let mut flight = SingleFlight::new();
        assert_eq!(flight.admit("k", 1), Admission::Lead);
        flight.complete("k");
        // A fresh flight for the same key leads again (e.g. the first
        // result was an error and never entered the cache).
        assert_eq!(flight.admit("k", 2), Admission::Lead);
        assert_eq!(flight.complete("k"), vec![2]);
    }
}
