//! Minimal HTTP/1.1 codec over `TcpStream`.
//!
//! Supports exactly what the daemon needs: request-line + headers +
//! `Content-Length` bodies, keep-alive, and a handful of response status
//! codes — with hard limits on header and body size so untrusted input
//! cannot exhaust memory. Chunked transfer encoding is rejected on
//! *requests* (411/413-class errors) but supported on *responses*: the
//! stream-updates endpoint emits `Transfer-Encoding: chunked` NDJSON frames
//! ([`chunked_head`] / [`chunk_frame`]), and [`Client`] reads both framings.
//! Requests carrying duplicate or conflicting `Content-Length` headers are
//! rejected with 400 (request-smuggling hygiene).
//!
//! Two front ends share one head parser:
//!
//! * [`read_request`] — blocking, over any [`BufRead`] (the bench client and
//!   tests).
//! * [`parse_request`] — incremental, over an in-memory byte buffer: returns
//!   [`Parse::Partial`] until a full request (head + declared body) has
//!   accumulated. This is what the nonblocking reactor drives; it never
//!   blocks and reports how many bytes each complete request consumed so
//!   pipelined bytes stay in the buffer.

use std::io::{self, BufRead, Write};

/// Maximum accepted size of the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted request body size.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Request path (no query-string splitting; the API does not use one).
    pub path: String,
    /// Headers as `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request (normal for
    /// keep-alive teardown).
    Eof,
    /// The request was malformed or exceeded a limit; the enclosed response
    /// status/message should be sent before closing.
    Bad(u16, &'static str),
    /// Transport error.
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Whether an I/O error is the "no data yet" outcome of reading a socket —
/// either a nonblocking read with nothing buffered or an expired
/// `set_read_timeout`. Platforms disagree on the kind: Unix surfaces both as
/// `WouldBlock` (`EAGAIN`), while Windows reports timeouts as `TimedOut`.
/// Treating only one kind as idle turns routine keep-alive teardown into a
/// hard error on the other platform family.
pub fn is_idle_read_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Parses the header block text (request line + header lines, blank line
/// stripped), returning the request (empty body) and the declared body
/// length.
fn parse_head(text: &str) -> Result<(Request, usize), (u16, &'static str)> {
    let mut lines = text.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => return Err((400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err((505, "unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err((400, "malformed header"));
        };
        headers.push((name.trim().to_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_uppercase(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if request.header("transfer-encoding").is_some() {
        return Err((411, "chunked bodies are not supported"));
    }
    // Request-smuggling hygiene: a request must declare its body length at
    // most once. Two frames disagreeing about where the body ends is exactly
    // the ambiguity smuggling attacks exploit, so duplicates are rejected
    // even when the values agree.
    let mut lengths = request
        .headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str());
    let length = match lengths.next() {
        None => 0,
        Some(v) => {
            if lengths.next().is_some() {
                return Err((400, "duplicate Content-Length"));
            }
            v.parse::<usize>()
                .map_err(|_| (400, "invalid Content-Length"))?
        }
    };
    if length > MAX_BODY_BYTES {
        return Err((413, "request body too large"));
    }
    Ok((request, length))
}

/// Outcome of [`parse_request`] over an accumulating buffer.
#[derive(Debug)]
pub enum Parse {
    /// More bytes are needed before a full request is available.
    Partial,
    /// One complete request, and how many buffer bytes it consumed
    /// (pipelined followers start at that offset).
    Complete(Request, usize),
    /// The buffered bytes are malformed or over-limit; send the enclosed
    /// status/message and close.
    Bad(u16, &'static str),
}

/// Incrementally parses the front of `buf` (bytes read so far from one
/// connection) into at most one request. Never blocks; call again with more
/// bytes after [`Parse::Partial`].
pub fn parse_request(buf: &[u8]) -> Parse {
    // Tolerate leading blank lines (RFC 9112 §2.2).
    let start = buf
        .iter()
        .position(|&b| b != b'\r' && b != b'\n')
        .unwrap_or(buf.len());
    let buf = &buf[start..];
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Parse::Bad(431, "request head too large");
        }
        return Parse::Partial;
    };
    if head_len > MAX_HEAD_BYTES {
        return Parse::Bad(431, "request head too large");
    }
    let Ok(text) = std::str::from_utf8(&buf[..head_len]) else {
        return Parse::Bad(400, "non-UTF-8 head");
    };
    match parse_head(text) {
        Err((status, message)) => Parse::Bad(status, message),
        Ok((request, length)) => {
            if buf.len() < head_len + length {
                return Parse::Partial;
            }
            let body = buf[head_len..head_len + length].to_vec();
            Parse::Complete(Request { body, ..request }, start + head_len + length)
        }
    }
}

/// Offset one past the blank line ending the header block (`\n\n` or
/// `\n\r\n`), if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] != b'\n' {
            i += 1;
            continue;
        }
        match buf.get(i + 1) {
            Some(b'\n') => return Some(i + 2),
            Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
            _ => i += 1,
        }
    }
    None
}

/// Reads one request from a buffered stream.
///
/// # Errors
///
/// [`ReadError::Eof`] on clean end-of-stream before any bytes,
/// [`ReadError::Bad`] for malformed or over-limit requests, and
/// [`ReadError::Io`] for transport failures (including read timeouts).
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut head = Vec::with_capacity(256);
    // Read up to the blank line terminating the header block.
    loop {
        let mut line = Vec::with_capacity(64);
        let n = read_limited_line(stream, &mut line, MAX_HEAD_BYTES + 2)?;
        if n == 0 {
            if head.is_empty() {
                return Err(ReadError::Eof);
            }
            return Err(ReadError::Bad(400, "truncated request head"));
        }
        if head.len() + line.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Bad(431, "request head too large"));
        }
        let is_blank = line == b"\r\n" || line == b"\n";
        head.extend_from_slice(&line);
        if is_blank && !head_is_only_blank(&head) {
            break;
        }
        if is_blank {
            // Tolerate leading blank lines (RFC 9112 §2.2), keep reading.
            head.clear();
        }
    }

    let text = std::str::from_utf8(&head).map_err(|_| ReadError::Bad(400, "non-UTF-8 head"))?;
    let (request, length) =
        parse_head(text).map_err(|(status, msg)| ReadError::Bad(status, msg))?;
    let mut body = vec![0u8; length];
    if length > 0 {
        io::Read::read_exact(stream, &mut body)
            .map_err(|_| ReadError::Bad(400, "truncated request body"))?;
    }
    Ok(Request { body, ..request })
}

/// Reads one `\n`-terminated line, erroring out past `max` bytes.
fn read_limited_line(
    stream: &mut impl BufRead,
    out: &mut Vec<u8>,
    max: usize,
) -> Result<usize, ReadError> {
    let mut total = 0;
    loop {
        let buf = stream.fill_buf()?;
        if buf.is_empty() {
            return Ok(total);
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(buf.len());
        if total + take > max {
            return Err(ReadError::Bad(431, "header line too long"));
        }
        out.extend_from_slice(&buf[..take]);
        stream.consume(take);
        total += take;
        if newline.is_some() {
            return Ok(total);
        }
    }
}

fn head_is_only_blank(head: &[u8]) -> bool {
    head.iter().all(|&b| b == b'\r' || b == b'\n')
}

/// An HTTP response: status code plus a JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always `application/json` in this daemon).
    pub body: String,
}

impl Response {
    /// A 200 response with the given JSON body.
    pub fn ok(body: String) -> Response {
        Response { status: 200, body }
    }
}

/// Reason phrase for the handful of status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Renders the response head (status line + headers + blank line) for a
/// JSON body of `body_len` bytes.
pub fn response_head(status: u16, body_len: usize, keep_alive: bool) -> String {
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body_len,
        if keep_alive { "keep-alive" } else { "close" },
    )
}

/// Renders a chunked-transfer response head (status line + headers + blank
/// line). The body follows as [`chunk_frame`]s closed by
/// [`CHUNKED_TERMINATOR`]; each frame carries one newline-terminated JSON
/// record (NDJSON), so consumers can parse records without buffering the
/// whole stream.
pub fn chunked_head(status: u16, keep_alive: bool) -> String {
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    )
}

/// Frames `data` as one HTTP/1.1 chunk: hex length, CRLF, data, CRLF.
pub fn chunk_frame(data: &str) -> String {
    format!("{:x}\r\n{}\r\n", data.len(), data)
}

/// The zero-length chunk ending a chunked response body.
pub const CHUNKED_TERMINATOR: &str = "0\r\n\r\n";

/// Writes `response`, setting `Connection: close` unless `keep_alive`.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response(
    stream: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let head = response_head(response.status, response.body.len(), keep_alive);
    // memsense-lint: allow(reactor-no-blocking-call) — reactor-side callers only use this for one-shot over-capacity 503s on a fresh socket whose tiny body fits the kernel send buffer; normal responses go through the non-blocking Conn write queue
    stream.write_all(head.as_bytes())?;
    // memsense-lint: allow(reactor-no-blocking-call) — same one-shot 503 rationale as the head write above
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// A minimal keep-alive HTTP/1.1 client for the bench tool and tests.
#[derive(Debug)]
pub struct Client {
    reader: io::BufReader<std::net::TcpStream>,
}

impl Client {
    /// Connects to `addr` (anything `ToSocketAddrs` accepts).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Client> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: io::BufReader::new(stream),
        })
    }

    /// Sends one request and reads the response, reusing the connection.
    ///
    /// # Errors
    ///
    /// Transport failures, or `InvalidData` for malformed responses.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: memsense\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;

        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut length: Option<usize> = None;
        let mut chunked = false;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(bad("truncated response head"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    length = value.trim().parse().ok();
                } else if name.eq_ignore_ascii_case("transfer-encoding") {
                    chunked = value.trim().eq_ignore_ascii_case("chunked");
                }
            }
        }
        let body = if chunked {
            self.read_chunked_body()?
        } else {
            let length = length.ok_or_else(|| bad("response without Content-Length"))?;
            let mut body = vec![0u8; length];
            io::Read::read_exact(&mut self.reader, &mut body)?;
            body
        };
        String::from_utf8(body)
            .map(|text| (status, text))
            .map_err(|_| bad("non-UTF-8 response body"))
    }

    /// Reads a chunked response body through the terminating zero chunk,
    /// returning the dechunked bytes.
    fn read_chunked_body(&mut self) -> io::Result<Vec<u8>> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut body = Vec::new();
        loop {
            let mut size_line = String::new();
            if self.reader.read_line(&mut size_line)? == 0 {
                return Err(bad("truncated chunked body"));
            }
            // Chunk extensions (";...") are legal; this daemon never sends
            // them but tolerating them costs one split.
            let size_text = size_line.trim_end();
            let size_text = size_text.split(';').next().unwrap_or(size_text);
            let size =
                usize::from_str_radix(size_text, 16).map_err(|_| bad("malformed chunk size"))?;
            if size == 0 {
                // Trailer section: read lines through the blank terminator.
                loop {
                    let mut trailer = String::new();
                    if self.reader.read_line(&mut trailer)? == 0 {
                        return Err(bad("truncated chunked trailer"));
                    }
                    if trailer == "\r\n" || trailer == "\n" {
                        return Ok(body);
                    }
                }
            }
            let start = body.len();
            body.resize(start + size, 0);
            io::Read::read_exact(&mut self.reader, &mut body[start..])?;
            let mut crlf = [0u8; 2];
            io::Read::read_exact(&mut self.reader, &mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(bad("chunk not CRLF-terminated"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_post_with_content_length() {
        let r = parse("POST /v1/solve HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn header_lookup_is_case_insensitive_and_close_detected() {
        let r = parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(r.wants_close());
        assert_eq!(r.header("CONNECTION"), Some("Close"));
    }

    #[test]
    fn eof_before_request_is_clean() {
        assert!(matches!(parse(""), Err(ReadError::Eof)));
    }

    #[test]
    fn malformed_requests_are_4xx() {
        assert!(matches!(parse("NOPE\r\n\r\n"), Err(ReadError::Bad(400, _))));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(ReadError::Bad(505, _))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Bad(400, _))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ReadError::Bad(400, _))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::Bad(411, _))
        ));
    }

    #[test]
    fn oversized_inputs_are_rejected() {
        let huge_header = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge_header), Err(ReadError::Bad(431, _))));
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&huge_body), Err(ReadError::Bad(413, _))));
    }

    #[test]
    fn response_writes_headers_and_body() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::ok("{}".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut out = Vec::new();
        write_response(
            &mut out,
            &Response {
                status: 404,
                body: String::new(),
            },
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn tolerates_leading_blank_lines() {
        let r = parse("\r\n\r\nGET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
    }

    // --- duplicate Content-Length (request-smuggling hygiene) ---
    //
    // Parse twins: the bad variants differ from the good one only in the
    // duplicated/conflicting header, so a regression reintroducing
    // first-header-wins parsing flips exactly these assertions.

    #[test]
    fn single_content_length_is_accepted_twin() {
        let r = parse("POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        // Conflicting values: classic smuggling shape.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nokok"),
            Err(ReadError::Bad(400, "duplicate Content-Length"))
        ));
        // Agreeing values are rejected too: the request is still ambiguous
        // to any intermediary that picks a different one.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok"),
            Err(ReadError::Bad(400, "duplicate Content-Length"))
        ));
        // Comma-folded duplicate in a single field value is not a number.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 2, 2\r\n\r\nok"),
            Err(ReadError::Bad(400, "invalid Content-Length"))
        ));
    }

    #[test]
    fn incremental_parser_rejects_duplicate_content_length() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nokok";
        assert!(matches!(
            parse_request(raw),
            Parse::Bad(400, "duplicate Content-Length")
        ));
    }

    // --- incremental parser ---

    #[test]
    fn incremental_parser_waits_for_full_head_and_body() {
        let full = b"POST /v1/solve HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        // Every strict prefix is Partial; the full buffer parses.
        for cut in 0..full.len() {
            assert!(
                matches!(parse_request(&full[..cut]), Parse::Partial),
                "prefix of {cut} bytes must be partial"
            );
        }
        let Parse::Complete(request, consumed) = parse_request(full) else {
            panic!("full request must parse");
        };
        assert_eq!(request.method, "POST");
        assert_eq!(request.body, b"{\"a\":1}");
        assert_eq!(consumed, full.len());
    }

    #[test]
    fn incremental_parser_reports_consumed_bytes_for_pipelining() {
        let mut buf = b"GET /healthz HTTP/1.1\r\n\r\n".to_vec();
        buf.extend_from_slice(b"GET /metrics HTTP/1.1\r\n\r\n");
        let Parse::Complete(first, consumed) = parse_request(&buf) else {
            panic!("first pipelined request must parse");
        };
        assert_eq!(first.path, "/healthz");
        let Parse::Complete(second, consumed2) = parse_request(&buf[consumed..]) else {
            panic!("second pipelined request must parse");
        };
        assert_eq!(second.path, "/metrics");
        assert_eq!(consumed + consumed2, buf.len());
    }

    #[test]
    fn incremental_parser_tolerates_leading_blanks_and_bare_lf() {
        let Parse::Complete(r, consumed) = parse_request(b"\r\n\nGET / HTTP/1.1\n\n") else {
            panic!("must parse");
        };
        assert_eq!(r.method, "GET");
        assert_eq!(consumed, b"\r\n\nGET / HTTP/1.1\n\n".len());
    }

    #[test]
    fn incremental_parser_enforces_limits() {
        let huge_head = format!("GET / HTTP/1.1\r\nX-Pad: {}", "y".repeat(MAX_HEAD_BYTES));
        assert!(matches!(
            parse_request(huge_head.as_bytes()),
            Parse::Bad(431, _)
        ));
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_request(huge_body.as_bytes()),
            Parse::Bad(413, _)
        ));
        assert!(matches!(parse_request(b"NOPE\r\n\r\n"), Parse::Bad(400, _)));
    }

    // --- idle-read classification (keep-alive teardown portability) ---

    #[test]
    fn idle_read_errors_cover_both_platform_kinds() {
        // `set_read_timeout` expiry: EAGAIN/`WouldBlock` on Unix,
        // `TimedOut` on Windows. Both must be classified as idle, or
        // keep-alive teardown turns into a hard error on one family.
        let wouldblock = io::Error::new(io::ErrorKind::WouldBlock, "EAGAIN");
        let timedout = io::Error::new(io::ErrorKind::TimedOut, "read timeout");
        assert!(is_idle_read_error(&wouldblock));
        assert!(is_idle_read_error(&timedout));
        // Real transport failures stay fatal.
        let reset = io::Error::new(io::ErrorKind::ConnectionReset, "RST");
        assert!(!is_idle_read_error(&reset));
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "closed");
        assert!(!is_idle_read_error(&eof));
    }

    // --- chunked transfer framing (stream-updates responses) ---

    #[test]
    fn chunk_frames_use_hex_lengths_and_crlf() {
        assert_eq!(chunk_frame("hello\n"), "6\r\nhello\n\r\n");
        // 26 bytes → 0x1a: the length really is hex.
        assert_eq!(
            chunk_frame("abcdefghijklmnopqrstuvwxyz"),
            "1a\r\nabcdefghijklmnopqrstuvwxyz\r\n"
        );
        assert_eq!(CHUNKED_TERMINATOR, "0\r\n\r\n");
        let head = chunked_head(200, true);
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("Transfer-Encoding: chunked\r\n"));
        assert!(head.contains("Content-Type: application/x-ndjson\r\n"));
        assert!(!head.contains("Content-Length"));
    }

    #[test]
    fn client_reads_chunked_responses() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Drain the request head (the client always sends one request).
            let mut buf = [0u8; 1024];
            let _ = io::Read::read(&mut stream, &mut buf).unwrap();
            let payload = format!(
                "{}{}{}{}",
                chunked_head(200, true),
                chunk_frame("{\"seq\":0}\n"),
                chunk_frame("{\"seq\":1}\n"),
                CHUNKED_TERMINATOR
            );
            stream.write_all(payload.as_bytes()).unwrap();
        });
        let mut client = Client::connect(addr).unwrap();
        let (status, body) = client.request("GET", "/v1/stream/1/updates", "").unwrap();
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"seq\":0}\n{\"seq\":1}\n");
    }

    #[test]
    fn response_head_matches_write_response() {
        let mut out = Vec::new();
        let response = Response::ok("{\"x\":1}".into());
        write_response(&mut out, &response, true).unwrap();
        let head = response_head(200, response.body.len(), true);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            format!("{head}{}", response.body)
        );
    }
}
