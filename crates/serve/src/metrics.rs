//! Request telemetry: per-endpoint counts and latency percentiles.
//!
//! Each handled request records its endpoint label, status class, and
//! service time. Latencies are kept in a bounded per-endpoint ring (newest
//! samples win) and summarized with `memsense-stats` **nearest-rank**
//! percentiles on demand, so `/metrics` costs are paid by the scraper, not
//! the request path. Nearest-rank matters for small sample counts: a p99
//! over fewer than 100 samples clamps to the maximum observed latency
//! instead of interpolating to a value no request ever saw (or, in the
//! classic off-by-one formulation, indexing past the sorted sample).

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use memsense_experiments::json::Json;
use memsense_stats::descriptive::{mean, percentile_nearest_rank};

use crate::cache::CacheStats;
use crate::flight::FlightSnapshot;
use crate::streams::StreamSnapshot;

/// Per-endpoint latency samples retained for percentile estimates.
const MAX_SAMPLES_PER_ENDPOINT: usize = 4096;

#[derive(Debug, Default)]
struct EndpointStats {
    requests: u64,
    errors: u64,
    /// Service times in milliseconds; bounded ring, `next` is the write head.
    samples: Vec<f64>,
    next: usize,
}

/// Thread-safe registry of per-endpoint request telemetry.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: Mutex<BTreeMap<String, EndpointStats>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The registry map. A poisoned lock means a recording thread panicked
    /// mid-update; the counters are no longer trustworthy, so fail loud.
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, EndpointStats>> {
        // memsense-lint: allow(no-panic-in-lib, reactor-no-blocking-call) — poisoning implies corrupted telemetry (fail loud); holders only touch in-memory counters, never a solve or I/O
        self.endpoints.lock().expect("metrics lock poisoned")
    }

    /// Records one handled request for `endpoint` with the given response
    /// `status` and service time.
    pub fn record(&self, endpoint: &str, status: u16, elapsed: Duration) {
        let mut endpoints = self.lock();
        let stats = endpoints.entry(endpoint.to_string()).or_default();
        stats.requests += 1;
        if status >= 400 {
            stats.errors += 1;
        }
        let ms = elapsed.as_secs_f64() * 1e3;
        if stats.samples.len() < MAX_SAMPLES_PER_ENDPOINT {
            stats.samples.push(ms);
        } else {
            stats.samples[stats.next] = ms;
            stats.next = (stats.next + 1) % MAX_SAMPLES_PER_ENDPOINT;
        }
    }

    /// Total requests recorded across all endpoints.
    pub fn total_requests(&self) -> u64 {
        let endpoints = self.lock();
        endpoints.values().map(|s| s.requests).sum()
    }

    /// Renders the registry (plus `cache`, single-flight, and stream-session
    /// counters) as the `/metrics` body.
    pub fn to_json(
        &self,
        cache: CacheStats,
        flight: FlightSnapshot,
        stream: StreamSnapshot,
    ) -> Json {
        let endpoints = self.lock();
        let per_endpoint: Vec<Json> = endpoints
            .iter()
            .map(|(name, stats)| {
                let mut fields = vec![
                    ("endpoint", Json::str(name)),
                    ("requests", Json::num(stats.requests as f64)),
                    ("errors", Json::num(stats.errors as f64)),
                ];
                if !stats.samples.is_empty() {
                    let quantile = |p: f64| {
                        // memsense-lint: allow(no-panic-in-lib) — guarded by the is_empty check above; percentile/mean only fail on empty input
                        percentile_nearest_rank(&stats.samples, p).expect("non-empty samples")
                    };
                    fields.push((
                        "latency_ms_mean",
                        // memsense-lint: allow(no-panic-in-lib) — same non-empty guard
                        Json::num(round3(mean(&stats.samples).expect("non-empty samples"))),
                    ));
                    fields.push(("latency_ms_p50", Json::num(round3(quantile(50.0)))));
                    fields.push(("latency_ms_p90", Json::num(round3(quantile(90.0)))));
                    fields.push(("latency_ms_p99", Json::num(round3(quantile(99.0)))));
                }
                Json::obj(fields)
            })
            .collect();
        Json::obj(vec![
            (
                "requests_total",
                Json::num(endpoints.values().map(|s| s.requests).sum::<u64>() as f64),
            ),
            ("endpoints", Json::Arr(per_endpoint)),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::num(cache.hits as f64)),
                    ("misses", Json::num(cache.misses as f64)),
                    ("evictions", Json::num(cache.evictions as f64)),
                    ("rejected", Json::num(cache.rejected as f64)),
                    ("entries", Json::num(cache.entries as f64)),
                    ("bytes", Json::num(cache.bytes as f64)),
                ]),
            ),
            (
                "single_flight",
                Json::obj(vec![
                    ("in_flight", Json::num(flight.in_flight as f64)),
                    ("coalesced", Json::num(flight.coalesced as f64)),
                ]),
            ),
            (
                "stream",
                Json::obj(vec![
                    ("sessions", Json::num(stream.sessions as f64)),
                    ("deltas", Json::num(stream.deltas as f64)),
                    ("cells_resolved", Json::num(stream.cells_resolved as f64)),
                    ("cells_skipped", Json::num(stream.cells_skipped as f64)),
                ]),
            ),
        ])
    }
}

/// Rounds to 3 decimals: enough for millisecond latencies, and keeps the
/// JSON bodies free of 17-digit float noise.
fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_errors_and_percentiles() {
        let metrics = Metrics::new();
        for i in 0..10 {
            metrics.record("/v1/solve", 200, Duration::from_millis(i + 1));
        }
        metrics.record("/v1/solve", 400, Duration::from_millis(100));
        metrics.record("/healthz", 200, Duration::from_micros(50));
        assert_eq!(metrics.total_requests(), 12);

        let json = metrics.to_json(
            CacheStats::default(),
            FlightSnapshot::default(),
            StreamSnapshot::default(),
        );
        assert_eq!(json.get("requests_total").and_then(Json::as_u64), Some(12));
        let endpoints = json.get("endpoints").and_then(Json::as_arr).unwrap();
        assert_eq!(endpoints.len(), 2);
        let solve = endpoints
            .iter()
            .find(|e| e.get("endpoint").and_then(Json::as_str) == Some("/v1/solve"))
            .unwrap();
        assert_eq!(solve.get("requests").and_then(Json::as_u64), Some(11));
        assert_eq!(solve.get("errors").and_then(Json::as_u64), Some(1));
        let p99 = solve.get("latency_ms_p99").and_then(Json::as_f64).unwrap();
        let p50 = solve.get("latency_ms_p50").and_then(Json::as_f64).unwrap();
        assert!(p99 >= p50);
        assert!(p99 <= 100.0 + 1e-9);
    }

    #[test]
    fn sample_ring_is_bounded() {
        let metrics = Metrics::new();
        for _ in 0..(MAX_SAMPLES_PER_ENDPOINT + 100) {
            metrics.record("/v1/sweep/bandwidth", 200, Duration::from_millis(1));
        }
        let endpoints = metrics.endpoints.lock().unwrap();
        let stats = endpoints.get("/v1/sweep/bandwidth").unwrap();
        assert_eq!(stats.samples.len(), MAX_SAMPLES_PER_ENDPOINT);
        assert_eq!(stats.requests, (MAX_SAMPLES_PER_ENDPOINT + 100) as u64);
    }

    #[test]
    fn metrics_json_is_byte_stable_and_endpoint_sorted() {
        // Pins the no-unordered-output audit: the registry is a BTreeMap, so
        // the /metrics body must not depend on recording order and must list
        // endpoints in sorted order.
        let record_all = |order: &[&str]| {
            let metrics = Metrics::new();
            for name in order {
                metrics.record(name, 200, Duration::from_millis(2));
            }
            metrics
                .to_json(
                    CacheStats::default(),
                    FlightSnapshot::default(),
                    StreamSnapshot::default(),
                )
                .canonical()
        };
        let a = record_all(&["/v1/solve", "/healthz", "/v1/sweep/bandwidth"]);
        let b = record_all(&["/v1/sweep/bandwidth", "/v1/solve", "/healthz"]);
        assert_eq!(a, b, "insertion order must not leak into the body");

        let json = Json::parse(&a).unwrap();
        let names: Vec<String> = json
            .get("endpoints")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|e| {
                e.get("endpoint")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "endpoints are emitted in sorted order");
    }

    #[test]
    fn cache_stats_are_embedded() {
        let metrics = Metrics::new();
        let json = metrics.to_json(
            CacheStats {
                hits: 3,
                misses: 5,
                evictions: 1,
                rejected: 7,
                entries: 2,
                bytes: 1234,
            },
            FlightSnapshot {
                in_flight: 2,
                coalesced: 9,
            },
            StreamSnapshot {
                sessions: 4,
                deltas: 17,
                cells_resolved: 210,
                cells_skipped: 630,
            },
        );
        let cache = json.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(3));
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(5));
        assert_eq!(cache.get("rejected").and_then(Json::as_u64), Some(7));
        assert_eq!(cache.get("bytes").and_then(Json::as_u64), Some(1234));
        let flight = json.get("single_flight").unwrap();
        assert_eq!(flight.get("in_flight").and_then(Json::as_u64), Some(2));
        assert_eq!(flight.get("coalesced").and_then(Json::as_u64), Some(9));
        let stream = json.get("stream").unwrap();
        assert_eq!(stream.get("sessions").and_then(Json::as_u64), Some(4));
        assert_eq!(stream.get("deltas").and_then(Json::as_u64), Some(17));
        assert_eq!(
            stream.get("cells_resolved").and_then(Json::as_u64),
            Some(210)
        );
        assert_eq!(
            stream.get("cells_skipped").and_then(Json::as_u64),
            Some(630)
        );
    }

    #[test]
    fn small_sample_p99_is_the_maximum_latency() {
        // The small-n off-by-one regression: with fewer than 100 samples the
        // p99 must clamp to the maximum observed latency, never interpolate
        // below it or index past the sorted ring.
        let metrics = Metrics::new();
        for ms in [1u64, 2, 3] {
            metrics.record("/v1/solve", 200, Duration::from_millis(ms));
        }
        let json = metrics.to_json(
            CacheStats::default(),
            FlightSnapshot::default(),
            StreamSnapshot::default(),
        );
        let endpoints = json.get("endpoints").and_then(Json::as_arr).unwrap();
        let solve = &endpoints[0];
        let p99 = solve.get("latency_ms_p99").and_then(Json::as_f64).unwrap();
        assert!(
            (p99 - 3.0).abs() < 1e-9,
            "p99 of [1,2,3] ms is 3 ms, got {p99}"
        );
    }

    #[test]
    fn plan_endpoint_percentiles_clamp_at_small_n() {
        // `/v1/plan` rides the same registry as every other endpoint; pin
        // that its percentiles obey the small-n nearest-rank clamp too (a
        // plan solve is the slowest endpoint, so an interpolated p99 below
        // the observed maximum would be the most misleading here).
        let metrics = Metrics::new();
        for ms in [40u64, 55] {
            metrics.record("/v1/plan", 200, Duration::from_millis(ms));
        }
        let json = metrics.to_json(
            CacheStats::default(),
            FlightSnapshot::default(),
            StreamSnapshot::default(),
        );
        let endpoints = json.get("endpoints").and_then(Json::as_arr).unwrap();
        let plan = endpoints
            .iter()
            .find(|e| e.get("endpoint").and_then(Json::as_str) == Some("/v1/plan"))
            .unwrap();
        assert_eq!(plan.get("requests").and_then(Json::as_u64), Some(2));
        for key in ["latency_ms_p90", "latency_ms_p99"] {
            let v = plan.get(key).and_then(Json::as_f64).unwrap();
            assert!(
                (v - 55.0).abs() < 1e-9,
                "{key} of [40,55] ms must clamp to the 55 ms maximum, got {v}"
            );
        }
    }

    #[test]
    fn stream_endpoint_percentiles_clamp_at_small_n() {
        // The stream endpoints are new labels in the same registry; a fresh
        // session typically records only a handful of open/delta/updates
        // requests, so small-n clamping is their *normal* operating regime,
        // not a corner case. Pin the nearest-rank clamp for all three.
        let metrics = Metrics::new();
        for (label, ms) in [
            ("/v1/stream/open", [12u64, 30]),
            ("/v1/stream/delta", [3, 8]),
            ("/v1/stream/updates", [1, 2]),
        ] {
            for m in ms {
                metrics.record(label, 200, Duration::from_millis(m));
            }
        }
        let json = metrics.to_json(
            CacheStats::default(),
            FlightSnapshot::default(),
            StreamSnapshot::default(),
        );
        let endpoints = json.get("endpoints").and_then(Json::as_arr).unwrap();
        for (label, max_ms) in [
            ("/v1/stream/open", 30.0),
            ("/v1/stream/delta", 8.0),
            ("/v1/stream/updates", 2.0),
        ] {
            let entry = endpoints
                .iter()
                .find(|e| e.get("endpoint").and_then(Json::as_str) == Some(label))
                .unwrap();
            assert_eq!(entry.get("requests").and_then(Json::as_u64), Some(2));
            for key in ["latency_ms_p90", "latency_ms_p99"] {
                let v = entry.get(key).and_then(Json::as_f64).unwrap();
                assert!(
                    (v - max_ms).abs() < 1e-9,
                    "{label} {key} must clamp to the {max_ms} ms maximum at n=2, got {v}"
                );
            }
        }
    }
}
