//! Serve performance baseline: record, persist, and regression-check.
//!
//! The epoll-reactor overhaul is a throughput claim, and claims need gates.
//! This module is the serve-layer twin of
//! `memsense_experiments::simbench`: [`measure`] drives the built-in load
//! generator ([`crate::bench`]) against a dedicated in-process server at a
//! fixed concurrency, [`to_json`]/[`from_json`] persist the result as the
//! canonical `BENCH_serve.json`, and [`compare`] gates a fresh measurement
//! against the recorded baseline — throughput may not drop below
//! `baseline / (1 + tolerance)`, and the warm p50/p99 latencies may not
//! exceed `baseline × (1 + tolerance)`. The CI `serve-perf` job fails on
//! either regression.
//!
//! Latency percentiles are **nearest-rank** (`memsense-stats`), so short CI
//! runs with few samples gate on latencies a request actually observed.

use std::io;
use std::time::Duration;

use memsense_experiments::json::Json;
use memsense_experiments::render::{f, Table};

use crate::bench::{self, BenchConfig};
use crate::server::{Server, ServerConfig};

/// Schema tag written into `BENCH_serve.json`.
pub const SCHEMA: &str = "memsense-serve-baseline/v1";

/// Default regression tolerance. Serve walls mix scheduler, TCP, and
/// allocator noise on small CI machines, so the default is looser than the
/// sim gate: 1.0 allows down to half the recorded throughput (and up to
/// twice the recorded latency) before failing.
pub const DEFAULT_TOLERANCE: f64 = 1.0;

/// Default concurrent connections for recording.
pub const DEFAULT_CONNECTIONS: usize = 512;

/// Default warm-phase duration for recording.
pub const DEFAULT_DURATION: Duration = Duration::from_secs(3);

/// Default endpoint to hammer (the dense bandwidth sweep: a heavy solve,
/// then pure cache traffic).
pub const DEFAULT_PATH: &str = "/v1/sweep/bandwidth";

/// Errors from parsing a recorded baseline.
#[derive(Debug)]
pub enum BaselineError {
    /// `BENCH_serve.json` could not be parsed against the schema.
    Parse(String),
}

impl core::fmt::Display for BaselineError {
    fn fmt(&self, fmt: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BaselineError::Parse(m) => write!(fmt, "invalid serve baseline file: {m}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// A recorded serve-layer performance baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBaseline {
    /// Concurrent keep-alive connections during measurement.
    pub connections: usize,
    /// Warm-phase duration, seconds (as configured, not as elapsed).
    pub duration_s: f64,
    /// Endpoint exercised.
    pub path: String,
    /// Warm requests completed.
    pub requests: u64,
    /// Sustained warm throughput, requests per second.
    pub throughput_rps: f64,
    /// Warm median latency, milliseconds (nearest-rank).
    pub warm_p50_ms: f64,
    /// Warm 99th-percentile latency, milliseconds (nearest-rank).
    pub warm_p99_ms: f64,
}

/// Measures a fresh baseline: starts a dedicated in-process server sized
/// for the load (connection cap = `connections` + slack, so the generator
/// itself is never 503'd) and runs the warm-phase load generator against it.
///
/// # Errors
///
/// Propagates server start-up and load-generator failures.
pub fn measure(connections: usize, duration: Duration, path: &str) -> io::Result<ServeBaseline> {
    let connections = connections.max(1);
    let mut server = Server::start(&ServerConfig {
        max_connections: connections + 64,
        ..ServerConfig::default()
    })?;
    let result = bench::run(&BenchConfig {
        addr: Some(server.addr().to_string()),
        connections,
        duration,
        path: path.to_string(),
        ..BenchConfig::default()
    });
    server.stop();
    server.join();
    let report = result?;
    Ok(ServeBaseline {
        connections,
        duration_s: duration.as_secs_f64(),
        path: report.path,
        requests: report.requests,
        throughput_rps: report.throughput_rps,
        warm_p50_ms: report.warm_p50_ms,
        warm_p99_ms: report.warm_p99_ms,
    })
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

/// Serializes a baseline to the canonical `BENCH_serve.json` form.
pub fn to_json(baseline: &ServeBaseline) -> String {
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        ("connections", Json::num(baseline.connections as f64)),
        ("duration_s", Json::num(round3(baseline.duration_s))),
        ("path", Json::str(&baseline.path)),
        ("requests", Json::num(baseline.requests as f64)),
        ("throughput_rps", Json::num(round3(baseline.throughput_rps))),
        ("warm_p50_ms", Json::num(round3(baseline.warm_p50_ms))),
        ("warm_p99_ms", Json::num(round3(baseline.warm_p99_ms))),
    ])
    .to_string_pretty()
}

/// Parses a baseline from [`to_json`] output.
///
/// # Errors
///
/// Returns [`BaselineError::Parse`] on malformed JSON, a wrong schema tag,
/// or missing fields.
pub fn from_json(text: &str) -> Result<ServeBaseline, BaselineError> {
    let parse = |m: &str| BaselineError::Parse(m.to_string());
    let root = Json::parse(text).map_err(|e| BaselineError::Parse(e.to_string()))?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| parse("missing schema tag"))?;
    if schema != SCHEMA {
        return Err(BaselineError::Parse(format!(
            "schema {schema:?}, expected {SCHEMA:?}"
        )));
    }
    let num = |name: &str| {
        root.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| BaselineError::Parse(format!("missing {name}")))
    };
    Ok(ServeBaseline {
        connections: num("connections")? as usize,
        duration_s: num("duration_s")?,
        path: root
            .get("path")
            .and_then(Json::as_str)
            .ok_or_else(|| parse("missing path"))?
            .to_string(),
        requests: num("requests")? as u64,
        throughput_rps: num("throughput_rps")?,
        warm_p50_ms: num("warm_p50_ms")?,
        warm_p99_ms: num("warm_p99_ms")?,
    })
}

/// One gated metric of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Metric name.
    pub name: &'static str,
    /// Recorded value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// `true` when larger is better (throughput); `false` for latencies.
    pub higher_is_better: bool,
    /// Whether this metric is within tolerance.
    pub ok: bool,
}

/// Result of gating a fresh measurement against a recorded baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Tolerance the gate applied.
    pub tolerance: f64,
    /// Gated metrics.
    pub rows: Vec<CompareRow>,
}

impl Comparison {
    /// Whether every gated metric passed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }

    /// Renders the human-readable gate table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Serve perf gate: current vs baseline, tolerance {:.0}% -> {}",
                self.tolerance * 100.0,
                if self.passed() { "PASS" } else { "FAIL" }
            ),
            &["metric", "baseline", "current", "ratio", "status"],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.to_string(),
                f(r.baseline, 3),
                f(r.current, 3),
                if r.baseline > 0.0 {
                    f(r.current / r.baseline, 2)
                } else {
                    "-".to_string()
                },
                if r.ok { "ok" } else { "REGRESSED" }.to_string(),
            ]);
        }
        t
    }

    /// The comparison as a [`Json`] value (the CI report artifact).
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str("memsense-serve-baseline-check/v1")),
            ("tolerance", Json::num(self.tolerance)),
            ("passed", Json::Bool(self.passed())),
            (
                "metrics",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("name", Json::str(r.name)),
                                ("baseline", Json::num(round3(r.baseline))),
                                ("current", Json::num(round3(r.current))),
                                ("higher_is_better", Json::Bool(r.higher_is_better)),
                                ("ok", Json::Bool(r.ok)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Gates `current` against `baseline`: throughput must stay at or above
/// `baseline / (1 + tolerance)`, and each gated latency at or below
/// `baseline × (1 + tolerance)`.
pub fn compare(current: &ServeBaseline, baseline: &ServeBaseline, tolerance: f64) -> Comparison {
    let limit = 1.0 + tolerance;
    let row = |name: &'static str, base: f64, cur: f64, higher_is_better: bool| CompareRow {
        name,
        baseline: base,
        current: cur,
        higher_is_better,
        ok: if higher_is_better {
            cur >= base / limit
        } else {
            cur <= base * limit
        },
    };
    Comparison {
        tolerance,
        rows: vec![
            row(
                "throughput_rps",
                baseline.throughput_rps,
                current.throughput_rps,
                true,
            ),
            row(
                "warm_p50_ms",
                baseline.warm_p50_ms,
                current.warm_p50_ms,
                false,
            ),
            row(
                "warm_p99_ms",
                baseline.warm_p99_ms,
                current.warm_p99_ms,
                false,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeBaseline {
        ServeBaseline {
            connections: 512,
            duration_s: 3.0,
            path: "/v1/sweep/bandwidth".to_string(),
            requests: 60_000,
            throughput_rps: 20_000.0,
            warm_p50_ms: 10.0,
            warm_p99_ms: 50.0,
        }
    }

    #[test]
    fn json_round_trips() {
        let baseline = sample();
        let text = to_json(&baseline);
        let parsed = from_json(&text).expect("round trip");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_missing_fields() {
        assert!(from_json("not json").is_err());
        assert!(from_json(r#"{"schema":"something-else/v1"}"#).is_err());
        let missing = format!(r#"{{"schema":{:?}}}"#, SCHEMA);
        assert!(from_json(&missing).is_err());
    }

    #[test]
    fn gate_is_directional() {
        let baseline = sample();
        // Faster and lower-latency than recorded: passes trivially.
        let mut better = baseline.clone();
        better.throughput_rps *= 3.0;
        better.warm_p50_ms /= 3.0;
        better.warm_p99_ms /= 3.0;
        assert!(compare(&better, &baseline, 0.5).passed());

        // Throughput collapse fails even though latencies are fine.
        let mut slow = baseline.clone();
        slow.throughput_rps = baseline.throughput_rps / 4.0;
        let gate = compare(&slow, &baseline, 0.5);
        assert!(!gate.passed());
        assert!(!gate.rows[0].ok);
        assert!(gate.rows[1].ok && gate.rows[2].ok);

        // Latency blow-up fails even though throughput is fine.
        let mut laggy = baseline.clone();
        laggy.warm_p99_ms = baseline.warm_p99_ms * 4.0;
        let gate = compare(&laggy, &baseline, 0.5);
        assert!(!gate.passed());
        assert!(!gate.rows[2].ok);

        // Within tolerance on both sides passes.
        let mut near = baseline.clone();
        near.throughput_rps = baseline.throughput_rps / 1.4;
        near.warm_p99_ms = baseline.warm_p99_ms * 1.4;
        assert!(compare(&near, &baseline, 0.5).passed());
    }
}
