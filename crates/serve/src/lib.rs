//! `memsense-serve` — the calibrated model as a service.
//!
//! The ROADMAP's north star is a system that answers memory-subsystem
//! what-if queries for heavy interactive traffic; hyperscalers ask exactly
//! these latency/bandwidth-sensitivity and capacity-planning questions as an
//! online service over calibrated models. The Eq. 1–5 machinery in
//! `memsense-model` solves in microseconds, so this crate puts it behind a
//! dependency-free HTTP/1.1 daemon:
//!
//! | endpoint                  | answers                                        |
//! |---------------------------|------------------------------------------------|
//! | `POST /v1/solve`          | fixed-point CPI solve with regime + CPI stack  |
//! | `POST /v1/sweep/bandwidth`| Fig. 8-style per-core bandwidth sweep          |
//! | `POST /v1/sweep/latency`  | Fig. 10-style compulsory-latency sweep         |
//! | `POST /v1/equivalence`    | Tab. 7 latency ⇄ bandwidth equivalence         |
//! | `POST /v1/capacity`       | capacity planning over candidate memory configs|
//! | `POST /v1/plan`           | fleet-scale plan: design-space search vs SLAs  |
//! | `POST /v1/stream/open`    | open an incremental sweep session              |
//! | `POST /v1/stream/{id}/delta` | submit batched grid deltas to a session     |
//! | `GET /v1/stream/{id}/updates`| drain per-batch updates (chunked NDJSON)    |
//! | `GET /healthz`            | liveness                                       |
//! | `GET /metrics`            | request counts, latency percentiles, cache     |
//! | `POST /v1/admin/shutdown` | clean shutdown                                 |
//!
//! Architecture (all `std`; the only non-`std` code is the raw-syscall
//! `memsense-epoll` workspace crate):
//!
//! * [`http`] — a minimal, limit-enforcing HTTP/1.1 codec with two front
//!   ends over one head parser: a blocking reader (bench client, tests) and
//!   an incremental parser the reactor drives over accumulating buffers
//!   (partial heads/bodies simply wait for more bytes).
//! * [`server`] — a nonblocking epoll reactor: one thread owns every
//!   connection as an edge-triggered state machine, and model solves run on
//!   a small worker pool so the reactor never blocks. Model fan-out inside
//!   a request (sweeps over many workloads, capacity grids) still goes
//!   through `memsense_experiments::executor`, so `MEMSENSE_THREADS` bounds
//!   model parallelism process-wide no matter how many connections are in
//!   flight.
//! * [`flight`] — single-flight coalescing: N concurrent identical requests
//!   trigger exactly one model solve (and exactly one cache miss); the
//!   joiners share the lead's response behind an `Arc<str>`.
//! * [`api`] — JSON request/response conversion over the model, via the
//!   shared `memsense_experiments::json` module (escaping-correct, canonical
//!   floats).
//! * [`cache`] — a sharded, content-addressed in-memory result cache:
//!   canonicalized request (method + path + key-sorted body) → response
//!   body behind `Arc<str>`, LRU per shard under a per-shard byte budget
//!   (keys, bodies, and per-entry overhead all charged); repeated sweep
//!   queries are served without re-solving and return byte-identical
//!   bodies.
//! * [`metrics`] — per-endpoint request counts and nearest-rank latency
//!   percentiles (via `memsense-stats`), plus cache and single-flight
//!   counters.
//! * [`streams`] — the sessionful layer over `memsense-stream`: a registry
//!   of incremental sweep sessions (capped, idle-evicted). Stream endpoints
//!   are the one route family that *bypasses* the result cache and
//!   single-flight table — their responses depend on mutable session state,
//!   not just request bytes (see `server::bypasses_result_cache`).
//! * [`bench`] — a built-in load generator (`memsense-serve bench`) that
//!   drives the server and reports throughput, latency percentiles, and the
//!   cache-hit speedup, so the service layer is self-benchmarkable. The
//!   recorded-baseline twin lives in [`baseline`] (`BENCH_serve.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod baseline;
pub mod bench;
pub mod cache;
pub mod flight;
pub mod http;
pub mod metrics;
pub mod server;
pub mod streams;
