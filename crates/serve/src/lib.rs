//! `memsense-serve` — the calibrated model as a service.
//!
//! The ROADMAP's north star is a system that answers memory-subsystem
//! what-if queries for heavy interactive traffic; hyperscalers ask exactly
//! these latency/bandwidth-sensitivity and capacity-planning questions as an
//! online service over calibrated models. The Eq. 1–5 machinery in
//! `memsense-model` solves in microseconds, so this crate puts it behind a
//! dependency-free HTTP/1.1 daemon:
//!
//! | endpoint                  | answers                                        |
//! |---------------------------|------------------------------------------------|
//! | `POST /v1/solve`          | fixed-point CPI solve with regime + CPI stack  |
//! | `POST /v1/sweep/bandwidth`| Fig. 8-style per-core bandwidth sweep          |
//! | `POST /v1/sweep/latency`  | Fig. 10-style compulsory-latency sweep         |
//! | `POST /v1/equivalence`    | Tab. 7 latency ⇄ bandwidth equivalence         |
//! | `POST /v1/capacity`       | capacity planning over candidate memory configs|
//! | `GET /healthz`            | liveness                                       |
//! | `GET /metrics`            | request counts, latency percentiles, cache     |
//! | `POST /v1/admin/shutdown` | clean shutdown                                 |
//!
//! Architecture (all `std`, no external crates):
//!
//! * [`http`] — a minimal, limit-enforcing HTTP/1.1 request/response codec
//!   over `TcpStream` with keep-alive.
//! * [`server`] — `TcpListener` accept loop spawning one worker thread per
//!   connection (bounded by a connection cap); connection threads only do
//!   I/O, while model fan-out inside a request (sweeps over many workloads,
//!   capacity grids) goes through the worker pool of
//!   `memsense_experiments::executor`, so `MEMSENSE_THREADS` bounds total
//!   model parallelism process-wide no matter how many connections are in
//!   flight.
//! * [`api`] — JSON request/response conversion over the model, via the
//!   shared `memsense_experiments::json` module (escaping-correct, canonical
//!   floats).
//! * [`cache`] — a content-addressed in-memory result cache: canonicalized
//!   request (method + path + key-sorted body) → response body, LRU with a
//!   byte-budget; repeated sweep queries are served without re-solving and
//!   return byte-identical bodies.
//! * [`metrics`] — per-endpoint request counts and latency percentiles
//!   (via `memsense-stats`), plus cache hit/miss/eviction counters.
//! * [`bench`] — a built-in load generator (`memsense-serve bench`) that
//!   drives the server and reports throughput, latency percentiles, and the
//!   cache-hit speedup, so the service layer is self-benchmarkable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod bench;
pub mod cache;
pub mod http;
pub mod metrics;
pub mod server;
