//! Content-addressed result cache: canonicalized request → response body.
//!
//! The key is the request's canonical form (method, path, and the body's
//! key-sorted, float-canonicalized JSON — see
//! `memsense_experiments::json::Json::canonical`), so two requests that
//! differ only in whitespace, key order, or `-0.0` vs `0.0` hit the same
//! entry. Values are complete response bodies behind `Arc<str>`; a hit bumps
//! a refcount instead of copying, and the returned body is byte-identical to
//! the originally computed response.
//!
//! The cache is **sharded**: keys are FNV-1a-hashed onto
//! [`DEFAULT_SHARDS`] independent shards, each with its own mutex, LRU
//! index, and an equal slice of the byte budget. Concurrent lookups of
//! different keys contend only 1-in-N of the time, which removes the
//! single-mutex serialization the thread-per-connection server suffered
//! under load (every warm request used to queue on one lock while holding a
//! multi-kilobyte body copy).
//!
//! Eviction is LRU per shard under the shard's byte budget: each entry is
//! charged its key, body, **and a fixed [`ENTRY_OVERHEAD`]** approximating
//! the map/index bookkeeping, so thousands of tiny entries cannot blow past
//! the budget on unaccounted metadata. An insert whose charge exceeds the
//! shard budget is rejected *up front* — it must never first evict every
//! resident entry only to discover it still does not fit. Recency is a
//! monotonically increasing per-shard sequence number with a
//! `BTreeMap<seq, key>` index, so get/insert/evict are all `O(log n)`.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Default byte budget (64 MiB) — thousands of sweep responses.
pub const DEFAULT_BUDGET_BYTES: usize = 64 * 1024 * 1024;

/// Default shard count. Sixteen mutexes keep contention negligible for a
/// reactor plus a small worker pool while costing only a few hundred bytes.
pub const DEFAULT_SHARDS: usize = 16;

/// Bytes charged per entry on top of key + body length: approximates the
/// `Entry` struct, the hash-map node, the recency-index node, and the two
/// `String`/`Arc` headers. Without this, byte accounting undercounts real
/// memory by ~100 bytes per entry, which a flood of tiny entries turns into
/// unbounded growth.
pub const ENTRY_OVERHEAD: usize = 128;

/// Point-in-time cache counters, for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a stored body.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Inserts rejected up front because the charge exceeded a shard budget.
    pub rejected: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Bytes currently charged (keys + bodies + per-entry overhead).
    pub bytes: usize,
}

#[derive(Debug)]
struct Entry {
    body: Arc<str>,
    seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    /// Recency index: sequence number → key. Oldest first.
    order: BTreeMap<u64, String>,
    next_seq: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

#[derive(Debug)]
struct Shard {
    inner: Mutex<Inner>,
    budget: usize,
}

/// A thread-safe sharded LRU response cache with a byte budget.
#[derive(Debug)]
pub struct ResultCache {
    shards: Box<[Shard]>,
}

/// FNV-1a over the key bytes: deterministic across runs (unlike
/// `DefaultHasher`), so shard placement — and therefore eviction behavior —
/// is reproducible.
fn fnv1a(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What one entry costs against the byte budget.
fn charge(key: &str, body: &str) -> usize {
    key.len() + body.len() + ENTRY_OVERHEAD
}

impl ResultCache {
    /// Creates a cache bounded to `budget` bytes across [`DEFAULT_SHARDS`]
    /// shards.
    pub fn new(budget: usize) -> ResultCache {
        ResultCache::with_shards(budget, DEFAULT_SHARDS)
    }

    /// Creates a cache bounded to `budget` bytes split evenly over `shards`
    /// independent shards (clamped to at least 1). Note the per-shard budget
    /// is `budget / shards`: an entry larger than that slice is not cacheable.
    pub fn with_shards(budget: usize, shards: usize) -> ResultCache {
        let shards = shards.max(1);
        let per_shard = budget / shards;
        ResultCache {
            shards: (0..shards)
                .map(|_| Shard {
                    inner: Mutex::new(Inner::default()),
                    budget: per_shard,
                })
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &Shard {
        &self.shards[(fnv1a(key) % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        // memsense-lint: allow(reactor-no-blocking-call) — shard critical sections are bounded map ops (no solve, no I/O); contention is microseconds
        let mut inner = self.shard(key).lock();
        let seq = inner.next_seq;
        match inner.map.get_mut(key) {
            Some(entry) => {
                let old = entry.seq;
                entry.seq = seq;
                let body = Arc::clone(&entry.body);
                inner.next_seq += 1;
                inner.order.remove(&old);
                inner.order.insert(seq, key.to_string());
                inner.hits += 1;
                Some(body)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `body` under `key`, evicting LRU entries in the key's shard
    /// past its budget. Returns whether the entry was stored: an entry whose
    /// charge (key + body + [`ENTRY_OVERHEAD`]) exceeds the shard budget is
    /// rejected up front, before any eviction — never after wiping the shard.
    pub fn put(&self, key: &str, body: &Arc<str>) -> bool {
        let shard = self.shard(key);
        let cost = charge(key, body);
        // memsense-lint: allow(reactor-no-blocking-call) — bounded insert/evict critical section; see ResultCache::get
        let mut inner = shard.lock();
        if cost > shard.budget {
            inner.rejected += 1;
            return false;
        }
        if let Some(existing) = inner.map.remove(key) {
            inner.order.remove(&existing.seq);
            inner.bytes -= charge(key, &existing.body);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.map.insert(
            key.to_string(),
            Entry {
                body: Arc::clone(body),
                seq,
            },
        );
        inner.order.insert(seq, key.to_string());
        inner.bytes += cost;
        while inner.bytes > shard.budget {
            // `pop_first` keeps eviction panic-free: the loop simply stops
            // if the recency index ever runs dry.
            let Some((_, victim)) = inner.order.pop_first() else {
                break;
            };
            if let Some(entry) = inner.map.remove(&victim) {
                inner.bytes -= charge(&victim, &entry.body);
            }
            inner.evictions += 1;
        }
        true
    }

    /// Current counters, aggregated over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in self.shards.iter() {
            // memsense-lint: allow(reactor-no-blocking-call) — bounded counter reads; see ResultCache::get
            let inner = shard.lock();
            stats.hits += inner.hits;
            stats.misses += inner.misses;
            stats.evictions += inner.evictions;
            stats.rejected += inner.rejected;
            stats.entries += inner.map.len();
            stats.bytes += inner.bytes;
        }
        stats
    }
}

impl Shard {
    /// The shard state. Poisoning is propagated deliberately: cache methods
    /// never panic themselves, so a poisoned lock means a worker died
    /// mid-mutation and the byte accounting can no longer be trusted.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // memsense-lint: allow(no-panic-in-lib, reactor-no-blocking-call) — poisoning implies corrupted LRU accounting (fail loud); holders only do bounded map ops, never a solve
        self.inner.lock().expect("cache shard lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    /// Budget that fits exactly `n` entries of `key_len + body_len` payload
    /// in a single-shard cache.
    fn fits(n: usize, key_len: usize, body_len: usize) -> usize {
        n * (key_len + body_len + ENTRY_OVERHEAD)
    }

    #[test]
    fn miss_then_hit_returns_identical_body() {
        let cache = ResultCache::new(1024 * 1024);
        assert_eq!(cache.get("k"), None);
        assert!(cache.put("k", &body("{\"v\":1}")));
        assert_eq!(cache.get("k").as_deref(), Some("{\"v\":1}"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, 1 + 7 + ENTRY_OVERHEAD);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        // Single shard so the LRU order is global; budget holds 3 entries.
        let cache = ResultCache::with_shards(fits(3, 1, 9), 1);
        for key in ["a", "b", "c"] {
            cache.put(key, &body("123456789"));
        }
        assert_eq!(cache.stats().entries, 3);
        // Touch "a" so "b" is now the LRU entry.
        assert!(cache.get("a").is_some());
        cache.put("d", &body("123456789"));
        assert_eq!(cache.get("b"), None, "LRU entry evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert!(cache.get("d").is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= fits(3, 1, 9));
    }

    #[test]
    fn reinsert_replaces_without_double_charging() {
        let cache = ResultCache::with_shards(1024, 1);
        cache.put("k", &body("short"));
        cache.put("k", &body("a longer body than before"));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().bytes, 1 + 25 + ENTRY_OVERHEAD);
        assert_eq!(cache.get("k").as_deref(), Some("a longer body than before"));
    }

    #[test]
    fn accounting_charges_key_body_and_entry_overhead() {
        let cache = ResultCache::with_shards(1024 * 1024, 1);
        cache.put("key-one", &body("0123456789"));
        cache.put("key-two!", &body("0123"));
        let expected = (7 + 10 + ENTRY_OVERHEAD) + (8 + 4 + ENTRY_OVERHEAD);
        assert_eq!(cache.stats().bytes, expected);
        // An empty body still costs its key + overhead, never zero.
        cache.put("k", &body(""));
        assert_eq!(
            cache.stats().bytes,
            expected + 1 + ENTRY_OVERHEAD,
            "metadata overhead must be charged even for empty bodies"
        );
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = ResultCache::with_shards(10, 1);
        assert!(!cache.put("key", &body(&"x".repeat(100))));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.get("key"), None);
        assert_eq!(cache.stats().rejected, 1);
    }

    #[test]
    fn oversized_insert_is_rejected_before_evicting_anything() {
        // Regression pin: an insert that can never fit must be refused up
        // front. The buggy order of operations (evict first, check later —
        // or no check at all) empties the whole shard before failing.
        let cache = ResultCache::with_shards(fits(3, 1, 9), 1);
        for key in ["a", "b", "c"] {
            cache.put(key, &body("123456789"));
        }
        let before = cache.stats();
        assert_eq!(before.entries, 3);

        let huge = "x".repeat(fits(3, 1, 9) + 1);
        assert!(!cache.put("z", &body(&huge)), "oversized insert must fail");

        let after = cache.stats();
        assert_eq!(after.entries, 3, "resident entries must survive");
        assert_eq!(
            after.evictions, 0,
            "nothing may be evicted for a doomed insert"
        );
        assert_eq!(after.rejected, 1);
        assert_eq!(after.bytes, before.bytes);
        for key in ["a", "b", "c"] {
            assert!(cache.get(key).is_some(), "entry {key:?} must survive");
        }
    }

    #[test]
    fn eviction_is_deterministic_across_runs() {
        // Pins the no-unordered-output audit: eviction order comes from the
        // BTreeMap recency index, never from HashMap iteration, so the same
        // operation sequence always evicts the same keys.
        let run = || {
            let cache = ResultCache::with_shards(fits(6, 1, 9), 1);
            for key in ["a", "b", "c", "d", "e", "f"] {
                cache.put(key, &body("123456789"));
            }
            let _ = cache.get("b");
            cache.put("g", &body("123456789"));
            cache.put("h", &body("123456789"));
            let survivors: Vec<&str> = ["a", "b", "c", "d", "e", "f", "g", "h"]
                .into_iter()
                .filter(|k| cache.get(k).is_some())
                .collect();
            (survivors, cache.stats().evictions, cache.stats().bytes)
        };
        let first = run();
        for _ in 0..5 {
            assert_eq!(run(), first);
        }
        // LRU semantics specifically: the refreshed "b" survives both
        // evictions while the stale head entries go first.
        assert!(first.0.contains(&"b"));
    }

    #[test]
    fn sharded_cache_stores_and_aggregates_across_shards() {
        let cache = ResultCache::new(DEFAULT_BUDGET_BYTES);
        for i in 0..200 {
            let key = format!("key-{i}");
            assert!(cache.put(&key, &body(&format!("body-{i}"))));
        }
        for i in 0..200 {
            let key = format!("key-{i}");
            assert_eq!(
                cache.get(&key).as_deref(),
                Some(format!("body-{i}").as_str())
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 200);
        assert_eq!(stats.hits, 200);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn shard_overflow_evicts_within_budget() {
        // Tiny per-shard budgets: hammering many keys must keep total bytes
        // within the whole budget and evict rather than grow unboundedly.
        let total = fits(32, 8, 9);
        let cache = ResultCache::with_shards(total, DEFAULT_SHARDS);
        for i in 0..500 {
            cache.put(&format!("key-{i:04}"), &body("123456789"));
        }
        let stats = cache.stats();
        assert!(stats.bytes <= total, "{} > {total}", stats.bytes);
        assert!(stats.evictions > 0, "overflow must evict");
    }

    #[test]
    fn shard_placement_is_deterministic() {
        // FNV-1a is a fixed function of the key bytes: the same insert
        // sequence lands on the same shards (and therefore evicts the same
        // victims) on every run.
        let place = |key: &str| fnv1a(key) % DEFAULT_SHARDS as u64;
        for key in ["a", "zebra", "POST /v1/solve#{}", ""] {
            assert_eq!(place(key), place(key));
        }
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(ResultCache::new(1024 * 1024));
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let key = format!("k{}", (t * 31 + i) % 16);
                    if cache.get(&key).is_none() {
                        cache.put(&key, &Arc::from(format!("body-{key}").as_str()));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert!(stats.entries <= 16);
        assert_eq!(stats.hits + stats.misses, 400);
    }
}
