//! Content-addressed result cache: canonicalized request → response body.
//!
//! The key is the request's canonical form (method, path, and the body's
//! key-sorted, float-canonicalized JSON — see
//! `memsense_experiments::json::Json::canonical`), so two requests that
//! differ only in whitespace, key order, or `-0.0` vs `0.0` hit the same
//! entry. Values are complete response bodies; a hit is returned verbatim,
//! byte-identical to the originally computed response.
//!
//! Eviction is LRU under a byte budget: each entry is charged its key and
//! body length, and inserting past the budget evicts least-recently-used
//! entries first. Recency is tracked with a monotonically increasing
//! sequence number and a `BTreeMap<seq, key>` index, so get/insert/evict are
//! all `O(log n)`.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Default byte budget (64 MiB) — thousands of sweep responses.
pub const DEFAULT_BUDGET_BYTES: usize = 64 * 1024 * 1024;

/// Point-in-time cache counters, for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a stored body.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Bytes currently charged (keys + bodies).
    pub bytes: usize,
}

#[derive(Debug)]
struct Entry {
    body: String,
    seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    /// Recency index: sequence number → key. Oldest first.
    order: BTreeMap<u64, String>,
    next_seq: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe LRU response cache with a byte budget.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    budget: usize,
}

impl ResultCache {
    /// Creates a cache bounded to `budget` bytes (keys + bodies).
    pub fn new(budget: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            budget,
        }
    }

    /// The cache state. Poisoning is propagated deliberately: cache methods
    /// never panic themselves, so a poisoned lock means a worker died
    /// mid-mutation and the byte accounting can no longer be trusted.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // memsense-lint: allow(no-panic-in-lib) — poisoning implies corrupted LRU accounting; failing loud is safer than serving from it
        self.inner.lock().expect("cache lock poisoned")
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<String> {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        match inner.map.get_mut(key) {
            Some(entry) => {
                let old = entry.seq;
                entry.seq = seq;
                let body = entry.body.clone();
                inner.next_seq += 1;
                inner.order.remove(&old);
                inner.order.insert(seq, key.to_string());
                inner.hits += 1;
                Some(body)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `body` under `key`, evicting LRU entries past the budget.
    /// Entries larger than the whole budget are not stored at all.
    pub fn put(&self, key: &str, body: &str) {
        let cost = key.len() + body.len();
        if cost > self.budget {
            return;
        }
        let mut inner = self.lock();
        if let Some(existing) = inner.map.remove(key) {
            inner.order.remove(&existing.seq);
            inner.bytes -= key.len() + existing.body.len();
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.map.insert(
            key.to_string(),
            Entry {
                body: body.to_string(),
                seq,
            },
        );
        inner.order.insert(seq, key.to_string());
        inner.bytes += cost;
        while inner.bytes > self.budget {
            // `pop_first` keeps eviction panic-free: the loop simply stops
            // if the recency index ever runs dry.
            let Some((_, victim)) = inner.order.pop_first() else {
                break;
            };
            if let Some(entry) = inner.map.remove(&victim) {
                inner.bytes -= victim.len() + entry.body.len();
            }
            inner.evictions += 1;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_returns_identical_body() {
        let cache = ResultCache::new(1024);
        assert_eq!(cache.get("k"), None);
        cache.put("k", "{\"v\":1}");
        assert_eq!(cache.get("k").as_deref(), Some("{\"v\":1}"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, 1 + 7);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        // Each entry costs key (1) + body (9) = 10 bytes; budget holds 3.
        let cache = ResultCache::new(30);
        for key in ["a", "b", "c"] {
            cache.put(key, "123456789");
        }
        assert_eq!(cache.stats().entries, 3);
        // Touch "a" so "b" is now the LRU entry.
        assert!(cache.get("a").is_some());
        cache.put("d", "123456789");
        assert_eq!(cache.get("b"), None, "LRU entry evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert!(cache.get("d").is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= 30);
    }

    #[test]
    fn reinsert_replaces_without_double_charging() {
        let cache = ResultCache::new(100);
        cache.put("k", "short");
        cache.put("k", "a longer body than before");
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().bytes, 1 + 25);
        assert_eq!(cache.get("k").as_deref(), Some("a longer body than before"));
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = ResultCache::new(10);
        cache.put("key", &"x".repeat(100));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.get("key"), None);
    }

    #[test]
    fn eviction_is_deterministic_across_runs() {
        // Pins the no-unordered-output audit: eviction order comes from the
        // BTreeMap recency index, never from HashMap iteration, so the same
        // operation sequence always evicts the same keys.
        let run = || {
            let cache = ResultCache::new(60);
            for key in ["a", "b", "c", "d", "e", "f"] {
                cache.put(key, "123456789");
            }
            let _ = cache.get("b");
            cache.put("g", "123456789");
            cache.put("h", "123456789");
            let survivors: Vec<&str> = ["a", "b", "c", "d", "e", "f", "g", "h"]
                .into_iter()
                .filter(|k| cache.get(k).is_some())
                .collect();
            (survivors, cache.stats().evictions, cache.stats().bytes)
        };
        let first = run();
        for _ in 0..5 {
            assert_eq!(run(), first);
        }
        // LRU semantics specifically: the refreshed "b" survives both
        // evictions while the stale head entries go first.
        assert!(first.0.contains(&"b"));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(ResultCache::new(10_000));
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let key = format!("k{}", (t * 31 + i) % 16);
                    if cache.get(&key).is_none() {
                        cache.put(&key, &format!("body-{key}"));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert!(stats.entries <= 16);
        assert_eq!(stats.hits + stats.misses, 400);
    }
}
