//! The stream-session registry: serve's stateful layer over
//! `memsense-stream`.
//!
//! Every other endpoint is stateless — identical bytes in, identical bytes
//! out, which is why the result cache and single-flight table work. Stream
//! sessions are the opposite: a `POST /v1/stream/{id}/delta` *mutates*
//! session state, so these endpoints bypass the cache entirely (see
//! [`crate::server`]'s bypass predicate) and live here, keyed by a numeric
//! session id.
//!
//! Locking: the registry map lock is only ever held for id lookup and
//! insert/remove — never across a solve. Each session sits behind its own
//! `Mutex` inside an `Arc`, so concurrent deltas to *different* sessions
//! solve in parallel on the worker pool while deltas to the *same* session
//! serialize (the session API is sequential by design).
//!
//! The reactor thread never takes a blocking lock here (the
//! `reactor-no-blocking-call` invariant): reactor-inline paths —
//! [`StreamRegistry::take_updates`] and [`StreamRegistry::evict_idle`] —
//! acquire both the map lock and session locks via `try_lock` only,
//! surfacing contention as [`UpdatesPoll::Busy`] or a skipped sweep round.
//! The open-session count is mirrored into an atomic so
//! [`StreamRegistry::sessions`] and [`StreamRegistry::snapshot`] (the
//! `/metrics` path) are lock-free. Worker-side paths ([`StreamRegistry::open`],
//! [`StreamRegistry::delta`]) may block on the map lock; its critical
//! sections are bounded id lookups and inserts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use memsense_experiments::executor;
use memsense_experiments::json::Json;
use memsense_stream::session::{Session, SubmitAck, Update};

use crate::api::{self, ApiError};

/// Most concurrently open sessions; opens beyond this get a 503.
pub const MAX_SESSIONS: usize = 64;

/// How long a session may go without a delta or updates poll before the
/// reactor's sweep evicts it.
pub const SESSION_IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Counters for the `/metrics` `stream` object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// Sessions currently open.
    pub sessions: u64,
    /// Delta ops applied (committed to a session) over the registry's
    /// lifetime; pending and rolled-back ops do not count.
    pub deltas: u64,
    /// Cells re-solved (including opening full solves).
    pub cells_resolved: u64,
    /// Cells the dependency index skipped.
    pub cells_skipped: u64,
}

struct SessionState {
    session: Session,
    last_used: Instant,
}

/// What an updates poll found. The reactor serves this endpoint inline, so
/// it must never wait on a session lock — a busy session is reported as
/// such instead of blocking.
#[derive(Debug)]
pub enum UpdatesPoll {
    /// The session's buffered updates, drained (possibly empty).
    Drained(Vec<Update>),
    /// The session is mid-delta on a worker; poll again shortly.
    Busy,
    /// No such session.
    Unknown,
}

/// The registry: session id → session, plus lifetime counters.
#[derive(Default)]
pub struct StreamRegistry {
    sessions: Mutex<BTreeMap<u64, Arc<Mutex<SessionState>>>>,
    /// Mirror of `sessions.len()`, maintained at insert/evict, so the
    /// count is readable without touching the map lock.
    session_count: AtomicU64,
    next_id: AtomicU64,
    deltas: AtomicU64,
    cells_resolved: AtomicU64,
    cells_skipped: AtomicU64,
}

type SessionMap = BTreeMap<u64, Arc<Mutex<SessionState>>>;

impl StreamRegistry {
    /// Creates an empty registry.
    pub fn new() -> StreamRegistry {
        StreamRegistry::default()
    }

    /// The registry map, worker-side: blocks until the lock is free. Never
    /// called on the reactor thread — reactor paths go through
    /// [`StreamRegistry::try_locked`]. Poisoning means a panic
    /// mid-insert/lookup; session bookkeeping is no longer trustworthy, so
    /// fail loud.
    fn locked(&self) -> std::sync::MutexGuard<'_, SessionMap> {
        // memsense-lint: allow(no-panic-in-lib) — poisoned registry = corrupted session table
        self.sessions.lock().expect("stream registry lock poisoned")
    }

    /// The registry map, reactor-side: `try_lock` only, `None` on
    /// contention (a worker is mid-insert; the caller reports Busy or
    /// skips the round and retries on the next tick).
    fn try_locked(&self) -> Option<std::sync::MutexGuard<'_, SessionMap>> {
        match self.sessions.try_lock() {
            Ok(map) => Some(map),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(_)) => {
                // memsense-lint: allow(no-panic-in-lib) — poisoned registry = corrupted session table
                panic!("stream registry lock poisoned")
            }
        }
    }

    fn slot(&self, id: u64) -> Option<Arc<Mutex<SessionState>>> {
        self.locked().get(&id).cloned()
    }

    /// `POST /v1/stream/open` (worker-pool side): validates the spec,
    /// solves the full grid, and registers the session. Returns the
    /// response status and body.
    pub fn open(&self, body: &Json) -> (u16, String) {
        let (spec, batch) = match api::stream_open(body) {
            Ok(parsed) => parsed,
            Err(e) => return (e.status, e.body()),
        };
        // Optimistic cap check before paying for the full-grid solve; the
        // authoritative check happens again at insert.
        if self.sessions() >= MAX_SESSIONS {
            return session_cap_response();
        }
        let session = match Session::open(spec, batch) {
            Ok(session) => session,
            Err(e) => {
                let e = stream_api_error(e);
                return (e.status, e.body());
            }
        };
        // The opening solve fans out through the shared executor; a
        // long-lived daemon must drain its job log.
        executor::drain_job_log();
        let (_, resolved, skipped) = session.counters();
        self.cells_resolved.fetch_add(resolved, Ordering::Relaxed);
        self.cells_skipped.fetch_add(skipped, Ordering::Relaxed);

        let response = Json::obj(vec![
            ("batch", Json::num(session.batch() as f64)),
            (
                "bandwidth_points",
                Json::num(session.spec().bandwidth_deltas.len() as f64),
            ),
            ("grid_cells", Json::num(session.grid_cells() as f64)),
            (
                "latency_points",
                Json::num(session.spec().latency_steps_ns.len() as f64),
            ),
            ("seq", Json::num(session.seq() as f64)),
            (
                "workloads",
                Json::num(session.spec().workloads.len() as f64),
            ),
        ]);
        let slot = Arc::new(Mutex::new(SessionState {
            session,
            last_used: Instant::now(),
        }));
        let id = {
            let mut map = self.locked();
            if map.len() >= MAX_SESSIONS {
                return session_cap_response();
            }
            let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
            map.insert(id, slot);
            self.session_count.fetch_add(1, Ordering::Relaxed);
            id
        };
        let Json::Obj(mut fields) = response else {
            // memsense-lint: allow(no-panic-in-lib) — constructed as an object above
            unreachable!("open response is an object");
        };
        fields.push(("session".to_string(), Json::num(id as f64)));
        (200, Json::Obj(fields).canonical())
    }

    /// `POST /v1/stream/{id}/delta` (worker-pool side): parses and submits
    /// the ops. Returns the response status and body.
    pub fn delta(&self, id: u64, body: &Json) -> (u16, String) {
        let ops = match api::stream_deltas(body) {
            Ok(ops) => ops,
            Err(e) => return (e.status, e.body()),
        };
        let Some(slot) = self.slot(id) else {
            return unknown_session_response(id);
        };
        // memsense-lint: allow(no-panic-in-lib) — per-session lock, same poisoning rationale as the map
        let mut state = slot.lock().expect("stream session lock poisoned");
        state.last_used = Instant::now();
        let ack = match state.session.submit(&ops) {
            Ok(ack) => ack,
            Err(err) => {
                executor::drain_job_log();
                // The offending batch rolled back, but batches applied
                // earlier in the same call are committed: fold them into
                // the lifetime counters and tell the client exactly how far
                // the session moved before the failure.
                self.record_applied(&err.ack);
                let e = stream_api_error(err.error);
                let body = Json::obj(vec![
                    ("applied_batches", Json::num(err.ack.applied_batches as f64)),
                    ("applied_deltas", Json::num(err.ack.applied_deltas as f64)),
                    ("cells_resolved", Json::num(err.ack.cells_resolved as f64)),
                    ("cells_skipped", Json::num(err.ack.cells_skipped as f64)),
                    ("error", Json::str(&e.message)),
                    ("seq", Json::num(err.ack.seq as f64)),
                    ("session", Json::num(id as f64)),
                ])
                .canonical();
                return (e.status, body);
            }
        };
        executor::drain_job_log();
        self.record_applied(&ack);
        let body = Json::obj(vec![
            ("accepted", Json::num(ack.accepted as f64)),
            ("applied_batches", Json::num(ack.applied_batches as f64)),
            ("applied_deltas", Json::num(ack.applied_deltas as f64)),
            ("cells_resolved", Json::num(ack.cells_resolved as f64)),
            ("cells_skipped", Json::num(ack.cells_skipped as f64)),
            ("pending", Json::num(ack.pending as f64)),
            ("seq", Json::num(ack.seq as f64)),
            ("session", Json::num(id as f64)),
        ])
        .canonical();
        (200, body)
    }

    /// Folds one (possibly partial) ack into the lifetime counters. The
    /// `deltas` metric counts ops actually committed, so a failed call's
    /// applied prefix still counts and a fully-rolled-back call adds zero.
    fn record_applied(&self, ack: &SubmitAck) {
        self.deltas.fetch_add(ack.applied_deltas, Ordering::Relaxed);
        self.cells_resolved
            .fetch_add(ack.cells_resolved, Ordering::Relaxed);
        self.cells_skipped
            .fetch_add(ack.cells_skipped, Ordering::Relaxed);
    }

    /// `GET /v1/stream/{id}/updates` (reactor-inline): drains the session's
    /// buffered update records.
    ///
    /// This runs on the reactor thread, whose invariant is that it never
    /// blocks — a worker applying a delta to the same session holds the
    /// session lock across the whole solve (seconds on a large grid), and
    /// a blocking `lock()` here would stall every connection on the server
    /// for that long. `try_lock` only, the same discipline as
    /// [`StreamRegistry::evict_idle`]; contention surfaces as
    /// [`UpdatesPoll::Busy`].
    pub fn take_updates(&self, id: u64) -> UpdatesPoll {
        // The map lock itself follows the same discipline: a worker holds
        // it only across an id lookup or insert, but the reactor still must
        // not park on even that — report Busy and let the client re-poll.
        let Some(map) = self.try_locked() else {
            return UpdatesPoll::Busy;
        };
        let Some(slot) = map.get(&id).cloned() else {
            return UpdatesPoll::Unknown;
        };
        drop(map);
        let poll = match slot.try_lock() {
            Ok(mut state) => {
                state.last_used = Instant::now();
                UpdatesPoll::Drained(state.session.take_updates())
            }
            Err(std::sync::TryLockError::WouldBlock) => UpdatesPoll::Busy,
            Err(std::sync::TryLockError::Poisoned(_)) => {
                // memsense-lint: allow(no-panic-in-lib) — same poisoning rationale as the map
                panic!("stream session lock poisoned")
            }
        };
        poll
    }

    /// Evicts sessions idle longer than `timeout`; sessions currently
    /// mid-delta are busy by definition and skipped, and a contended map
    /// lock skips the whole round (the reactor sweeps again next tick).
    /// Returns how many were evicted.
    pub fn evict_idle(&self, timeout: Duration) -> usize {
        let Some(mut map) = self.try_locked() else {
            return 0;
        };
        let stale: Vec<u64> = map
            .iter()
            .filter(|(_, slot)| match slot.try_lock() {
                Ok(state) => state.last_used.elapsed() >= timeout,
                Err(_) => false,
            })
            .map(|(&id, _)| id)
            .collect();
        for id in &stale {
            map.remove(id);
            self.session_count.fetch_sub(1, Ordering::Relaxed);
        }
        stale.len()
    }

    /// Open-session count. Lock-free: reads the atomic mirror, so the
    /// `/metrics` path never touches the registry lock.
    pub fn sessions(&self) -> usize {
        self.session_count.load(Ordering::Relaxed) as usize
    }

    /// Counters for `/metrics`. Lock-free, same as [`StreamRegistry::sessions`].
    pub fn snapshot(&self) -> StreamSnapshot {
        StreamSnapshot {
            sessions: self.session_count.load(Ordering::Relaxed),
            deltas: self.deltas.load(Ordering::Relaxed),
            cells_resolved: self.cells_resolved.load(Ordering::Relaxed),
            cells_skipped: self.cells_skipped.load(Ordering::Relaxed),
        }
    }
}

fn stream_api_error(e: memsense_stream::StreamError) -> ApiError {
    match e {
        memsense_stream::StreamError::InvalidDelta(message) => ApiError::bad(message),
        memsense_stream::StreamError::Model(e) => ApiError::bad(format!("model error: {e}")),
    }
}

fn session_cap_response() -> (u16, String) {
    (
        503,
        crate::api::error_body(&format!("session limit reached ({MAX_SESSIONS})")),
    )
}

fn unknown_session_response(id: u64) -> (u16, String) {
    (
        404,
        crate::api::error_body(&format!("no such session: {id}")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_small(registry: &StreamRegistry) -> u64 {
        let body =
            Json::parse(r#"{"workloads": ["big data"], "deltas": [0.0], "steps_ns": [0.0, 10.0]}"#)
                .unwrap();
        let (status, response) = registry.open(&body);
        assert_eq!(status, 200, "{response}");
        Json::parse(&response)
            .unwrap()
            .get("session")
            .and_then(Json::as_u64)
            .unwrap()
    }

    fn drained(registry: &StreamRegistry, id: u64) -> Vec<Update> {
        match registry.take_updates(id) {
            UpdatesPoll::Drained(updates) => updates,
            other => panic!("expected drained updates, got {other:?}"),
        }
    }

    #[test]
    fn open_delta_updates_round_trip() {
        let registry = StreamRegistry::new();
        let id = open_small(&registry);
        assert_eq!(registry.sessions(), 1);

        // The opening snapshot is buffered as seq 0.
        let updates = drained(&registry, id);
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].seq, 0);

        let ops = Json::parse(r#"{"deltas": [{"op": "add_bandwidth", "delta": -0.5}]}"#).unwrap();
        let (status, body) = registry.delta(id, &ops);
        assert_eq!(status, 200, "{body}");
        let ack = Json::parse(&body).unwrap();
        assert_eq!(ack.get("session").and_then(Json::as_u64), Some(id));
        assert_eq!(ack.get("cells_resolved").and_then(Json::as_u64), Some(2));
        assert_eq!(ack.get("seq").and_then(Json::as_u64), Some(1));

        let updates = drained(&registry, id);
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].seq, 1);
        // Drained means drained.
        assert!(drained(&registry, id).is_empty());

        let snap = registry.snapshot();
        assert_eq!(snap.sessions, 1);
        assert_eq!(snap.deltas, 1);
        assert!(snap.cells_resolved >= 4, "opening solve + delta recorded");
    }

    #[test]
    fn unknown_sessions_are_404() {
        let registry = StreamRegistry::new();
        let ops = Json::parse(r#"{"deltas": [{"op": "flush"}]}"#).unwrap();
        let (status, body) = registry.delta(999, &ops);
        assert_eq!(status, 404);
        assert!(body.contains("no such session"));
        assert!(matches!(registry.take_updates(999), UpdatesPoll::Unknown));
    }

    #[test]
    fn busy_sessions_never_block_an_updates_poll() {
        // A worker mid-delta holds the session lock for the whole solve;
        // the reactor-inline poll must report Busy instead of waiting.
        let registry = StreamRegistry::new();
        let id = open_small(&registry);
        let slot = registry.slot(id).expect("session exists");
        let _mid_delta = slot.lock().unwrap();
        assert!(matches!(registry.take_updates(id), UpdatesPoll::Busy));
        drop(_mid_delta);
        assert_eq!(drained(&registry, id).len(), 1, "unlocked drains again");
    }

    #[test]
    fn contended_registry_map_reports_busy_and_skips_the_sweep() {
        // A worker mid-insert holds the map lock; reactor-inline paths must
        // not park on it. The poll reports Busy, the sweep skips the round,
        // and the session count stays readable through the atomic mirror.
        let registry = StreamRegistry::new();
        let id = open_small(&registry);
        let _mid_insert = registry.sessions.lock().unwrap();
        assert!(matches!(registry.take_updates(id), UpdatesPoll::Busy));
        assert_eq!(registry.evict_idle(Duration::ZERO), 0, "sweep skipped");
        assert_eq!(registry.sessions(), 1, "count is lock-free");
        drop(_mid_insert);
        assert_eq!(registry.evict_idle(Duration::ZERO), 1);
        assert_eq!(registry.sessions(), 0);
    }

    #[test]
    fn partial_failure_reports_and_counts_the_applied_prefix() {
        let registry = StreamRegistry::new();
        let id = open_small(&registry);
        // Batch knob 1 (open default): the add commits, then the remove of
        // a point not in the grid fails. The 400 must say how far the
        // session moved, and the committed prefix must reach /metrics.
        let ops = Json::parse(
            r#"{"deltas": [
                {"op": "add_bandwidth", "delta": -0.5},
                {"op": "remove_bandwidth", "delta": 42.0}
            ]}"#,
        )
        .unwrap();
        let (status, body) = registry.delta(id, &ops);
        assert_eq!(status, 400, "{body}");
        let err = Json::parse(&body).unwrap();
        assert_eq!(err.get("applied_batches").and_then(Json::as_u64), Some(1));
        assert_eq!(err.get("applied_deltas").and_then(Json::as_u64), Some(1));
        assert_eq!(err.get("cells_resolved").and_then(Json::as_u64), Some(2));
        assert_eq!(err.get("seq").and_then(Json::as_u64), Some(1));
        assert!(err.get("error").is_some(), "{body}");

        let snap = registry.snapshot();
        assert_eq!(snap.deltas, 1, "the committed op counts");
        assert!(snap.cells_resolved >= 4, "opening solve + committed add");
        // The committed batch's update is drainable like any other.
        let updates = drained(&registry, id);
        assert_eq!(updates.last().unwrap().seq, 1);
    }

    #[test]
    fn invalid_ops_do_not_count_as_deltas() {
        let registry = StreamRegistry::new();
        let id = open_small(&registry);
        let ops =
            Json::parse(r#"{"deltas": [{"op": "remove_bandwidth", "delta": 42.0}]}"#).unwrap();
        let (status, body) = registry.delta(id, &ops);
        assert_eq!(status, 400, "{body}");
        assert_eq!(registry.snapshot().deltas, 0);
    }

    #[test]
    fn session_cap_is_enforced_with_503() {
        let registry = StreamRegistry::new();
        for _ in 0..MAX_SESSIONS {
            open_small(&registry);
        }
        let body =
            Json::parse(r#"{"workloads": ["big data"], "deltas": [0.0], "steps_ns": [0.0]}"#)
                .unwrap();
        let (status, response) = registry.open(&body);
        assert_eq!(status, 503, "{response}");
        assert!(response.contains("session limit"));
        assert_eq!(registry.sessions(), MAX_SESSIONS);
    }

    #[test]
    fn idle_sessions_are_evicted_but_fresh_ones_stay() {
        let registry = StreamRegistry::new();
        let id = open_small(&registry);
        assert_eq!(registry.evict_idle(Duration::from_secs(3600)), 0);
        assert_eq!(registry.sessions(), 1);
        assert_eq!(registry.evict_idle(Duration::ZERO), 1);
        assert_eq!(registry.sessions(), 0);
        assert!(
            matches!(registry.take_updates(id), UpdatesPoll::Unknown),
            "evicted session is gone"
        );
    }
}
