//! Built-in load generator: drive a server and measure cache-hit speedup.
//!
//! The bench sends one *cold* request first (a cache miss — the request
//! body carries a unique `tag`, so even a warmed server must solve it), then
//! hammers the identical request from `connections` keep-alive connections
//! for the configured duration. Because every warm request is byte-identical
//! to the cold one, the steady state measures the content-addressed cache;
//! the reported `cache_speedup` is cold latency over warm median.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use memsense_experiments::json::Json;
use memsense_stats::descriptive::{mean, percentile_nearest_rank};

use crate::http::Client;
use crate::server::{Server, ServerConfig};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Target `host:port`; `None` starts a throwaway in-process server.
    pub addr: Option<String>,
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Warm-phase duration.
    pub duration: Duration,
    /// Optional cap on total warm requests (useful for CI determinism).
    pub max_requests: Option<u64>,
    /// Endpoint to hammer.
    pub path: String,
    /// JSON request body; empty = a dense default bandwidth sweep.
    pub body: String,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            addr: None,
            connections: 4,
            duration: Duration::from_secs(5),
            max_requests: None,
            path: "/v1/sweep/bandwidth".to_string(),
            body: String::new(),
        }
    }
}

/// What the load generator measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Endpoint exercised.
    pub path: String,
    /// Concurrent connections used.
    pub connections: usize,
    /// Warm requests completed.
    pub requests: u64,
    /// Warm-phase wall time in seconds.
    pub wall_s: f64,
    /// Warm requests per second.
    pub throughput_rps: f64,
    /// Latency of the cold (cache-miss) request, milliseconds.
    pub cold_ms: f64,
    /// Warm (cache-hit) latency statistics, milliseconds.
    pub warm_mean_ms: f64,
    /// Warm median latency, milliseconds.
    pub warm_p50_ms: f64,
    /// Warm 90th-percentile latency, milliseconds.
    pub warm_p90_ms: f64,
    /// Warm 99th-percentile latency, milliseconds.
    pub warm_p99_ms: f64,
    /// Cold latency over warm median: the benefit of the result cache.
    pub cache_speedup: f64,
}

impl BenchReport {
    /// Renders the report as JSON.
    pub fn to_json(&self) -> Json {
        let ms = |v: f64| Json::num((v * 1e3).round() / 1e3);
        Json::obj(vec![
            ("path", Json::str(&self.path)),
            ("connections", Json::num(self.connections as f64)),
            ("requests", Json::num(self.requests as f64)),
            ("wall_s", ms(self.wall_s)),
            ("throughput_rps", ms(self.throughput_rps)),
            ("cold_ms", ms(self.cold_ms)),
            ("warm_mean_ms", ms(self.warm_mean_ms)),
            ("warm_p50_ms", ms(self.warm_p50_ms)),
            ("warm_p90_ms", ms(self.warm_p90_ms)),
            ("warm_p99_ms", ms(self.warm_p99_ms)),
            ("cache_speedup", ms(self.cache_speedup)),
        ])
    }

    /// Renders the report as human-readable text.
    pub fn to_text(&self) -> String {
        format!(
            "bench: POST {path}\n\
             connections: {conns}\n\
             requests:    {reqs} in {wall:.2} s ({rps:.1} req/s)\n\
             cold (miss): {cold:.3} ms\n\
             warm (hit):  p50 {p50:.3} ms  p90 {p90:.3} ms  p99 {p99:.3} ms  mean {mean:.3} ms\n\
             cache speedup (cold / warm p50): {speedup:.1}x\n",
            path = self.path,
            conns = self.connections,
            reqs = self.requests,
            wall = self.wall_s,
            rps = self.throughput_rps,
            cold = self.cold_ms,
            p50 = self.warm_p50_ms,
            p90 = self.warm_p90_ms,
            p99 = self.warm_p99_ms,
            mean = self.warm_mean_ms,
            speedup = self.cache_speedup,
        )
    }
}

/// A dense Fig. 8-style axis (0 to −3.5 GB/s/core in 0.05 steps) over the
/// three workload classes — enough model work to make a cold solve clearly
/// measurable.
fn default_body() -> Json {
    let deltas: Vec<Json> = (0..=70)
        .map(|i| Json::num(0.0 - 0.05 * f64::from(i)))
        .collect();
    Json::obj(vec![("deltas", Json::Arr(deltas))])
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Runs the load generator against `config.addr` (or a fresh in-process
/// server) and reports throughput, latency percentiles, and cache speedup.
///
/// # Errors
///
/// Transport failures, non-200 responses, or an unparsable request body.
pub fn run(config: &BenchConfig) -> io::Result<BenchReport> {
    let mut body = if config.body.is_empty() {
        default_body()
    } else {
        Json::parse(&config.body).map_err(|e| invalid(format!("invalid bench body: {e}")))?
    };
    // Salt the body so the first request misses even a warmed cache.
    let salt = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let tag = format!("bench-{}-{salt}", std::process::id());
    match &mut body {
        Json::Obj(fields) => fields.push(("tag".to_string(), Json::Str(tag))),
        _ => return Err(invalid("bench body must be a JSON object".to_string())),
    }
    let body = body.to_string();

    let mut local = None;
    let addr = match &config.addr {
        Some(addr) => addr.clone(),
        None => {
            let server = Server::start(&ServerConfig::default())?;
            let addr = server.addr().to_string();
            local = Some(server);
            addr
        }
    };

    let result = drive(config, &addr, &body);

    if let Some(mut server) = local {
        server.stop();
        server.join();
    }
    result
}

fn drive(config: &BenchConfig, addr: &str, body: &str) -> io::Result<BenchReport> {
    let check = |status: u16, text: &str| {
        if status == 200 {
            Ok(())
        } else {
            Err(invalid(format!("server returned {status}: {text}")))
        }
    };

    // Cold request: the one and only cache miss for this body.
    let mut client = Client::connect(addr)?;
    let started = Instant::now();
    let (status, text) = client.request("POST", &config.path, body)?;
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;
    check(status, &text)?;

    // Warm phase: identical request from N keep-alive connections.
    let connections = config.connections.max(1);
    let budget = config.max_requests.unwrap_or(u64::MAX);
    let issued = AtomicU64::new(0);
    let failure: Mutex<Option<io::Error>> = Mutex::new(None);
    let deadline = Instant::now() + config.duration;
    let warm_started = Instant::now();
    let mut all_samples: Vec<f64> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for _ in 0..connections {
            handles.push(scope.spawn(|| -> io::Result<Vec<f64>> {
                let mut samples = Vec::new();
                let mut client = Client::connect(addr)?;
                while Instant::now() < deadline {
                    if issued.fetch_add(1, Ordering::Relaxed) >= budget {
                        break;
                    }
                    let started = Instant::now();
                    let (status, text) = client.request("POST", &config.path, body)?;
                    samples.push(started.elapsed().as_secs_f64() * 1e3);
                    check(status, &text)?;
                }
                Ok(samples)
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(Ok(samples)) => all_samples.extend(samples),
                Ok(Err(e)) => {
                    // memsense-lint: allow(no-panic-in-lib) — single-writer slot; poisoning here means the bench harness itself is broken
                    let mut slot = failure.lock().expect("bench failure lock");
                    slot.get_or_insert(e);
                }
                Err(_) => {
                    // memsense-lint: allow(no-panic-in-lib) — single-writer slot; poisoning here means the bench harness itself is broken
                    let mut slot = failure.lock().expect("bench failure lock");
                    slot.get_or_insert_with(|| invalid("bench worker panicked".to_string()));
                }
            }
        }
    });
    // memsense-lint: allow(no-panic-in-lib) — into_inner fails only on poisoning, and all writers have joined by now
    if let Some(e) = failure.into_inner().expect("bench failure lock") {
        return Err(e);
    }
    let wall_s = warm_started.elapsed().as_secs_f64();

    if all_samples.is_empty() {
        return Err(invalid("warm phase completed zero requests".to_string()));
    }
    // Nearest-rank percentiles: with few samples (short CI runs), p99 clamps
    // to the observed maximum instead of interpolating past the sorted data.
    // memsense-lint: allow(no-panic-in-lib) — guarded by the is_empty early return above
    let stat = |p: f64| percentile_nearest_rank(&all_samples, p).expect("non-empty samples");
    let warm_p50_ms = stat(50.0);
    Ok(BenchReport {
        path: config.path.clone(),
        connections,
        requests: all_samples.len() as u64,
        wall_s,
        throughput_rps: all_samples.len() as f64 / wall_s,
        cold_ms,
        // memsense-lint: allow(no-panic-in-lib) — same non-empty guard
        warm_mean_ms: mean(&all_samples).expect("non-empty samples"),
        warm_p50_ms,
        warm_p90_ms: stat(90.0),
        warm_p99_ms: stat(99.0),
        cache_speedup: cold_ms / warm_p50_ms,
    })
}
