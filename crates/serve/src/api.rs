//! JSON request/response conversion over the calibrated model.
//!
//! Each handler takes a parsed request body ([`Json`]) and returns either a
//! response [`Json`] or an [`ApiError`] carrying an HTTP status. All numeric
//! output goes through the shared canonical float formatter
//! (`memsense_experiments::json`), so responses are reproducible
//! byte-for-byte and never contain NaN/infinity literals.
//!
//! Request schemas (all fields optional unless noted):
//!
//! * `workload` — a name (`"big data"`, `"spark"`, …, resolved by
//!   [`WorkloadParams::by_name`]) or an object
//!   `{name, segment, cpi_cache*, bf*, mpki*, wbr*, iopi, iosz}` (`*` =
//!   required). Defaults to the big data class.
//! * `workloads` — an array of the above. Defaults to the three Tab. 6
//!   workload classes.
//! * `system` — overrides on the paper baseline:
//!   `{sockets, cores_per_socket, threads_per_core, core_clock_ghz,
//!   channels_per_socket, channel_mega_transfers, efficiency,
//!   unloaded_latency_ns}`.
//! * `deltas` (bandwidth sweep) / `steps_ns` (latency sweep) — the sweep
//!   axis; defaults to the paper's Fig. 8 / Fig. 10 axes.
//! * `tag` — opaque client value, echoed nowhere but part of the cache key
//!   (use a unique tag to force a cold solve).
//!
//! Unknown fields are rejected with a 400 so typos cannot silently fall
//! back to defaults.

use memsense_experiments::executor;
use memsense_experiments::json::Json;
use memsense_model::queueing::QueueingCurve;
use memsense_model::sensitivity::{
    bandwidth_sweep, default_bandwidth_deltas, default_latency_steps, equivalence, latency_sweep,
    SweepPoint,
};
use memsense_model::solver::{solve_cpi, Regime, SolvedCpi};
use memsense_model::system::SystemConfig;
use memsense_model::units::{GigaHertz, Nanoseconds};
use memsense_model::workload::{Segment, WorkloadParams};
use memsense_model::ModelError;
use memsense_plan::spec::PlanSpec;
use memsense_plan::PlanError;
use memsense_stream::grid::{GridSpec, MixEntry};
use memsense_stream::session::Delta;
use memsense_stream::StreamError;

/// Most workloads accepted in one sweep/equivalence request.
pub const MAX_WORKLOADS: usize = 256;

/// Most points accepted on one sweep axis.
pub const MAX_AXIS_POINTS: usize = 4096;

/// A request that could not be served, with the HTTP status to report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code (4xx for caller mistakes, 5xx otherwise).
    pub status: u16,
    /// Human-readable explanation, returned as `{"error": …}`.
    pub message: String,
    /// Dotted path of the offending request field, when one is known
    /// (plan-spec validation); rendered as a `"field"` key in the body.
    pub field: Option<String>,
}

impl ApiError {
    /// A 400 Bad Request.
    pub fn bad(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
            field: None,
        }
    }

    /// A 400 Bad Request that names the offending field.
    pub fn bad_field(field: impl Into<String>, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
            field: Some(field.into()),
        }
    }

    /// Renders the JSON error body for this error.
    pub fn body(&self) -> String {
        match &self.field {
            None => error_body(&self.message),
            Some(field) => Json::obj(vec![
                ("error", Json::str(&self.message)),
                ("field", Json::str(field)),
            ])
            .to_string(),
        }
    }
}

/// The JSON error body used for every non-2xx response.
pub fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::str(message))]).to_string()
}

fn model_err(e: ModelError) -> ApiError {
    ApiError::bad(format!("model error: {e}"))
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

/// Rejects bodies that are not objects and object keys outside `allowed`.
fn check_keys(body: &Json, allowed: &[&str]) -> Result<(), ApiError> {
    let Json::Obj(fields) = body else {
        return Err(ApiError::bad("request body must be a JSON object"));
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::bad(format!(
                "unknown field {key:?} (expected one of: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn need_f64(obj: &Json, key: &str) -> Result<f64, ApiError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ApiError::bad(format!("field {key:?} must be a number")))
}

fn opt_f64(obj: &Json, key: &str, default: f64) -> Result<f64, ApiError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ApiError::bad(format!("field {key:?} must be a number"))),
    }
}

fn opt_u32(obj: &Json, key: &str, default: u32) -> Result<u32, ApiError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| ApiError::bad(format!("field {key:?} must be a non-negative integer"))),
    }
}

fn parse_workload_value(value: &Json) -> Result<WorkloadParams, ApiError> {
    match value {
        Json::Str(name) => WorkloadParams::by_name(name)
            .ok_or_else(|| ApiError::bad(format!("unknown workload {name:?}"))),
        Json::Obj(_) => {
            check_keys(
                value,
                &[
                    "name",
                    "segment",
                    "cpi_cache",
                    "bf",
                    "mpki",
                    "wbr",
                    "iopi",
                    "iosz",
                ],
            )?;
            let name = match value.get("name") {
                None => "custom",
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| ApiError::bad("field \"name\" must be a string"))?,
            };
            let segment = match value.get("segment") {
                None => Segment::BigData,
                Some(v) => v.as_str().and_then(Segment::from_token).ok_or_else(|| {
                    ApiError::bad(
                        "field \"segment\" must be \"big_data\", \"enterprise\", or \"hpc\"",
                    )
                })?,
            };
            let workload = WorkloadParams::new(
                name,
                segment,
                need_f64(value, "cpi_cache")?,
                need_f64(value, "bf")?,
                need_f64(value, "mpki")?,
                need_f64(value, "wbr")?,
            )
            .map_err(model_err)?;
            if value.get("iopi").is_some() || value.get("iosz").is_some() {
                workload
                    .with_io(opt_f64(value, "iopi", 0.0)?, opt_f64(value, "iosz", 0.0)?)
                    .map_err(model_err)
            } else {
                Ok(workload)
            }
        }
        _ => Err(ApiError::bad(
            "\"workload\" must be a workload name or a parameter object",
        )),
    }
}

fn parse_workload(body: &Json) -> Result<WorkloadParams, ApiError> {
    match body.get("workload") {
        None => Ok(WorkloadParams::big_data_class()),
        Some(v) => parse_workload_value(v),
    }
}

fn parse_workloads(body: &Json) -> Result<Vec<WorkloadParams>, ApiError> {
    match body.get("workloads") {
        None => Ok(WorkloadParams::all_classes()),
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| ApiError::bad("field \"workloads\" must be an array"))?;
            if items.is_empty() {
                return Err(ApiError::bad("field \"workloads\" must not be empty"));
            }
            if items.len() > MAX_WORKLOADS {
                return Err(ApiError::bad(format!(
                    "field \"workloads\" accepts at most {MAX_WORKLOADS} entries"
                )));
            }
            items.iter().map(parse_workload_value).collect()
        }
    }
}

fn parse_system(body: &Json) -> Result<SystemConfig, ApiError> {
    let base = SystemConfig::paper_baseline();
    let overrides = match body.get("system") {
        None => return Ok(base),
        Some(v) => v,
    };
    check_keys(
        overrides,
        &[
            "sockets",
            "cores_per_socket",
            "threads_per_core",
            "core_clock_ghz",
            "channels_per_socket",
            "channel_mega_transfers",
            "efficiency",
            "unloaded_latency_ns",
        ],
    )?;
    SystemConfig::new(
        opt_u32(overrides, "sockets", base.sockets())?,
        opt_u32(overrides, "cores_per_socket", base.cores() / base.sockets())?,
        opt_u32(
            overrides,
            "threads_per_core",
            base.hardware_threads() / base.cores(),
        )?,
        GigaHertz(opt_f64(
            overrides,
            "core_clock_ghz",
            base.core_clock().value(),
        )?),
        opt_u32(
            overrides,
            "channels_per_socket",
            base.channels() / base.sockets(),
        )?,
        opt_f64(
            overrides,
            "channel_mega_transfers",
            base.channel_mega_transfers(),
        )?,
        opt_f64(overrides, "efficiency", base.efficiency())?,
        Nanoseconds(opt_f64(
            overrides,
            "unloaded_latency_ns",
            base.unloaded_latency().value(),
        )?),
    )
    .map_err(model_err)
}

fn parse_axis(body: &Json, key: &str, default: Vec<f64>) -> Result<Vec<f64>, ApiError> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => {
            let items = v.as_arr().ok_or_else(|| {
                ApiError::bad(format!("field {key:?} must be an array of numbers"))
            })?;
            if items.is_empty() {
                return Err(ApiError::bad(format!("field {key:?} must not be empty")));
            }
            if items.len() > MAX_AXIS_POINTS {
                return Err(ApiError::bad(format!(
                    "field {key:?} accepts at most {MAX_AXIS_POINTS} points"
                )));
            }
            items
                .iter()
                .map(|p| {
                    p.as_f64().ok_or_else(|| {
                        ApiError::bad(format!("field {key:?} must contain only numbers"))
                    })
                })
                .collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

fn system_json(system: &SystemConfig) -> Json {
    Json::obj(vec![
        ("sockets", Json::num(system.sockets() as f64)),
        ("cores", Json::num(system.cores() as f64)),
        (
            "hardware_threads",
            Json::num(system.hardware_threads() as f64),
        ),
        ("core_clock_ghz", Json::num(system.core_clock().value())),
        ("channels", Json::num(system.channels() as f64)),
        (
            "channel_mega_transfers",
            Json::num(system.channel_mega_transfers()),
        ),
        ("efficiency", Json::num(system.efficiency())),
        (
            "unloaded_latency_ns",
            Json::num(system.unloaded_latency().value()),
        ),
        (
            "peak_bandwidth_gbps",
            Json::num(system.peak_bandwidth().value()),
        ),
        (
            "effective_bandwidth_gbps",
            Json::num(system.effective_bandwidth().value()),
        ),
        (
            "bandwidth_per_core_gbps",
            Json::num(system.bandwidth_per_core().value()),
        ),
    ])
}

fn solved_json(workload: &WorkloadParams, system: &SystemConfig, solved: &SolvedCpi) -> Json {
    let stack = solved.cpi_stack(workload, system);
    Json::obj(vec![
        ("cpi_eff", Json::num(solved.cpi_eff)),
        ("miss_penalty_ns", Json::num(solved.miss_penalty.value())),
        (
            "miss_penalty_cycles",
            Json::num(solved.miss_penalty_cycles.value()),
        ),
        (
            "queueing_delay_ns",
            Json::num(solved.queueing_delay.value()),
        ),
        (
            "bandwidth_demand_gbps",
            Json::num(solved.bandwidth_demand.value()),
        ),
        ("utilization", Json::num(solved.utilization)),
        ("regime", Json::str(solved.regime.token())),
        ("iterations", Json::num(solved.iterations as f64)),
        (
            "cpi_stack",
            Json::obj(vec![
                ("cpi_cache", Json::num(stack.cpi_cache)),
                ("compulsory_stall", Json::num(stack.compulsory_stall)),
                ("queueing_stall", Json::num(stack.queueing_stall)),
                ("bandwidth_residual", Json::num(stack.bandwidth_residual)),
                ("total", Json::num(stack.total())),
                ("memory_fraction", Json::num(stack.memory_fraction())),
            ]),
        ),
    ])
}

fn point_json(point: &SweepPoint) -> Json {
    Json::obj(vec![
        ("delta", Json::num(point.delta)),
        (
            "bandwidth_per_core_gbps",
            Json::num(point.bandwidth_per_core),
        ),
        ("unloaded_latency_ns", Json::num(point.unloaded_latency_ns)),
        ("cpi", Json::num(point.solved.cpi_eff)),
        ("cpi_ratio", Json::num(point.cpi_ratio)),
        ("cpi_increase_pct", Json::num(point.cpi_increase_pct())),
        ("utilization", Json::num(point.solved.utilization)),
        ("regime", Json::str(point.solved.regime.token())),
    ])
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

/// `POST /v1/solve` — one fixed-point solve with regime and CPI stack.
///
/// # Errors
///
/// [`ApiError`] (400) for malformed requests or infeasible parameters.
pub fn solve(body: &Json) -> Result<Json, ApiError> {
    check_keys(body, &["workload", "system", "tag"])?;
    let workload = parse_workload(body)?;
    let system = parse_system(body)?;
    let curve = QueueingCurve::composite_default();
    let solved = solve_cpi(&workload, &system, &curve).map_err(model_err)?;
    Ok(Json::obj(vec![
        ("workload", Json::str(&workload.name)),
        ("segment", Json::str(workload.segment.token())),
        ("system", system_json(&system)),
        ("solved", solved_json(&workload, &system, &solved)),
    ]))
}

/// Which axis a sweep request walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKind {
    /// Fig. 8: per-core bandwidth deltas (GB/s, negative = reduction).
    Bandwidth,
    /// Fig. 10: added compulsory latency (ns).
    Latency,
}

/// `POST /v1/sweep/{bandwidth,latency}` — Fig. 8 / Fig. 10-style sweeps,
/// fanned over the requested workloads through the shared parallel executor.
///
/// # Errors
///
/// [`ApiError`] (400) for malformed requests or infeasible sweep points.
pub fn sweep(kind: SweepKind, body: &Json) -> Result<Json, ApiError> {
    let (axis_key, axis_default, label, kind_name) = match kind {
        SweepKind::Bandwidth => (
            "deltas",
            default_bandwidth_deltas(),
            "serve.sweep.bandwidth",
            "bandwidth",
        ),
        SweepKind::Latency => (
            "steps_ns",
            default_latency_steps(),
            "serve.sweep.latency",
            "latency",
        ),
    };
    check_keys(body, &["workloads", "system", axis_key, "tag"])?;
    let workloads = parse_workloads(body)?;
    let system = parse_system(body)?;
    let axis = parse_axis(body, axis_key, axis_default)?;
    let curve = QueueingCurve::composite_default();

    let results = executor::par_map(label, workloads, |workload| {
        let baseline = solve_cpi(&workload, &system, &curve)?;
        let points = match kind {
            SweepKind::Bandwidth => bandwidth_sweep(&workload, &system, &curve, &axis),
            SweepKind::Latency => latency_sweep(&workload, &system, &curve, &axis),
        }?;
        Ok::<_, ModelError>((workload, baseline, points))
    })
    .map_err(model_err);
    // The executor's job log exists for one-shot CLI run reports; a
    // long-lived daemon must drain it so it cannot grow without bound.
    executor::drain_job_log();
    let results = results?;

    let workloads_json: Vec<Json> = results
        .iter()
        .map(|(workload, baseline, points)| {
            Json::obj(vec![
                ("workload", Json::str(&workload.name)),
                ("segment", Json::str(workload.segment.token())),
                ("baseline_cpi", Json::num(baseline.cpi_eff)),
                ("points", Json::Arr(points.iter().map(point_json).collect())),
            ])
        })
        .collect();
    Ok(Json::obj(vec![
        ("sweep", Json::str(kind_name)),
        ("system", system_json(&system)),
        (
            axis_key,
            Json::Arr(axis.iter().map(|&v| Json::num(v)).collect()),
        ),
        ("workloads", Json::Arr(workloads_json)),
    ]))
}

/// `POST /v1/equivalence` — Tab. 7 latency ⇄ bandwidth equivalences.
///
/// # Errors
///
/// [`ApiError`] (400) for malformed requests or solver failures.
pub fn equivalence_endpoint(body: &Json) -> Result<Json, ApiError> {
    check_keys(body, &["workloads", "system", "tag"])?;
    let workloads = parse_workloads(body)?;
    let system = parse_system(body)?;
    let curve = QueueingCurve::composite_default();

    let results = executor::par_map("serve.equivalence", workloads, |workload| {
        equivalence(&workload, &system, &curve).map(|eq| (workload, eq))
    })
    .map_err(model_err);
    executor::drain_job_log();
    let results = results?;

    let rows: Vec<Json> = results
        .iter()
        .map(|(workload, eq)| {
            let opt = |v: Option<f64>| v.map(Json::num).unwrap_or(Json::Null);
            Json::obj(vec![
                ("workload", Json::str(&workload.name)),
                ("segment", Json::str(workload.segment.token())),
                (
                    "benefit_of_bandwidth_pct",
                    Json::num(eq.benefit_of_bandwidth_pct),
                ),
                (
                    "benefit_of_latency_pct",
                    Json::num(eq.benefit_of_latency_pct),
                ),
                (
                    "bandwidth_equivalent_of_10ns_gbps",
                    opt(eq.bandwidth_equivalent_of_10ns),
                ),
                (
                    "latency_equivalent_of_bandwidth_ns",
                    opt(eq.latency_equivalent_of_bandwidth),
                ),
            ])
        })
        .collect();
    Ok(Json::obj(vec![
        ("system", system_json(&system)),
        ("workloads", Json::Arr(rows)),
    ]))
}

struct CapacityOption {
    label: String,
    channels: u32,
    mega_transfers: f64,
    relative_cost: f64,
}

fn default_capacity_options() -> Vec<CapacityOption> {
    let mk = |label: &str, channels, mega_transfers, relative_cost| CapacityOption {
        label: label.to_string(),
        channels,
        mega_transfers,
        relative_cost,
    };
    vec![
        mk("2ch DDR3-1333", 2, 1333.0, 0.6),
        mk("2ch DDR3-1867", 2, 1866.7, 0.7),
        mk("4ch DDR3-1333", 4, 1333.0, 0.85),
        mk("4ch DDR3-1867", 4, 1866.7, 1.0),
        mk("6ch DDR3-1867", 6, 1866.7, 1.25),
        mk("8ch DDR3-1867", 8, 1866.7, 1.5),
    ]
}

fn parse_capacity_options(body: &Json) -> Result<Vec<CapacityOption>, ApiError> {
    let Some(value) = body.get("options") else {
        return Ok(default_capacity_options());
    };
    let items = value
        .as_arr()
        .ok_or_else(|| ApiError::bad("field \"options\" must be an array"))?;
    if items.is_empty() {
        return Err(ApiError::bad("field \"options\" must not be empty"));
    }
    if items.len() > MAX_WORKLOADS {
        return Err(ApiError::bad(format!(
            "field \"options\" accepts at most {MAX_WORKLOADS} entries"
        )));
    }
    items
        .iter()
        .map(|item| {
            check_keys(
                item,
                &["label", "channels", "mega_transfers", "relative_cost"],
            )?;
            let channels = opt_u32(item, "channels", 0)?;
            if channels == 0 {
                return Err(ApiError::bad(
                    "each option needs a positive \"channels\" count",
                ));
            }
            let mega_transfers = need_f64(item, "mega_transfers")?;
            let label = match item.get("label") {
                // The default label reaches response bodies (and thus cache
                // keys), so the float must go through the canonical
                // formatter: a bare `{}` would render -0.0 and 0.0
                // differently and split otherwise-identical requests.
                None => {
                    let mts = memsense_experiments::json::fmt_f64(mega_transfers);
                    format!("{channels}ch @{mts} MT/s")
                }
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| ApiError::bad("field \"label\" must be a string"))?
                    .to_string(),
            };
            Ok(CapacityOption {
                label,
                channels,
                mega_transfers,
                relative_cost: opt_f64(item, "relative_cost", 1.0)?,
            })
        })
        .collect()
}

/// `POST /v1/capacity` — capacity planning: solve each candidate memory
/// configuration for the workload, report throughput, the knee where the
/// bandwidth wall lifts, and the cheapest option within `within_pct` of peak.
///
/// # Errors
///
/// [`ApiError`] (400) for malformed requests or infeasible configurations.
pub fn capacity(body: &Json) -> Result<Json, ApiError> {
    check_keys(
        body,
        &["workload", "system", "options", "within_pct", "tag"],
    )?;
    let workload = parse_workload(body)?;
    let system = parse_system(body)?;
    let options = parse_capacity_options(body)?;
    let within_pct = opt_f64(body, "within_pct", 5.0)?;
    if !(0.0..=100.0).contains(&within_pct) {
        return Err(ApiError::bad(
            "field \"within_pct\" must be between 0 and 100",
        ));
    }
    let curve = QueueingCurve::composite_default();

    let results = executor::par_map("serve.capacity", options, |opt| {
        let sys = system
            .clone()
            .with_channels(opt.channels)?
            .with_channel_speed(opt.mega_transfers)?;
        let solved = solve_cpi(&workload, &sys, &curve)?;
        // Relative throughput in G instructions/s across hardware threads.
        let throughput = sys.hardware_threads() as f64 * sys.core_clock().value() / solved.cpi_eff;
        Ok::<_, ModelError>((opt, sys, solved, throughput))
    })
    .map_err(model_err);
    executor::drain_job_log();
    let results = results?;

    let best = results
        .iter()
        .map(|(_, _, _, t)| *t)
        .fold(f64::MIN, f64::max);
    let knee = results
        .iter()
        .find(|(_, _, solved, _)| solved.regime != Regime::BandwidthBound)
        .map(|(opt, _, _, _)| Json::str(&opt.label))
        .unwrap_or(Json::Null);
    let pick = results
        .iter()
        .filter(|(_, _, _, t)| *t >= (1.0 - within_pct / 100.0) * best)
        .min_by(|a, b| a.0.relative_cost.total_cmp(&b.0.relative_cost));

    let options_json: Vec<Json> = results
        .iter()
        .map(|(opt, sys, solved, throughput)| {
            Json::obj(vec![
                ("label", Json::str(&opt.label)),
                ("channels", Json::num(opt.channels as f64)),
                ("mega_transfers", Json::num(opt.mega_transfers)),
                ("relative_cost", Json::num(opt.relative_cost)),
                (
                    "effective_bandwidth_gbps",
                    Json::num(sys.effective_bandwidth().value()),
                ),
                (
                    "bandwidth_demand_gbps",
                    Json::num(solved.bandwidth_demand.value()),
                ),
                ("cpi", Json::num(solved.cpi_eff)),
                ("utilization", Json::num(solved.utilization)),
                ("regime", Json::str(solved.regime.token())),
                ("throughput_gips", Json::num(*throughput)),
                (
                    "perf_per_cost",
                    Json::num(throughput / best / opt.relative_cost),
                ),
            ])
        })
        .collect();

    Ok(Json::obj(vec![
        ("workload", Json::str(&workload.name)),
        ("segment", Json::str(workload.segment.token())),
        ("system", system_json(&system)),
        ("within_pct", Json::num(within_pct)),
        ("best_throughput_gips", Json::num(best)),
        ("options", Json::Arr(options_json)),
        ("knee", knee),
        (
            "recommendation",
            pick.map(|(opt, _, _, throughput)| {
                Json::obj(vec![
                    ("label", Json::str(&opt.label)),
                    ("relative_cost", Json::num(opt.relative_cost)),
                    ("throughput_gips", Json::num(*throughput)),
                ])
            })
            .unwrap_or(Json::Null),
        ),
    ]))
}

/// `POST /v1/plan` — fleet-scale capacity planning: design-space search
/// over a hardware menu against a traffic mix and per-class SLAs, returning
/// the cost-ranked plan body from `memsense-plan` (`report::plan_json`).
///
/// The request body is a plan spec (`traffic`, `sla`, `hardware`,
/// `colocate`, `node`) plus the usual opaque `tag`; an empty body plans the
/// worked example mix. Spec-validation failures carry the offending field
/// path in the error body: `{"error": …, "field": …}`.
///
/// # Errors
///
/// [`ApiError`] (400) for malformed requests, invalid specs, or candidate
/// evaluations the model rejects.
pub fn plan_endpoint(body: &Json) -> Result<Json, ApiError> {
    check_keys(
        body,
        &["traffic", "sla", "hardware", "colocate", "node", "tag"],
    )?;
    // `tag` is serve-level (a cache-key salt); the spec parser does not know
    // it, so strip it before handing the object over.
    let spec_body = match body {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(key, _)| key != "tag")
                .cloned()
                .collect(),
        ),
        _ => body.clone(),
    };
    let spec = if matches!(&spec_body, Json::Obj(fields) if fields.is_empty()) {
        PlanSpec::example()
    } else {
        PlanSpec::from_json(&spec_body).map_err(plan_err)?
    };
    let plan = memsense_plan::planner::plan(&spec);
    // The planner fans candidate evaluations through the shared executor;
    // a long-lived daemon must drain its job log (see `sweep`).
    executor::drain_job_log();
    let body = memsense_plan::report::plan_json(&plan.map_err(plan_err)?);
    // The wire writes `Json::to_string` (insertion order); re-parse the
    // canonical form so the served bytes equal the `memsense-plan --out`
    // and repro-stage plan.json bodies exactly, not just semantically.
    Json::parse(&body.canonical()).map_err(|e| ApiError {
        status: 500,
        message: format!("plan body failed to round-trip: {e}"),
        field: None,
    })
}

fn plan_err(e: PlanError) -> ApiError {
    match e {
        PlanError::Spec { field, message } => ApiError::bad_field(field, message),
        PlanError::Model(e) => model_err(e),
    }
}

// ---------------------------------------------------------------------------
// Stream sessions
// ---------------------------------------------------------------------------

fn stream_err(e: StreamError) -> ApiError {
    match e {
        StreamError::InvalidDelta(message) => ApiError::bad(message),
        StreamError::Model(e) => model_err(e),
    }
}

/// Parses `POST /v1/stream/open`: the initial grid spec plus the batching
/// knob. Fields: `workloads` (default: the three Tab. 6 classes),
/// `weights` (parallel array, default all 1.0), `deltas`/`steps_ns` (the
/// two sweep axes, paper defaults), `system` (paper-baseline overrides),
/// `batch` (default 1).
///
/// # Errors
///
/// [`ApiError`] (400) for malformed bodies or invalid grid specs —
/// including grids whose *total* cell count (workloads × bandwidth ×
/// latency) exceeds [`memsense_stream::grid::MAX_GRID_CELLS`]; the
/// per-axis caps alone would admit products large enough to abort the
/// daemon on allocation.
pub fn stream_open(body: &Json) -> Result<(GridSpec, usize), ApiError> {
    check_keys(
        body,
        &[
            "workloads",
            "weights",
            "deltas",
            "steps_ns",
            "system",
            "batch",
        ],
    )?;
    let workloads = parse_workloads(body)?;
    let weights = match body.get("weights") {
        None => vec![1.0; workloads.len()],
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| ApiError::bad("field \"weights\" must be an array of numbers"))?;
            if items.len() != workloads.len() {
                return Err(ApiError::bad(format!(
                    "field \"weights\" must have one entry per workload ({} != {})",
                    items.len(),
                    workloads.len()
                )));
            }
            items
                .iter()
                .map(|w| {
                    w.as_f64()
                        .ok_or_else(|| ApiError::bad("field \"weights\" must contain only numbers"))
                })
                .collect::<Result<Vec<f64>, ApiError>>()?
        }
    };
    let mix = workloads
        .into_iter()
        .zip(weights)
        .map(|(workload, weight)| MixEntry { workload, weight })
        .collect();
    let deltas = parse_axis(body, "deltas", default_bandwidth_deltas())?;
    let steps = parse_axis(body, "steps_ns", default_latency_steps())?;
    let system = parse_system(body)?;
    let batch = opt_u32(body, "batch", 1)? as usize;
    if batch == 0 || batch > MAX_AXIS_POINTS {
        return Err(ApiError::bad(format!(
            "field \"batch\" must be in 1..={MAX_AXIS_POINTS}"
        )));
    }
    let spec = GridSpec::validated(mix, deltas, steps, system).map_err(stream_err)?;
    Ok((spec, batch))
}

/// Parses `POST /v1/stream/{id}/delta`: `{"deltas": [op, …]}` where each op
/// is an object tagged by `"op"`:
///
/// * `{"op": "add_bandwidth", "delta": x}` / `{"op": "remove_bandwidth",
///   "delta": x}` — per-core GB/s points on the bandwidth axis,
/// * `{"op": "add_latency", "step_ns": x}` / `{"op": "remove_latency",
///   "step_ns": x}` — added-latency points,
/// * `{"op": "set_weight", "workload": i, "weight": w}` — one mix weight,
/// * `{"op": "set_system", "system": {…}}` — paper-baseline overrides (the
///   same shape as every other endpoint's `system` field),
/// * `{"op": "flush"}` — apply pending deltas regardless of the batch knob.
///
/// # Errors
///
/// [`ApiError`] (400) for malformed bodies or unknown ops.
pub fn stream_deltas(body: &Json) -> Result<Vec<Delta>, ApiError> {
    check_keys(body, &["deltas"])?;
    let items = body
        .get("deltas")
        .and_then(Json::as_arr)
        .ok_or_else(|| ApiError::bad("field \"deltas\" must be an array of delta ops"))?;
    if items.is_empty() {
        return Err(ApiError::bad("field \"deltas\" must not be empty"));
    }
    if items.len() > MAX_AXIS_POINTS {
        return Err(ApiError::bad(format!(
            "field \"deltas\" accepts at most {MAX_AXIS_POINTS} ops"
        )));
    }
    items.iter().map(parse_delta).collect()
}

fn parse_delta(op: &Json) -> Result<Delta, ApiError> {
    let kind = op
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad("each delta op needs a string \"op\" field"))?;
    match kind {
        "add_bandwidth" => {
            check_keys(op, &["op", "delta"])?;
            Ok(Delta::AddBandwidth(need_f64(op, "delta")?))
        }
        "remove_bandwidth" => {
            check_keys(op, &["op", "delta"])?;
            Ok(Delta::RemoveBandwidth(need_f64(op, "delta")?))
        }
        "add_latency" => {
            check_keys(op, &["op", "step_ns"])?;
            Ok(Delta::AddLatency(need_f64(op, "step_ns")?))
        }
        "remove_latency" => {
            check_keys(op, &["op", "step_ns"])?;
            Ok(Delta::RemoveLatency(need_f64(op, "step_ns")?))
        }
        "set_weight" => {
            check_keys(op, &["op", "workload", "weight"])?;
            let workload = op
                .get("workload")
                .and_then(Json::as_u64)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| {
                    ApiError::bad("field \"workload\" must be a non-negative integer index")
                })?;
            Ok(Delta::SetWeight {
                workload,
                weight: need_f64(op, "weight")?,
            })
        }
        "set_system" => {
            check_keys(op, &["op", "system"])?;
            // `parse_system` reads the `system` key of the object it is
            // given, which is exactly this op's shape.
            Ok(Delta::SetSystem(parse_system(op)?))
        }
        "flush" => {
            check_keys(op, &["op"])?;
            Ok(Delta::Flush)
        }
        other => Err(ApiError::bad(format!(
            "unknown delta op {other:?} (expected add_bandwidth, remove_bandwidth, \
             add_latency, remove_latency, set_weight, set_system, or flush)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(raw: &str) -> Json {
        Json::parse(raw).expect("test body parses")
    }

    #[test]
    fn solve_matches_direct_library_call() {
        let response = solve(&body("{}")).unwrap();
        let direct = solve_cpi(
            &WorkloadParams::big_data_class(),
            &SystemConfig::paper_baseline(),
            &QueueingCurve::composite_default(),
        )
        .unwrap();
        let solved = response.get("solved").unwrap();
        assert_eq!(
            solved.get("cpi_eff").and_then(Json::as_f64),
            Some(direct.cpi_eff)
        );
        assert_eq!(
            solved.get("regime").and_then(Json::as_str),
            Some(direct.regime.token())
        );
        assert_eq!(
            response.get("workload").and_then(Json::as_str),
            Some("Big Data class")
        );
    }

    #[test]
    fn solve_accepts_named_workload_and_system_overrides() {
        let response = solve(&body(
            r#"{"workload": "hpc", "system": {"unloaded_latency_ns": 135, "channels_per_socket": 2}}"#,
        ))
        .unwrap();
        let system = response.get("system").unwrap();
        assert_eq!(
            system.get("unloaded_latency_ns").and_then(Json::as_f64),
            Some(135.0)
        );
        assert_eq!(system.get("channels").and_then(Json::as_u64), Some(2));
        assert_eq!(response.get("segment").and_then(Json::as_str), Some("hpc"));
    }

    #[test]
    fn solve_accepts_custom_workload_object() {
        let response = solve(&body(
            r#"{"workload": {"name": "mine", "segment": "enterprise",
                "cpi_cache": 1.0, "bf": 0.4, "mpki": 5.0, "wbr": 0.3}}"#,
        ))
        .unwrap();
        assert_eq!(
            response.get("workload").and_then(Json::as_str),
            Some("mine")
        );
        let cpi = response
            .get("solved")
            .and_then(|s| s.get("cpi_eff"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(cpi > 1.0);
    }

    #[test]
    fn unknown_fields_and_workloads_are_rejected() {
        assert_eq!(
            solve(&body(r#"{"wrkload": "hpc"}"#)).unwrap_err().status,
            400
        );
        assert_eq!(
            solve(&body(r#"{"workload": "no-such-thing"}"#))
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(solve(&body("[1,2,3]")).unwrap_err().status, 400);
    }

    #[test]
    fn bandwidth_sweep_matches_direct_library_call() {
        let response = sweep(SweepKind::Bandwidth, &body("{}")).unwrap();
        let direct = bandwidth_sweep(
            &WorkloadParams::big_data_class(),
            &SystemConfig::paper_baseline(),
            &QueueingCurve::composite_default(),
            &default_bandwidth_deltas(),
        )
        .unwrap();
        let classes = response.get("workloads").and_then(Json::as_arr).unwrap();
        assert_eq!(classes.len(), 3, "defaults to the three Tab. 6 classes");
        let big_data = classes
            .iter()
            .find(|c| c.get("segment").and_then(Json::as_str) == Some("big_data"))
            .unwrap();
        let points = big_data.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), direct.len());
        for (got, want) in points.iter().zip(&direct) {
            assert_eq!(
                got.get("cpi").and_then(Json::as_f64),
                Some(want.solved.cpi_eff)
            );
            assert_eq!(
                got.get("cpi_ratio").and_then(Json::as_f64),
                Some(want.cpi_ratio)
            );
        }
    }

    #[test]
    fn latency_sweep_uses_steps_axis() {
        let response = sweep(
            SweepKind::Latency,
            &body(r#"{"workloads": ["enterprise"], "steps_ns": [0, 25, 50]}"#),
        )
        .unwrap();
        assert_eq!(
            response.get("sweep").and_then(Json::as_str),
            Some("latency")
        );
        let classes = response.get("workloads").and_then(Json::as_arr).unwrap();
        assert_eq!(classes.len(), 1);
        let points = classes[0].get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(
            points[2].get("unloaded_latency_ns").and_then(Json::as_f64),
            Some(125.0)
        );
    }

    #[test]
    fn equivalence_matches_direct_library_call() {
        let response = equivalence_endpoint(&body(r#"{"workloads": ["hpc"]}"#)).unwrap();
        let direct = equivalence(
            &WorkloadParams::hpc_class(),
            &SystemConfig::paper_baseline(),
            &QueueingCurve::composite_default(),
        )
        .unwrap();
        let row = &response.get("workloads").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(
            row.get("benefit_of_bandwidth_pct").and_then(Json::as_f64),
            Some(direct.benefit_of_bandwidth_pct)
        );
        // HPC: no latency reduction compensates for bandwidth (Sec. VI.D).
        assert!(row
            .get("latency_equivalent_of_bandwidth_ns")
            .is_some_and(Json::is_null));
    }

    #[test]
    fn capacity_reports_knee_and_recommendation() {
        let response = capacity(&body("{}")).unwrap();
        let options = response.get("options").and_then(Json::as_arr).unwrap();
        assert_eq!(options.len(), 6);
        assert!(response.get("knee").is_some());
        let recommendation = response.get("recommendation").unwrap();
        assert!(
            recommendation.get("label").is_some(),
            "default scenario has a recommendation"
        );
        let best = response
            .get("best_throughput_gips")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(best > 0.0);
    }

    #[test]
    fn plan_matches_direct_library_call() {
        let response = plan_endpoint(&body("{}")).unwrap();
        let direct = memsense_plan::planner::plan(&PlanSpec::example()).unwrap();
        let direct_json = memsense_plan::report::plan_json(&direct);
        assert_eq!(response.canonical(), direct_json.canonical());
        // The opaque tag changes nothing but the cache key.
        let tagged = plan_endpoint(&body(r#"{"tag": "t1"}"#)).unwrap();
        assert_eq!(tagged.canonical(), direct_json.canonical());
    }

    #[test]
    fn plan_accepts_a_full_spec() {
        let spec = PlanSpec::example_json().canonical();
        let response = plan_endpoint(&body(&spec)).unwrap();
        assert_eq!(
            response.get("schema").and_then(Json::as_str),
            Some(memsense_plan::report::SCHEMA)
        );
        assert!(response
            .get("recommendation")
            .and_then(Json::as_str)
            .is_some());
    }

    #[test]
    fn plan_spec_errors_carry_the_field_path() {
        let err = plan_endpoint(&body(
            r#"{"traffic": [{"workload": "big data", "mreq_per_s": -1}]}"#,
        ))
        .unwrap_err();
        assert_eq!(err.status, 400);
        let rendered = Json::parse(&err.body()).unwrap();
        assert_eq!(
            rendered.get("field").and_then(Json::as_str),
            Some("traffic[0].mreq_per_s")
        );
        assert!(rendered.get("error").and_then(Json::as_str).is_some());
        // Unknown top-level fields are still the generic serve 400.
        let err = plan_endpoint(&body(r#"{"trafic": []}"#)).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.field.is_none());
    }

    #[test]
    fn infeasible_parameters_surface_as_400() {
        let err = sweep(SweepKind::Bandwidth, &body(r#"{"deltas": [-1000.0]}"#)).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("model error"), "{}", err.message);
    }

    #[test]
    fn stream_open_rejects_oversized_cell_products() {
        // Each axis respects the per-axis cap, but the product (3 default
        // workloads × 2048 × 2048 ≈ 12.6M cells) must be a 400 — not a
        // multi-terabyte allocation on a worker thread.
        let axis: Vec<Json> = (0..2048).map(|i| Json::num(f64::from(i))).collect();
        let spec = Json::obj(vec![
            ("deltas", Json::Arr(axis.clone())),
            ("steps_ns", Json::Arr(axis)),
        ]);
        let err = stream_open(&spec).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("cap"), "{}", err.message);
    }
}
