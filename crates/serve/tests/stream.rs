//! End-to-end stream-session tests: a real server on a loopback port.
//!
//! The load-bearing guarantees: the chunked `updates` bodies served over
//! HTTP are byte-identical to what a library `Session` fed the same ops
//! produces, session-bearing endpoints bypass the result cache (two
//! identical delta POSTs both execute), routing errors map to the right
//! 4xx, and `/metrics` carries the stream counters.

use memsense_experiments::json::Json;
use memsense_model::system::SystemConfig;
use memsense_model::workload::WorkloadParams;
use memsense_serve::http::Client;
use memsense_serve::server::{Server, ServerConfig};
use memsense_stream::grid::GridSpec;
use memsense_stream::session::Session;

fn start() -> Server {
    Server::start(&ServerConfig::default()).expect("bind loopback")
}

fn call(server: &Server, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut client = Client::connect(server.addr()).expect("connect");
    client.request(method, path, body).expect("request")
}

fn parsed(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("response is not valid JSON ({e}): {body}"))
}

/// The grid every test opens: default 3 workload classes × 2 bandwidth
/// points × 2 latency points = 12 cells.
const OPEN_BODY: &str = r#"{"deltas": [0.0, -0.5], "steps_ns": [0.0, 10.0]}"#;

/// The same grid, built directly against the library.
fn open_spec() -> GridSpec {
    GridSpec::validated(
        WorkloadParams::all_classes()
            .into_iter()
            .map(|workload| memsense_stream::grid::MixEntry {
                workload,
                weight: 1.0,
            })
            .collect(),
        vec![0.0, -0.5],
        vec![0.0, 10.0],
        SystemConfig::paper_baseline(),
    )
    .expect("test spec is valid")
}

/// Opens a session over HTTP, returning its id.
fn open_session(server: &Server) -> u64 {
    let (status, body) = call(server, "POST", "/v1/stream/open", OPEN_BODY);
    assert_eq!(status, 200, "{body}");
    let ack = parsed(&body);
    assert_eq!(ack.get("grid_cells").and_then(Json::as_u64), Some(12));
    assert_eq!(ack.get("workloads").and_then(Json::as_u64), Some(3));
    assert_eq!(ack.get("seq").and_then(Json::as_u64), Some(0));
    ack.get("session")
        .and_then(Json::as_u64)
        .expect("session id")
}

/// Renders a library session's drained updates the way the wire does:
/// one NDJSON line per update record.
fn ndjson(session: &mut Session) -> String {
    session
        .take_updates()
        .into_iter()
        .map(|u| format!("{}\n", u.body))
        .collect()
}

#[test]
fn updates_over_http_match_the_library_byte_for_byte() {
    let mut server = start();
    let id = open_session(&server);
    let mut reference = Session::open(open_spec(), 1).expect("library session");

    // The opening snapshot (seq 0) arrives as the first chunked response.
    let (status, body) = call(&server, "GET", &format!("/v1/stream/{id}/updates"), "");
    assert_eq!(status, 200);
    assert_eq!(body, ndjson(&mut reference), "opening update diverged");

    // One delta: the incremental update must match the library's bytes.
    let ops = r#"{"deltas": [{"op": "add_bandwidth", "delta": -1.0}]}"#;
    let (status, ack) = call(&server, "POST", &format!("/v1/stream/{id}/delta"), ops);
    assert_eq!(status, 200, "{ack}");
    let ack = parsed(&ack);
    assert_eq!(ack.get("seq").and_then(Json::as_u64), Some(1));
    assert_eq!(ack.get("accepted").and_then(Json::as_u64), Some(1));
    // Single-point delta on a 3×3×2 grid: 6 new cells solved, 12 skipped.
    assert_eq!(ack.get("cells_resolved").and_then(Json::as_u64), Some(6));
    assert_eq!(ack.get("cells_skipped").and_then(Json::as_u64), Some(12));
    reference
        .submit(&[memsense_stream::session::Delta::AddBandwidth(-1.0)])
        .expect("library delta");

    let (status, body) = call(&server, "GET", &format!("/v1/stream/{id}/updates"), "");
    assert_eq!(status, 200);
    assert_eq!(body, ndjson(&mut reference), "incremental update diverged");

    // Drained means drained: the next poll streams an empty body.
    let (status, body) = call(&server, "GET", &format!("/v1/stream/{id}/updates"), "");
    assert_eq!(status, 200);
    assert!(body.is_empty(), "{body}");

    server.stop();
    server.join();
}

#[test]
fn identical_delta_posts_both_execute() {
    // The cache-bypass regression (the reason `bypasses_result_cache`
    // exists): delta POSTs mutate session state, so two byte-identical
    // requests must both run. A cached or single-flight-coalesced second
    // response would replay `seq: 1` instead of advancing to 2.
    let mut server = start();
    let id = open_session(&server);

    let ops = r#"{"deltas": [{"op": "set_weight", "workload": 0, "weight": 2.0}]}"#;
    let path = format!("/v1/stream/{id}/delta");
    let (status, first) = call(&server, "POST", &path, ops);
    assert_eq!(status, 200, "{first}");
    let (status, second) = call(&server, "POST", &path, ops);
    assert_eq!(status, 200, "{second}");

    let first = parsed(&first);
    let second = parsed(&second);
    assert_eq!(first.get("seq").and_then(Json::as_u64), Some(1));
    assert_eq!(
        second.get("seq").and_then(Json::as_u64),
        Some(2),
        "identical delta POST was served from cache instead of executing"
    );
    // Both batches really applied: both polls drain a seq-stamped update.
    let (_, body) = call(&server, "GET", &format!("/v1/stream/{id}/updates"), "");
    let seqs: Vec<u64> = body
        .lines()
        .map(|line| parsed(line).get("seq").and_then(Json::as_u64).unwrap())
        .collect();
    assert_eq!(seqs, vec![0, 1, 2]);

    server.stop();
    server.join();
}

#[test]
fn stream_error_routes() {
    let mut server = start();

    // Unknown session: 404 on both delta and updates.
    let ops = r#"{"deltas": [{"op": "flush"}]}"#;
    let (status, body) = call(&server, "POST", "/v1/stream/999/delta", ops);
    assert_eq!(status, 404);
    assert!(parsed(&body).get("error").is_some(), "{body}");
    let (status, _) = call(&server, "GET", "/v1/stream/999/updates", "");
    assert_eq!(status, 404);

    // Wrong method: 405.
    let (status, _) = call(&server, "GET", "/v1/stream/open", "");
    assert_eq!(status, 405);
    let (status, _) = call(&server, "POST", "/v1/stream/1/updates", "{}");
    assert_eq!(status, 405);

    // Unroutable stream paths: 404.
    let (status, _) = call(&server, "GET", "/v1/stream/nope", "");
    assert_eq!(status, 404);
    let (status, _) = call(&server, "POST", "/v1/stream/1/frobnicate", "{}");
    assert_eq!(status, 404);

    // Malformed ops: 400 naming the problem.
    let id = open_session(&server);
    let (status, body) = call(
        &server,
        "POST",
        &format!("/v1/stream/{id}/delta"),
        r#"{"deltas": [{"op": "teleport"}]}"#,
    );
    assert_eq!(status, 400);
    assert!(
        parsed(&body)
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("teleport"),
        "{body}"
    );

    server.stop();
    server.join();
}

#[test]
fn metrics_report_stream_sessions_and_cell_counters() {
    let mut server = start();
    let id = open_session(&server);
    let ops = r#"{"deltas": [{"op": "add_latency", "step_ns": 20.0}]}"#;
    let (status, _) = call(&server, "POST", &format!("/v1/stream/{id}/delta"), ops);
    assert_eq!(status, 200);

    let (status, body) = call(&server, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics = parsed(&body);
    let stream = metrics.get("stream").expect("stream counters");
    assert_eq!(stream.get("sessions").and_then(Json::as_u64), Some(1));
    assert_eq!(stream.get("deltas").and_then(Json::as_u64), Some(1));
    // Opening solve (12) + one latency point (6 new cells).
    assert_eq!(
        stream.get("cells_resolved").and_then(Json::as_u64),
        Some(18)
    );
    assert_eq!(stream.get("cells_skipped").and_then(Json::as_u64), Some(12));

    // The stream endpoints are first-class metrics labels.
    let labels: Vec<&str> = metrics
        .get("endpoints")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("endpoint").and_then(Json::as_str))
        .collect();
    assert!(labels.contains(&"/v1/stream/open"), "{labels:?}");
    assert!(labels.contains(&"/v1/stream/delta"), "{labels:?}");

    server.stop();
    server.join();
}
