//! End-to-end tests: a real server on a loopback port, driven over TCP.
//!
//! The load-bearing guarantees: responses match direct library calls
//! bit-for-bit, cache hits return byte-identical bodies, sweep responses
//! carry enough precision to reconstruct the repro CLI's CSV output
//! byte-for-byte, and malformed input maps to 4xx JSON errors.

use std::time::Duration;

use memsense_experiments::figures::fig8_table;
use memsense_experiments::json::Json;
use memsense_experiments::render::{f, pct, Table};
use memsense_model::queueing::QueueingCurve;
use memsense_model::sensitivity::equivalence;
use memsense_model::solver::solve_cpi;
use memsense_model::system::SystemConfig;
use memsense_model::workload::WorkloadParams;
use memsense_serve::bench::{self, BenchConfig};
use memsense_serve::http::Client;
use memsense_serve::server::{Server, ServerConfig};

fn start() -> Server {
    Server::start(&ServerConfig::default()).expect("bind loopback")
}

fn call(server: &Server, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut client = Client::connect(server.addr()).expect("connect");
    client.request(method, path, body).expect("request")
}

/// Parses a response body, asserting it is valid JSON.
fn parsed(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("response is not valid JSON ({e}): {body}"))
}

#[test]
fn healthz_metrics_and_error_routes() {
    let mut server = start();

    let (status, body) = call(&server, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"status":"ok"}"#);

    // Unknown route: 404 with a JSON error body.
    let (status, body) = call(&server, "GET", "/no/such/route", "");
    assert_eq!(status, 404);
    assert!(parsed(&body).get("error").is_some(), "{body}");

    // Wrong method on a known route: 405 with a JSON error body.
    let (status, body) = call(&server, "POST", "/healthz", "{}");
    assert_eq!(status, 405);
    assert!(parsed(&body).get("error").is_some(), "{body}");
    let (status, _) = call(&server, "GET", "/v1/solve", "");
    assert_eq!(status, 405);

    // Malformed JSON: 400 with a JSON error body naming the problem.
    let (status, body) = call(&server, "POST", "/v1/solve", "{not json");
    assert_eq!(status, 400);
    let error = parsed(&body);
    assert!(
        error
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("invalid JSON"),
        "{body}"
    );

    // Unknown field: 400, so typos cannot silently fall back to defaults.
    let (status, _) = call(&server, "POST", "/v1/solve", r#"{"workloud": "hpc"}"#);
    assert_eq!(status, 400);

    // /metrics reflects what just happened.
    let (status, body) = call(&server, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics = parsed(&body);
    assert!(
        metrics
            .get("requests_total")
            .and_then(Json::as_u64)
            .unwrap()
            >= 5
    );
    assert!(metrics.get("cache").is_some());

    server.stop();
    server.join();
}

#[test]
fn solve_round_trip_matches_library_bit_for_bit() {
    let mut server = start();
    let (status, body) = call(
        &server,
        "POST",
        "/v1/solve",
        r#"{"workload": "enterprise"}"#,
    );
    assert_eq!(status, 200);
    let response = parsed(&body);

    let direct = solve_cpi(
        &WorkloadParams::enterprise_class(),
        &SystemConfig::paper_baseline(),
        &QueueingCurve::composite_default(),
    )
    .unwrap();
    let solved = response.get("solved").unwrap();
    // f64s survive the wire exactly: the canonical formatter emits the
    // shortest decimal that round-trips to the same bits.
    assert_eq!(
        solved
            .get("cpi_eff")
            .and_then(Json::as_f64)
            .unwrap()
            .to_bits(),
        direct.cpi_eff.to_bits()
    );
    assert_eq!(
        solved
            .get("utilization")
            .and_then(Json::as_f64)
            .unwrap()
            .to_bits(),
        direct.utilization.to_bits()
    );
    assert_eq!(
        solved.get("regime").and_then(Json::as_str),
        Some(direct.regime.token())
    );
    server.stop();
    server.join();
}

#[test]
fn equivalence_round_trip_matches_library() {
    let mut server = start();
    let (status, body) = call(&server, "POST", "/v1/equivalence", "{}");
    assert_eq!(status, 200);
    let rows = parsed(&body);
    let rows = rows.get("workloads").and_then(Json::as_arr).unwrap();
    let classes = WorkloadParams::all_classes();
    assert_eq!(rows.len(), classes.len());
    for (row, class) in rows.iter().zip(&classes) {
        let direct = equivalence(
            class,
            &SystemConfig::paper_baseline(),
            &QueueingCurve::composite_default(),
        )
        .unwrap();
        assert_eq!(
            row.get("workload").and_then(Json::as_str),
            Some(class.name.as_str())
        );
        assert_eq!(
            row.get("benefit_of_latency_pct")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            direct.benefit_of_latency_pct.to_bits()
        );
    }
    server.stop();
    server.join();
}

#[test]
fn cache_hit_is_byte_identical_and_ignores_formatting() {
    let mut server = start();
    let first = r#"{"workloads": ["big data"], "steps_ns": [0, 10, 20]}"#;
    // Same request, different key order, whitespace, and float spelling
    // (-0.0 vs 0): must hit the same cache entry.
    let second = r#"{ "steps_ns": [ -0.0, 10.0, 2e1 ], "workloads": ["big data"] }"#;

    let (status, body_a) = call(&server, "POST", "/v1/sweep/latency", first);
    assert_eq!(status, 200);
    let (status, body_b) = call(&server, "POST", "/v1/sweep/latency", second);
    assert_eq!(status, 200);
    assert_eq!(body_a, body_b, "cache hit must be byte-identical");

    let (_, metrics) = call(&server, "GET", "/metrics", "");
    let metrics = parsed(&metrics);
    let cache = metrics.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));

    server.stop();
    server.join();
}

#[test]
fn sweep_response_reconstructs_fig8_csv_byte_for_byte() {
    let mut server = start();
    // Defaults: the three Tab. 6 classes over the paper's Fig. 8 axis —
    // exactly what the repro CLI tabulates.
    let (status, body) = call(&server, "POST", "/v1/sweep/bandwidth", "{}");
    assert_eq!(status, 200);
    let response = parsed(&body);

    let mut table = Table::new(
        "Fig. 8: CPI increase vs per-core bandwidth reduction",
        &[
            "class",
            "delta_gbps_per_core",
            "bw_per_core",
            "cpi",
            "cpi_increase",
            "regime",
        ],
    );
    for class in response.get("workloads").and_then(Json::as_arr).unwrap() {
        let name = class.get("workload").and_then(Json::as_str).unwrap();
        for point in class.get("points").and_then(Json::as_arr).unwrap() {
            let num = |key: &str| point.get(key).and_then(Json::as_f64).unwrap();
            let regime = point.get("regime").and_then(Json::as_str).unwrap();
            table.row(vec![
                name.to_string(),
                f(num("delta"), 1),
                f(num("bandwidth_per_core_gbps"), 2),
                f(num("cpi"), 3),
                pct(num("cpi_ratio") - 1.0, 1),
                regime.replace('_', " "),
            ]);
        }
    }

    let direct = fig8_table(
        &WorkloadParams::all_classes(),
        &SystemConfig::paper_baseline(),
        &QueueingCurve::composite_default(),
    )
    .unwrap();
    assert_eq!(
        table.to_csv(),
        direct.to_csv(),
        "server sweep must reconstruct the repro CSV byte-for-byte"
    );
    server.stop();
    server.join();
}

#[test]
fn plan_round_trip_matches_library_and_caches() {
    let mut server = start();

    // Round trip: the served plan is the library's plan, byte-for-byte.
    let (status, body_a) = call(&server, "POST", "/v1/plan", "{}");
    assert_eq!(status, 200);
    let direct = memsense_plan::planner::plan(&memsense_plan::spec::PlanSpec::example()).unwrap();
    assert_eq!(
        body_a,
        memsense_plan::report::plan_json(&direct).canonical(),
        "served plan must match the library plan byte-for-byte"
    );

    // Re-query: byte-identical body from the result cache.
    let (status, body_b) = call(&server, "POST", "/v1/plan", "{}");
    assert_eq!(status, 200);
    assert_eq!(body_a, body_b, "cached re-query must be byte-identical");
    let (_, metrics) = call(&server, "GET", "/metrics", "");
    let metrics = parsed(&metrics);
    let cache = metrics.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));

    // /metrics carries latency percentiles under the /v1/plan label.
    let endpoints = metrics.get("endpoints").and_then(Json::as_arr).unwrap();
    let plan_row = endpoints
        .iter()
        .find(|e| e.get("endpoint").and_then(Json::as_str) == Some("/v1/plan"))
        .expect("/v1/plan endpoint row in /metrics");
    assert_eq!(plan_row.get("requests").and_then(Json::as_u64), Some(2));
    assert!(plan_row
        .get("latency_ms_p99")
        .and_then(Json::as_f64)
        .is_some());

    // Invalid spec: 400 whose canonical-JSON body names the field.
    let (status, body) = call(
        &server,
        "POST",
        "/v1/plan",
        r#"{"traffic": [{"workload": "big data", "mreq_per_s": 1, "instructions_per_request": 1e6}],
            "hardware": [{"channels": 4, "mega_transfers": 1866.7, "unloaded_latency_ns": 75,
                          "capacity_gb": 256, "cost": -1}]}"#,
    );
    assert_eq!(status, 400);
    let error = parsed(&body);
    assert_eq!(
        error.get("field").and_then(Json::as_str),
        Some("hardware[0].cost")
    );
    assert!(
        error.get("error").and_then(Json::as_str).is_some(),
        "{body}"
    );

    server.stop();
    server.join();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let mut server = start();
    let (status, body) = call(&server, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("shutting-down"));
    server.join(); // returns because the accept loop observed the flag
    assert!(server.shutdown_requested());
}

/// Reads one full HTTP response (head + Content-Length body) from a raw
/// stream, returning (status, body).
fn read_raw_response(stream: &mut std::net::TcpStream) -> (u16, String) {
    use std::io::Read;
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    let (mut head_end, mut length) = (None, None);
    loop {
        if let (Some(end), Some(len)) = (head_end, length) {
            if raw.len() >= end + len {
                break;
            }
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0 || head_end.is_some(), "connection closed mid-head");
        if n == 0 {
            break;
        }
        raw.extend_from_slice(&chunk[..n]);
        if head_end.is_none() {
            if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                head_end = Some(pos + 4);
                let head = String::from_utf8_lossy(&raw[..pos]).to_string();
                for line in head.lines() {
                    if let Some((name, value)) = line.split_once(':') {
                        if name.trim().eq_ignore_ascii_case("content-length") {
                            length = Some(value.trim().parse::<usize>().expect("length"));
                        }
                    }
                }
            }
        }
    }
    let head_end = head_end.expect("response head");
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = String::from_utf8_lossy(&raw[head_end..]).to_string();
    (status, body)
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_cache_miss() {
    let mut server = start();
    // A heavy body (dense Fig. 8-style axis) so the solve is slow enough for
    // later arrivals to find the flight still open — though the assertions
    // below hold for ANY interleaving: an arrival during the flight joins
    // (coalesced), an arrival after it hits the cache. Only the lead may
    // ever miss.
    const N: usize = 8;
    let body = r#"{"deltas": [0, -0.05, -0.1, -0.15, -0.2, -0.25, -0.3, -0.35, -0.4, -0.45, -0.5, -0.55, -0.6, -0.65, -0.7, -0.75, -0.8, -0.85, -0.9, -0.95, -1.0], "tag": "single-flight-test"}"#;
    let addr = server.addr();
    let barrier = std::sync::Barrier::new(N);
    let mut bodies: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..N {
            handles.push(scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                client
                    .request("POST", "/v1/sweep/bandwidth", body)
                    .expect("request")
            }));
        }
        for handle in handles {
            let (status, text) = handle.join().expect("thread");
            assert_eq!(status, 200, "{text}");
            bodies.push(text);
        }
    });
    for text in &bodies[1..] {
        assert_eq!(
            text, &bodies[0],
            "coalesced responses must be byte-identical"
        );
    }

    let (_, metrics) = call(&server, "GET", "/metrics", "");
    let metrics = parsed(&metrics);
    let cache = metrics.get("cache").unwrap();
    let flight = metrics.get("single_flight").unwrap();
    let misses = cache.get("misses").and_then(Json::as_u64).unwrap();
    let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
    let coalesced = flight.get("coalesced").and_then(Json::as_u64).unwrap();
    assert_eq!(
        misses, 1,
        "exactly one cache miss for {N} identical requests"
    );
    assert_eq!(
        hits + coalesced,
        (N - 1) as u64,
        "every non-lead request either joined the flight or hit the cache"
    );
    assert_eq!(flight.get("in_flight").and_then(Json::as_u64), Some(0));

    server.stop();
    server.join();
}

#[test]
fn duplicate_content_length_is_rejected_on_the_wire() {
    use std::io::Write;
    let mut server = start();
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"POST /v1/solve HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nokok")
        .expect("write");
    stream.flush().expect("flush");
    let (status, body) = read_raw_response(&mut stream);
    assert_eq!(status, 400);
    assert!(body.contains("duplicate Content-Length"), "{body}");
    // Smuggling hygiene: the server must tear the connection down rather
    // than guess where the next request starts.
    let mut rest = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut rest).expect("drain");
    assert!(rest.is_empty(), "connection must be closed after the 400");
    server.stop();
    server.join();
}

#[test]
fn over_capacity_connections_get_a_503() {
    let mut server = Server::start(&ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    // Occupy the single slot with a live keep-alive connection.
    let mut occupant = Client::connect(server.addr()).expect("connect");
    let (status, _) = occupant.request("GET", "/healthz", "").expect("request");
    assert_eq!(status, 200);
    // The next connection is turned away at accept time.
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let (status, body) = read_raw_response(&mut stream);
    assert_eq!(status, 503);
    assert!(body.contains("connection limit reached"), "{body}");
    // The occupant keeps working.
    let (status, _) = occupant.request("GET", "/healthz", "").expect("request");
    assert_eq!(status, 200);
    server.stop();
    server.join();
}

#[test]
fn request_arriving_in_dribbles_is_reassembled() {
    use std::io::Write;
    let mut server = start();
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let body = r#"{"workload": "enterprise"}"#;
    let head = format!(
        "POST /v1/solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    // Trickle the request: head in three fragments, body in two, with
    // pauses long enough that each fragment is a separate readiness edge.
    let mut pieces: Vec<&[u8]> = vec![&head.as_bytes()[..7], &head.as_bytes()[7..20]];
    pieces.push(&head.as_bytes()[20..]);
    pieces.push(&body.as_bytes()[..9]);
    pieces.push(&body.as_bytes()[9..]);
    for piece in pieces {
        stream.write_all(piece).expect("write");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, text) = read_raw_response(&mut stream);
    assert_eq!(status, 200, "{text}");
    // Same bytes as the all-at-once path.
    let (_, direct) = call(&server, "POST", "/v1/solve", body);
    assert_eq!(text, direct);
    server.stop();
    server.join();
}

#[test]
fn bench_measures_a_cache_speedup_in_process() {
    let report = bench::run(&BenchConfig {
        connections: 2,
        duration: Duration::from_millis(500),
        max_requests: Some(200),
        ..BenchConfig::default()
    })
    .expect("bench run");
    assert!(report.requests > 0);
    assert!(report.cold_ms > 0.0);
    assert!(
        report.cache_speedup > 1.0,
        "cache hits should beat the cold solve (got {:.2}x)",
        report.cache_speedup
    );
}
