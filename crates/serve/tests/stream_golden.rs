//! Golden chunked-response determinism: the raw bytes of a
//! `GET /v1/stream/{id}/updates` response — status line, headers, chunk
//! framing, and every NDJSON record — must be byte-identical to a committed
//! fixture regardless of `MEMSENSE_THREADS`.
//!
//! The executor reads `MEMSENSE_THREADS` once per process, so each thread
//! count gets its own server subprocess — an in-process loop would silently
//! test one setting three times. The scripted session is fixed: open a
//! 12-cell grid at batch 2, submit one two-op batch, drain updates.
//!
//! Regenerate the fixture with
//! `MEMSENSE_REGEN_FIXTURES=1 cargo test -p memsense-serve --test stream_golden`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use memsense_model::system::SystemConfig;
use memsense_model::workload::WorkloadParams;
use memsense_serve::http::{chunk_frame, chunked_head, Client, CHUNKED_TERMINATOR};
use memsense_stream::grid::{GridSpec, MixEntry};
use memsense_stream::session::{Delta, Session};

const OPEN_BODY: &str = r#"{"deltas": [0.0, -0.5], "steps_ns": [0.0, 10.0], "batch": 2}"#;
const DELTA_BODY: &str = r#"{"deltas": [{"op": "add_bandwidth", "delta": -1.0}, {"op": "set_weight", "workload": 0, "weight": 2.0}]}"#;

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/stream_updates.raw")
}

/// Spawns a server subprocess and returns it with its bound address,
/// scraped from the "listening on" line. The stdout reader is returned too
/// and must stay alive until shutdown: dropping the pipe early makes the
/// child's final `println!` fail.
fn spawn_server(threads: &str) -> (Child, String, std::io::BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_memsense-serve"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .env("MEMSENSE_THREADS", threads)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn memsense-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("read listening line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("listening line carries the address")
        .to_string();
    (child, addr, reader)
}

/// Runs the fixed session script against a live server and captures the
/// *raw* bytes of the final updates response (head + chunk frames +
/// terminator), reading off a raw socket so no client-side dechunking can
/// mask a framing regression.
fn scripted_updates_raw(addr: &str) -> Vec<u8> {
    let mut client = Client::connect(addr).expect("connect");
    let (status, body) = client
        .request("POST", "/v1/stream/open", OPEN_BODY)
        .expect("open");
    assert_eq!(status, 200, "{body}");
    let (status, body) = client
        .request("POST", "/v1/stream/1/delta", DELTA_BODY)
        .expect("delta");
    assert_eq!(status, 200, "{body}");

    let mut raw = TcpStream::connect(addr).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    raw.write_all(
        b"GET /v1/stream/1/updates HTTP/1.1\r\nHost: memsense\r\nContent-Length: 0\r\n\r\n",
    )
    .expect("send updates request");
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    while !bytes.ends_with(CHUNKED_TERMINATOR.as_bytes()) {
        let n = raw.read(&mut chunk).expect("read chunked response");
        assert!(n > 0, "connection closed before the terminating chunk");
        bytes.extend_from_slice(&chunk[..n]);
    }
    bytes
}

fn shutdown(addr: &str, mut child: Child) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let _ = client.request("POST", "/v1/admin/shutdown", "");
    let _ = child.wait();
}

/// The same script run directly against the library, rendered with the
/// exact wire framing the reactor uses.
fn expected_raw() -> Vec<u8> {
    let spec = GridSpec::validated(
        WorkloadParams::all_classes()
            .into_iter()
            .map(|workload| MixEntry {
                workload,
                weight: 1.0,
            })
            .collect(),
        vec![0.0, -0.5],
        vec![0.0, 10.0],
        SystemConfig::paper_baseline(),
    )
    .expect("fixture spec is valid");
    let mut session = Session::open(spec, 2).expect("library session");
    session
        .submit(&[
            Delta::AddBandwidth(-1.0),
            Delta::SetWeight {
                workload: 0,
                weight: 2.0,
            },
        ])
        .expect("library deltas");
    let mut bytes = chunked_head(200, true).into_bytes();
    for update in session.take_updates() {
        bytes.extend_from_slice(chunk_frame(&format!("{}\n", update.body)).as_bytes());
    }
    bytes.extend_from_slice(CHUNKED_TERMINATOR.as_bytes());
    bytes
}

#[test]
fn golden_updates_response_is_byte_identical_across_thread_counts() {
    let golden = std::fs::read(fixture()).expect("committed stream_updates.raw fixture");
    for threads in ["1", "2", "8"] {
        let (child, addr, _stdout) = spawn_server(threads);
        let raw = scripted_updates_raw(&addr);
        shutdown(&addr, child);
        assert_eq!(
            raw, golden,
            "updates response must be byte-identical to the committed fixture \
             at MEMSENSE_THREADS={threads}"
        );
    }
}

#[test]
fn golden_fixture_matches_the_library() {
    // The committed fixture is not stale: replaying the script through the
    // library and the wire-framing helpers reproduces it exactly.
    let expected = expected_raw();
    if std::env::var_os("MEMSENSE_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(fixture().parent().expect("fixture dir"))
            .expect("create fixtures dir");
        std::fs::write(fixture(), &expected).expect("write fixture");
    }
    let golden = std::fs::read(fixture()).expect("committed stream_updates.raw fixture");
    assert_eq!(
        expected, golden,
        "committed stream fixture is stale; regenerate with \
         MEMSENSE_REGEN_FIXTURES=1"
    );
}
