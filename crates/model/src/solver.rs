//! Coupled CPI / bandwidth / queueing solver (paper Sec. VI.C.1).
//!
//! Eq. 1 needs the loaded miss penalty; the miss penalty depends on queueing
//! delay; queueing delay depends on bandwidth utilization; and utilization
//! depends (through Eq. 4) on the CPI that Eq. 1 produces. The paper resolves
//! this circularity with "an iterative calculation to find a stable solution
//! for queuing delay vs. bandwidth demand" — this module implements that
//! fixed point, plus the bandwidth-bound fallback when no stable solution
//! exists below the maximum stable utilization.

use crate::bandwidth;
use crate::cpi;
use crate::queueing::QueueingCurve;
use crate::system::SystemConfig;
use crate::units::{Cycles, GigabytesPerSecond, Nanoseconds};
use crate::workload::WorkloadParams;
use crate::ModelError;

/// Which constraint determines the workload's performance on this system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Memory stalls contribute less than ~2% on top of `CPI_cache`; the
    /// workload shows essentially no sensitivity to the memory subsystem
    /// (the proximity-search case the paper excludes from Tab. 6).
    CoreBound,
    /// A stable solution exists below the maximum stable utilization; CPI is
    /// set by Eq. 1 at the loaded latency (compulsory + queueing delay).
    LatencyLimited,
    /// Demand exceeds what the channels can deliver; CPI is set by Eq. 4
    /// solved with `BW` equal to the available bandwidth.
    BandwidthBound,
}

impl core::fmt::Display for Regime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Regime::CoreBound => write!(f, "core bound"),
            Regime::LatencyLimited => write!(f, "latency limited"),
            Regime::BandwidthBound => write!(f, "bandwidth bound"),
        }
    }
}

impl Regime {
    /// Stable machine-readable token (snake_case), for wire formats that
    /// should not depend on the human-facing [`Display`](core::fmt::Display)
    /// text.
    pub fn token(&self) -> &'static str {
        match self {
            Regime::CoreBound => "core_bound",
            Regime::LatencyLimited => "latency_limited",
            Regime::BandwidthBound => "bandwidth_bound",
        }
    }

    /// Parses a regime from its [`token`](Regime::token) (or the display
    /// text), case-insensitively and tolerant of `-`/`_`/space separators.
    pub fn from_token(s: &str) -> Option<Regime> {
        match s
            .trim()
            .to_lowercase()
            .replace(['-', '_', ' '], "")
            .as_str()
        {
            "corebound" => Some(Regime::CoreBound),
            "latencylimited" => Some(Regime::LatencyLimited),
            "bandwidthbound" => Some(Regime::BandwidthBound),
            _ => None,
        }
    }
}

/// The converged operating point for a workload on a system.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvedCpi {
    /// Effective cycles per instruction.
    pub cpi_eff: f64,
    /// Loaded miss penalty (compulsory + queueing) in wall-clock terms.
    pub miss_penalty: Nanoseconds,
    /// Loaded miss penalty in core cycles (what Eq. 1 consumed).
    pub miss_penalty_cycles: Cycles,
    /// Queueing-delay component of the miss penalty.
    pub queueing_delay: Nanoseconds,
    /// System-wide bandwidth demand at the converged CPI.
    pub bandwidth_demand: GigabytesPerSecond,
    /// Demand as a fraction of effective bandwidth.
    pub utilization: f64,
    /// Constraint that set the CPI.
    pub regime: Regime,
    /// Fixed-point iterations performed.
    pub iterations: usize,
}

impl SolvedCpi {
    /// Instruction throughput relative to another operating point
    /// (`other.cpi / self.cpi`); values above 1.0 mean `self` is faster.
    pub fn speedup_over(&self, other: &SolvedCpi) -> f64 {
        other.cpi_eff / self.cpi_eff
    }

    /// Decomposes the CPI into the Emma-style stack the paper builds on:
    /// infinite-cache CPI + compulsory-latency stall + queueing stall
    /// (+ bandwidth-wall residual when the Eq. 4 ceiling binds).
    pub fn cpi_stack(&self, workload: &WorkloadParams, system: &SystemConfig) -> CpiStack {
        let clock = system.core_clock();
        let compulsory =
            cpi::memory_cpi_component(workload, system.unloaded_latency().to_cycles(clock));
        let queueing = cpi::memory_cpi_component(workload, self.queueing_delay.to_cycles(clock));
        let explained = workload.cpi_cache + compulsory + queueing;
        CpiStack {
            cpi_cache: workload.cpi_cache,
            compulsory_stall: compulsory,
            queueing_stall: queueing,
            bandwidth_residual: (self.cpi_eff - explained).max(0.0),
        }
    }
}

/// A CPI breakdown (see [`SolvedCpi::cpi_stack`]). Components sum to the
/// effective CPI (up to the clamped bandwidth residual).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiStack {
    /// Infinite-cache CPI.
    pub cpi_cache: f64,
    /// Stall CPI attributable to the compulsory memory latency.
    pub compulsory_stall: f64,
    /// Stall CPI attributable to queueing delay.
    pub queueing_stall: f64,
    /// CPI beyond the latency-limited model when the workload is pinned to
    /// the bandwidth ceiling (zero for latency-limited workloads).
    pub bandwidth_residual: f64,
}

impl CpiStack {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.cpi_cache + self.compulsory_stall + self.queueing_stall + self.bandwidth_residual
    }

    /// Fraction of CPI spent stalled on memory (everything but `cpi_cache`).
    /// An all-zero stack has no memory component, so the fraction is 0.
    pub fn memory_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            1.0 - self.cpi_cache / total
        }
    }
}

impl core::fmt::Display for CpiStack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "core {:.3} + compulsory {:.3} + queueing {:.3} + bw-wall {:.3} = {:.3}",
            self.cpi_cache,
            self.compulsory_stall,
            self.queueing_stall,
            self.bandwidth_residual,
            self.total()
        )
    }
}

/// Process-wide solver telemetry: counts of solves, fixed-point iterations,
/// and regime outcomes, accumulated across threads with relaxed atomics.
///
/// The experiment executor snapshots these around each pipeline stage to
/// build its run report; nothing in the model reads them. Counters are
/// cumulative — take [`telemetry::snapshot`] deltas to scope a window.
pub mod telemetry {
    use super::Regime;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SOLVES: AtomicU64 = AtomicU64::new(0);
    static ITERATIONS: AtomicU64 = AtomicU64::new(0);
    static CORE_BOUND: AtomicU64 = AtomicU64::new(0);
    static LATENCY_LIMITED: AtomicU64 = AtomicU64::new(0);
    static BANDWIDTH_BOUND: AtomicU64 = AtomicU64::new(0);

    /// A point-in-time copy of the cumulative solver counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct SolverStats {
        /// Completed `solve_cpi` calls.
        pub solves: u64,
        /// Total bisection iterations across all solves.
        pub iterations: u64,
        /// Solves that classified the workload core bound.
        pub core_bound: u64,
        /// Solves that classified the workload latency limited.
        pub latency_limited: u64,
        /// Solves that classified the workload bandwidth bound.
        pub bandwidth_bound: u64,
    }

    impl SolverStats {
        /// Counter-wise difference `self − earlier` (saturating).
        pub fn since(&self, earlier: &SolverStats) -> SolverStats {
            SolverStats {
                solves: self.solves.saturating_sub(earlier.solves),
                iterations: self.iterations.saturating_sub(earlier.iterations),
                core_bound: self.core_bound.saturating_sub(earlier.core_bound),
                latency_limited: self.latency_limited.saturating_sub(earlier.latency_limited),
                bandwidth_bound: self.bandwidth_bound.saturating_sub(earlier.bandwidth_bound),
            }
        }
    }

    /// Reads the cumulative counters.
    pub fn snapshot() -> SolverStats {
        SolverStats {
            solves: SOLVES.load(Ordering::Relaxed),
            iterations: ITERATIONS.load(Ordering::Relaxed),
            core_bound: CORE_BOUND.load(Ordering::Relaxed),
            latency_limited: LATENCY_LIMITED.load(Ordering::Relaxed),
            bandwidth_bound: BANDWIDTH_BOUND.load(Ordering::Relaxed),
        }
    }

    pub(super) fn record(iterations: usize, regime: Regime) {
        SOLVES.fetch_add(1, Ordering::Relaxed);
        ITERATIONS.fetch_add(iterations as u64, Ordering::Relaxed);
        let counter = match regime {
            Regime::CoreBound => &CORE_BOUND,
            Regime::LatencyLimited => &LATENCY_LIMITED,
            Regime::BandwidthBound => &BANDWIDTH_BOUND,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Memory-CPI share below which a workload is tagged [`Regime::CoreBound`].
const CORE_BOUND_THRESHOLD: f64 = 0.02;

const MAX_ITERATIONS: usize = 10_000;
const TOLERANCE_NS: f64 = 1e-9;

/// Solves for the stable CPI of `workload` on `system` with queueing
/// behaviour `curve`.
///
/// The fixed point iterates `MP ← unloaded + Q(util(CPI(MP)))` with damping.
/// If the iteration settles above the curve's maximum stable utilization, the
/// system is bandwidth bound and CPI comes from Eq. 4 with `BW` set to the
/// available bandwidth (clamped from below by Eq. 1 at the maximum stable
/// loaded latency, which dominates only in pathological configurations).
///
/// # Errors
///
/// Returns [`ModelError::DidNotConverge`] if the damped iteration fails to
/// settle (not observed for monotone queueing curves; defensive).
///
/// # Examples
///
/// ```
/// use memsense_model::queueing::QueueingCurve;
/// use memsense_model::solver::{solve_cpi, Regime};
/// use memsense_model::system::SystemConfig;
/// use memsense_model::workload::WorkloadParams;
///
/// let curve = QueueingCurve::composite_default();
/// let sys = SystemConfig::paper_baseline();
///
/// let ent = solve_cpi(&WorkloadParams::enterprise_class(), &sys, &curve).unwrap();
/// assert_eq!(ent.regime, Regime::LatencyLimited);
///
/// let hpc = solve_cpi(&WorkloadParams::hpc_class(), &sys, &curve).unwrap();
/// assert_eq!(hpc.regime, Regime::BandwidthBound);
/// ```
pub fn solve_cpi(
    workload: &WorkloadParams,
    system: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<SolvedCpi, ModelError> {
    let clock = system.core_clock();
    let threads = system.hardware_threads();
    let available = system.effective_bandwidth();
    let unloaded = system.unloaded_latency();
    let max_util = curve.max_stable_utilization();

    // The residual g(mp) = unloaded + Q(util(CPI(mp))) − mp is strictly
    // decreasing in mp (a longer miss penalty raises CPI, which lowers
    // bandwidth demand, utilization, and queueing delay), so the fixed point
    // is unique and bisection over [unloaded, unloaded + Q_max] always
    // converges — including for the near-vertical measured curves the MLC
    // calibration can produce, where damped iteration oscillates.
    let residual = |mp_ns: f64| -> f64 {
        let cpi = cpi::effective_cpi(workload, Nanoseconds(mp_ns).to_cycles(clock));
        let util = bandwidth::utilization(workload, cpi, clock, threads, available);
        unloaded.value() + curve.delay(util).value() - mp_ns
    };
    let mut lo = unloaded.value();
    let mut hi = unloaded.value() + curve.max_stable_delay().value().max(1.0);
    let mut iterations = 0;
    if residual(lo) <= 0.0 {
        // No queueing at all; the fixed point is the unloaded latency.
        hi = lo;
    } else {
        while hi - lo > TOLERANCE_NS {
            iterations += 1;
            if iterations > MAX_ITERATIONS {
                return Err(ModelError::DidNotConverge {
                    iterations: MAX_ITERATIONS,
                });
            }
            let mid = 0.5 * (lo + hi);
            if residual(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    let mp_ns = 0.5 * (lo + hi);

    let latency_limited_cpi = cpi::effective_cpi(workload, Nanoseconds(mp_ns).to_cycles(clock));
    let util_at_fixed_point =
        bandwidth::utilization(workload, latency_limited_cpi, clock, threads, available);

    if util_at_fixed_point > max_util {
        // Bandwidth bound: Eq. 4 solved for CPI with BW = available. The
        // loaded latency saturates at compulsory + maximum stable queueing
        // delay (paper Sec. VI.C.3: "the loaded latency is the compulsory
        // latency plus the maximum stable queuing delay from Fig. 7").
        let mp = Nanoseconds(unloaded.value() + curve.max_stable_delay().value());
        let bw_cpi = bandwidth::bandwidth_limited_cpi(workload, available, clock, threads)?;
        let lat_cpi = cpi::effective_cpi(workload, mp.to_cycles(clock));
        let cpi_eff = bw_cpi.max(lat_cpi);
        let demand = bandwidth::demand_system(workload, cpi_eff, clock, threads);
        telemetry::record(iterations, Regime::BandwidthBound);
        return Ok(SolvedCpi {
            cpi_eff,
            miss_penalty: mp,
            miss_penalty_cycles: mp.to_cycles(clock),
            queueing_delay: curve.max_stable_delay(),
            bandwidth_demand: demand,
            utilization: demand.value() / available.value(),
            regime: Regime::BandwidthBound,
            iterations,
        });
    }

    let mp = Nanoseconds(mp_ns);
    let memory_share = cpi::memory_cpi_component(workload, mp.to_cycles(clock))
        / latency_limited_cpi.max(f64::MIN_POSITIVE);
    let regime = if memory_share < CORE_BOUND_THRESHOLD {
        Regime::CoreBound
    } else {
        Regime::LatencyLimited
    };
    let demand = bandwidth::demand_system(workload, latency_limited_cpi, clock, threads);
    telemetry::record(iterations, regime);
    Ok(SolvedCpi {
        cpi_eff: latency_limited_cpi,
        miss_penalty: mp,
        miss_penalty_cycles: mp.to_cycles(clock),
        queueing_delay: mp - unloaded,
        bandwidth_demand: demand,
        utilization: util_at_fixed_point,
        regime,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Segment;

    fn curve() -> QueueingCurve {
        QueueingCurve::composite_default()
    }

    #[test]
    fn enterprise_is_latency_limited_at_baseline() {
        let s = solve_cpi(
            &WorkloadParams::enterprise_class(),
            &SystemConfig::paper_baseline(),
            &curve(),
        )
        .unwrap();
        assert_eq!(s.regime, Regime::LatencyLimited);
        // CPI_cache 1.47 + 0.0067 × (75+q)·2.7 × 0.41 ≈ 2.03–2.08
        assert!((s.cpi_eff - 2.05).abs() < 0.1, "cpi = {}", s.cpi_eff);
        assert!(s.utilization < 0.45, "util = {}", s.utilization);
        assert!(s.queueing_delay.value() < 12.0);
    }

    #[test]
    fn big_data_is_latency_limited_with_moderate_utilization() {
        let s = solve_cpi(
            &WorkloadParams::big_data_class(),
            &SystemConfig::paper_baseline(),
            &curve(),
        )
        .unwrap();
        assert_eq!(s.regime, Regime::LatencyLimited);
        assert!(
            s.utilization > 0.4 && s.utilization < 0.8,
            "util = {}",
            s.utilization
        );
        assert!(
            s.queueing_delay.value() > 1.0,
            "big data sees some queueing"
        );
    }

    #[test]
    fn hpc_is_bandwidth_bound_at_baseline() {
        let s = solve_cpi(
            &WorkloadParams::hpc_class(),
            &SystemConfig::paper_baseline(),
            &curve(),
        )
        .unwrap();
        assert_eq!(s.regime, Regime::BandwidthBound);
        // Demand equals supply at the bandwidth-limited CPI.
        assert!((s.utilization - 1.0).abs() < 1e-9);
        assert!(s.cpi_eff > 2.0, "cpi = {}", s.cpi_eff);
    }

    #[test]
    fn proximity_is_core_bound() {
        let s = solve_cpi(
            &WorkloadParams::proximity(),
            &SystemConfig::paper_baseline(),
            &curve(),
        )
        .unwrap();
        assert_eq!(s.regime, Regime::CoreBound);
        assert!((s.cpi_eff - 0.93).abs() < 0.02);
    }

    #[test]
    fn more_bandwidth_helps_hpc() {
        let base = SystemConfig::paper_baseline();
        let wide = base.clone().with_channels(8).unwrap();
        let w = WorkloadParams::hpc_class();
        let s0 = solve_cpi(&w, &base, &curve()).unwrap();
        let s1 = solve_cpi(&w, &wide, &curve()).unwrap();
        assert!(s1.cpi_eff < s0.cpi_eff);
        assert!(s1.speedup_over(&s0) > 1.5);
    }

    #[test]
    fn lower_latency_helps_enterprise_not_hpc() {
        let base = SystemConfig::paper_baseline();
        let fast = base
            .clone()
            .with_unloaded_latency(Nanoseconds(45.0))
            .unwrap();
        let c = curve();
        let ent = WorkloadParams::enterprise_class();
        let hpc = WorkloadParams::hpc_class();
        let e0 = solve_cpi(&ent, &base, &c).unwrap();
        let e1 = solve_cpi(&ent, &fast, &c).unwrap();
        assert!(e1.cpi_eff < e0.cpi_eff - 0.05);
        let h0 = solve_cpi(&hpc, &base, &c).unwrap();
        let h1 = solve_cpi(&hpc, &fast, &c).unwrap();
        assert!(
            (h1.cpi_eff - h0.cpi_eff).abs() < 1e-9,
            "HPC stays bandwidth bound"
        );
    }

    #[test]
    fn frequency_scaling_raises_cpi() {
        // Faster cores make memory *relatively* slower: CPI_eff grows with
        // clock even though wall-clock performance improves (Sec. V.A).
        let c = curve();
        let w = WorkloadParams::structured_data();
        let mut last = 0.0;
        for ghz in [2.1, 2.4, 2.7, 3.1] {
            let sys = SystemConfig::paper_baseline()
                .with_core_clock(crate::units::GigaHertz(ghz))
                .unwrap();
            let s = solve_cpi(&w, &sys, &c).unwrap();
            assert!(s.cpi_eff > last, "CPI must rise with frequency");
            last = s.cpi_eff;
        }
    }

    #[test]
    fn fixed_point_self_consistent() {
        // At the solution, recomputing the chain MP → CPI → util → Q → MP
        // reproduces the same MP.
        let sys = SystemConfig::paper_baseline();
        let c = curve();
        let w = WorkloadParams::big_data_class();
        let s = solve_cpi(&w, &sys, &c).unwrap();
        let cpi = cpi::effective_cpi(&w, s.miss_penalty.to_cycles(sys.core_clock()));
        assert!((cpi - s.cpi_eff).abs() < 1e-9);
        let util = bandwidth::utilization(
            &w,
            cpi,
            sys.core_clock(),
            sys.hardware_threads(),
            sys.effective_bandwidth(),
        );
        let q = c.delay(util).value();
        assert!((sys.unloaded_latency().value() + q - s.miss_penalty.value()).abs() < 1e-6);
    }

    #[test]
    fn zero_mpki_workload_core_bound_and_stable() {
        let w = WorkloadParams::new("noram", Segment::Hpc, 1.0, 0.5, 0.0, 0.0).unwrap();
        let s = solve_cpi(&w, &SystemConfig::paper_baseline(), &curve()).unwrap();
        assert_eq!(s.regime, Regime::CoreBound);
        assert_eq!(s.cpi_eff, 1.0);
        assert_eq!(s.bandwidth_demand.value(), 0.0);
    }

    #[test]
    fn cpi_stack_sums_to_cpi() {
        let sys = SystemConfig::paper_baseline();
        let c = curve();
        for w in [
            WorkloadParams::enterprise_class(),
            WorkloadParams::big_data_class(),
            WorkloadParams::hpc_class(),
        ] {
            let s = solve_cpi(&w, &sys, &c).unwrap();
            let stack = s.cpi_stack(&w, &sys);
            assert!(
                (stack.total() - s.cpi_eff).abs() < 1e-9,
                "{}: stack {} vs cpi {}",
                w.name,
                stack.total(),
                s.cpi_eff
            );
            assert!(stack.memory_fraction() > 0.0 && stack.memory_fraction() < 1.0);
        }
    }

    #[test]
    fn hpc_stack_has_bandwidth_residual() {
        let sys = SystemConfig::paper_baseline();
        let c = curve();
        let w = WorkloadParams::hpc_class();
        let s = solve_cpi(&w, &sys, &c).unwrap();
        let stack = s.cpi_stack(&w, &sys);
        assert!(stack.bandwidth_residual > 0.1, "{stack}");
        // Latency-limited classes have none.
        let e = WorkloadParams::enterprise_class();
        let se = solve_cpi(&e, &sys, &c).unwrap();
        assert_eq!(se.cpi_stack(&e, &sys).bandwidth_residual, 0.0);
    }

    #[test]
    fn cpi_stack_display() {
        let sys = SystemConfig::paper_baseline();
        let c = curve();
        let w = WorkloadParams::big_data_class();
        let s = solve_cpi(&w, &sys, &c).unwrap();
        let text = s.cpi_stack(&w, &sys).to_string();
        assert!(text.contains("compulsory") && text.contains("queueing"));
    }

    #[test]
    fn memory_fraction_zero_stack_is_zero_not_nan() {
        let stack = CpiStack {
            cpi_cache: 0.0,
            compulsory_stall: 0.0,
            queueing_stall: 0.0,
            bandwidth_residual: 0.0,
        };
        assert_eq!(stack.total(), 0.0);
        let frac = stack.memory_fraction();
        assert!(!frac.is_nan(), "all-zero stack must not be NaN");
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn memory_fraction_pure_core_stack_is_zero() {
        let stack = CpiStack {
            cpi_cache: 1.5,
            compulsory_stall: 0.0,
            queueing_stall: 0.0,
            bandwidth_residual: 0.0,
        };
        assert_eq!(stack.memory_fraction(), 0.0);
    }

    #[test]
    fn telemetry_counts_solves_and_regimes() {
        let before = telemetry::snapshot();
        let sys = SystemConfig::paper_baseline();
        let c = curve();
        solve_cpi(&WorkloadParams::enterprise_class(), &sys, &c).unwrap();
        solve_cpi(&WorkloadParams::hpc_class(), &sys, &c).unwrap();
        let delta = telemetry::snapshot().since(&before);
        assert!(delta.solves >= 2);
        assert!(delta.latency_limited >= 1);
        assert!(delta.bandwidth_bound >= 1);
        assert!(delta.iterations > 0, "bisection iterations recorded");
    }

    #[test]
    fn regime_tokens_round_trip() {
        for regime in [
            Regime::CoreBound,
            Regime::LatencyLimited,
            Regime::BandwidthBound,
        ] {
            assert_eq!(Regime::from_token(regime.token()), Some(regime));
            assert_eq!(Regime::from_token(&regime.to_string()), Some(regime));
        }
        assert_eq!(
            Regime::from_token("latency_limited"),
            Some(Regime::LatencyLimited)
        );
        assert_eq!(Regime::from_token("io bound"), None);
    }

    #[test]
    fn speedup_over_is_ratio() {
        let sys = SystemConfig::paper_baseline();
        let c = curve();
        let a = solve_cpi(&WorkloadParams::enterprise_class(), &sys, &c).unwrap();
        let mut b = a.clone();
        b.cpi_eff = a.cpi_eff * 2.0;
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
    }
}
