//! Co-located workloads sharing one memory system (noisy neighbours).
//!
//! The paper's model treats one homogeneous workload per machine; server
//! consolidation (its own virtualization workload!) mixes classes on one
//! socket. The extension is natural: each co-runner keeps its own Eq. 1
//! parameters, all runners share the channel bandwidth, and one common
//! queueing delay couples them — the joint fixed point is
//! `Q = curve(Σ_i demand_i(CPI_i(Q)) / available)`.
//!
//! The residual is strictly decreasing in `Q` (raising `Q` raises every
//! CPI, lowering every demand), so bisection converges exactly as in the
//! single-workload solver.

use crate::bandwidth;
use crate::cpi;
use crate::queueing::QueueingCurve;
use crate::system::SystemConfig;
use crate::units::{GigabytesPerSecond, Nanoseconds};
use crate::workload::WorkloadParams;
use crate::ModelError;

/// One co-located tenant: a workload class and the number of hardware
/// threads it occupies.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// The tenant's workload parameters.
    pub workload: WorkloadParams,
    /// Hardware threads running this tenant.
    pub threads: u32,
}

/// Per-tenant outcome of a co-location solve.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSolved {
    /// Tenant name (from its workload).
    pub name: String,
    /// Effective CPI under contention.
    pub cpi_eff: f64,
    /// This tenant's bandwidth demand at the solution.
    pub bandwidth: GigabytesPerSecond,
    /// CPI ratio vs running alone on the same machine with the same thread
    /// count (the interference penalty; ≥ 1).
    pub interference: f64,
}

/// Joint outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ColocationSolved {
    /// Per-tenant results, in input order.
    pub tenants: Vec<TenantSolved>,
    /// Shared queueing delay at the solution.
    pub queueing_delay: Nanoseconds,
    /// Total channel utilization.
    pub utilization: f64,
    /// Whether the aggregate demand pinned the system to the bandwidth
    /// ceiling (demands are then scaled to fit).
    pub bandwidth_bound: bool,
}

/// Solves the shared fixed point for tenants co-located on `system`.
///
/// Thread counts must sum to at most the system's hardware threads; unused
/// threads are idle.
///
/// # Errors
///
/// * [`ModelError::InvalidParameter`] for an empty tenant list, zero thread
///   counts, or oversubscription.
///
/// # Examples
///
/// ```
/// use memsense_model::colocation::{solve_colocated, Tenant};
/// use memsense_model::queueing::QueueingCurve;
/// use memsense_model::system::SystemConfig;
/// use memsense_model::workload::WorkloadParams;
///
/// let tenants = vec![
///     Tenant { workload: WorkloadParams::enterprise_class(), threads: 8 },
///     Tenant { workload: WorkloadParams::hpc_class(), threads: 8 },
/// ];
/// let solved = solve_colocated(
///     &tenants,
///     &SystemConfig::paper_baseline(),
///     &QueueingCurve::composite_default(),
/// ).unwrap();
/// // The HPC neighbour drives the channels hard; enterprise pays for it.
/// assert!(solved.tenants[0].interference > 1.01);
/// ```
pub fn solve_colocated(
    tenants: &[Tenant],
    system: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<ColocationSolved, ModelError> {
    if tenants.is_empty() {
        return Err(ModelError::InvalidParameter("no tenants"));
    }
    let total_threads: u32 = tenants.iter().map(|t| t.threads).sum();
    if tenants.iter().any(|t| t.threads == 0) {
        return Err(ModelError::InvalidParameter("tenant threads must be > 0"));
    }
    if total_threads > system.hardware_threads() {
        return Err(ModelError::InvalidParameter(
            "tenants oversubscribe hardware threads",
        ));
    }

    let clock = system.core_clock();
    let available = system.effective_bandwidth();
    let unloaded = system.unloaded_latency();
    let max_util = curve.max_stable_utilization();

    let total_demand = |q: f64| -> f64 {
        tenants
            .iter()
            .map(|t| {
                let mp = Nanoseconds(unloaded.value() + q).to_cycles(clock);
                let cpi_t = cpi::effective_cpi(&t.workload, mp);
                bandwidth::demand_system(&t.workload, cpi_t, clock, t.threads).value()
            })
            .sum::<f64>()
    };
    let residual = |q: f64| -> f64 {
        curve
            .delay((total_demand(q) / available.value()).min(10.0))
            .value()
            - q
    };

    let mut lo = 0.0;
    let mut hi = curve.max_stable_delay().value().max(1.0);
    if residual(lo) <= 0.0 {
        hi = lo;
    } else {
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if residual(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    let q = 0.5 * (lo + hi);
    let mut utilization = total_demand(q) / available.value();
    let bandwidth_bound = utilization > max_util;

    // Per-tenant CPIs at the common loaded latency; if the aggregate is
    // bandwidth bound, scale every tenant's throughput so demand fits —
    // the fair-share analogue of the single-workload Eq. 4 inversion.
    let mp = Nanoseconds(unloaded.value() + q).to_cycles(clock);
    let scale = if bandwidth_bound {
        total_demand(q) / available.value()
    } else {
        1.0
    };
    let mut solved_tenants = Vec::with_capacity(tenants.len());
    for t in tenants {
        let latency_cpi = cpi::effective_cpi(&t.workload, mp);
        let cpi_eff = latency_cpi * scale;
        let demand = bandwidth::demand_system(&t.workload, cpi_eff, clock, t.threads);
        // Alone: same machine, same thread count, no neighbours.
        let alone = solo_cpi(&t.workload, t.threads, system, curve)?;
        solved_tenants.push(TenantSolved {
            name: t.workload.name.clone(),
            cpi_eff,
            bandwidth: demand,
            interference: cpi_eff / alone,
        });
    }
    if bandwidth_bound {
        utilization = 1.0;
    }

    Ok(ColocationSolved {
        tenants: solved_tenants,
        queueing_delay: Nanoseconds(q),
        utilization,
        bandwidth_bound,
    })
}

/// CPI of a workload running alone with `threads` threads on `system`.
fn solo_cpi(
    workload: &WorkloadParams,
    threads: u32,
    system: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<f64, ModelError> {
    let solo = [Tenant {
        workload: workload.clone(),
        threads,
    }];
    // Re-derive without recursion into interference.
    let clock = system.core_clock();
    let available = system.effective_bandwidth();
    let unloaded = system.unloaded_latency();
    let demand = |q: f64| -> f64 {
        let mp = Nanoseconds(unloaded.value() + q).to_cycles(clock);
        let cpi_t = cpi::effective_cpi(&solo[0].workload, mp);
        bandwidth::demand_system(&solo[0].workload, cpi_t, clock, threads).value()
    };
    let residual = |q: f64| {
        curve
            .delay((demand(q) / available.value()).min(10.0))
            .value()
            - q
    };
    let mut lo = 0.0;
    let mut hi = curve.max_stable_delay().value().max(1.0);
    if residual(lo) <= 0.0 {
        hi = lo;
    } else {
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if residual(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    let q = 0.5 * (lo + hi);
    let mp = Nanoseconds(unloaded.value() + q).to_cycles(clock);
    let latency_cpi = cpi::effective_cpi(workload, mp);
    let util = demand(q) / available.value();
    if util > curve.max_stable_utilization() {
        Ok(latency_cpi * util)
    } else {
        Ok(latency_cpi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SystemConfig, QueueingCurve) {
        (
            SystemConfig::paper_baseline(),
            QueueingCurve::composite_default(),
        )
    }

    fn tenant(w: WorkloadParams, threads: u32) -> Tenant {
        Tenant {
            workload: w,
            threads,
        }
    }

    #[test]
    fn hpc_neighbour_hurts_enterprise() {
        let (sys, curve) = setup();
        let mixed = solve_colocated(
            &[
                tenant(WorkloadParams::enterprise_class(), 8),
                tenant(WorkloadParams::hpc_class(), 8),
            ],
            &sys,
            &curve,
        )
        .unwrap();
        let ent = &mixed.tenants[0];
        assert!(
            ent.interference > 1.03,
            "enterprise pays for the HPC neighbour: {}",
            ent.interference
        );
        assert!(
            mixed.utilization > 0.8,
            "channels loaded: {}",
            mixed.utilization
        );
    }

    #[test]
    fn gentle_neighbour_barely_interferes() {
        let (sys, curve) = setup();
        let mixed = solve_colocated(
            &[
                tenant(WorkloadParams::enterprise_class(), 8),
                tenant(WorkloadParams::proximity(), 8),
            ],
            &sys,
            &curve,
        )
        .unwrap();
        let ent = &mixed.tenants[0];
        assert!(
            ent.interference < 1.02,
            "core-bound neighbour is quiet: {}",
            ent.interference
        );
    }

    #[test]
    fn single_tenant_matches_solo() {
        let (sys, curve) = setup();
        let only = solve_colocated(
            &[tenant(WorkloadParams::big_data_class(), 16)],
            &sys,
            &curve,
        )
        .unwrap();
        assert!((only.tenants[0].interference - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interference_grows_with_neighbour_threads() {
        let (sys, curve) = setup();
        let mut last = 1.0;
        for hpc_threads in [2, 4, 8] {
            let mixed = solve_colocated(
                &[
                    tenant(WorkloadParams::enterprise_class(), 8),
                    tenant(WorkloadParams::hpc_class(), hpc_threads),
                ],
                &sys,
                &curve,
            )
            .unwrap();
            let i = mixed.tenants[0].interference;
            assert!(i >= last - 1e-9, "monotone interference: {i} after {last}");
            last = i;
        }
    }

    #[test]
    fn bandwidth_bound_aggregate_scales_everyone() {
        let (sys, curve) = setup();
        let mixed = solve_colocated(
            &[
                tenant(WorkloadParams::hpc_class(), 8),
                tenant(WorkloadParams::hpc_class(), 8),
            ],
            &sys,
            &curve,
        )
        .unwrap();
        assert!(mixed.bandwidth_bound);
        // Total demand equals supply.
        let total: f64 = mixed.tenants.iter().map(|t| t.bandwidth.value()).sum();
        assert!(
            (total - sys.effective_bandwidth().value()).abs() < 0.5,
            "demand {total} vs supply {}",
            sys.effective_bandwidth().value()
        );
    }

    #[test]
    fn validation() {
        let (sys, curve) = setup();
        assert!(solve_colocated(&[], &sys, &curve).is_err());
        assert!(solve_colocated(&[tenant(WorkloadParams::hpc_class(), 0)], &sys, &curve).is_err());
        assert!(solve_colocated(&[tenant(WorkloadParams::hpc_class(), 17)], &sys, &curve).is_err());
    }
}
