//! Analytic memory-performance model from *"Quantifying the Performance
//! Impact of Memory Latency and Bandwidth for Big Data Workloads"*
//! (Clapp et al., IISWC 2015).
//!
//! The model predicts a workload's effective CPI from four counter-derived
//! parameters — infinite-cache CPI, blocking factor, misses per instruction,
//! and writeback rate — plus a platform description (cores, clock, memory
//! channels, compulsory latency) and an empirical queueing-delay curve:
//!
//! * [`cpi`] — Eqs. 1–3: latency-limited CPI and the blocking factor's
//!   relationship to memory-level parallelism.
//! * [`bandwidth`] — Eq. 4: bandwidth demand and bandwidth-limited CPI.
//! * [`queueing`] — the Fig. 7 queueing-delay-vs-utilization curve.
//! * [`solver`] — the fixed point coupling all three, with explicit
//!   core-bound / latency-limited / bandwidth-bound regimes.
//! * [`sensitivity`] — the Fig. 8–11 sweeps and the Tab. 7
//!   latency⇄bandwidth equivalence.
//! * [`hierarchy`] — Eq. 5: multi-level (tiered) memories.
//! * [`colocation`] — co-located tenants sharing one memory system
//!   (noisy-neighbour interference).
//! * [`design`] — Sec. VI.D design-tradeoff search (Pareto frontier over
//!   channel count × speed × latency for a weighted class mix).
//! * [`numa`] — the multi-socket extension sketched in Sec. VIII.
//! * [`phases`] — instruction-weighted multi-phase modeling (Sec. IV.D).
//! * [`workload`] / [`system`] / [`units`] — parameters and typed units.
//!
//! # Examples
//!
//! How much does the big data class lose if compulsory latency grows by
//! 30 ns (e.g. moving to a slower memory technology)?
//!
//! ```
//! use memsense_model::queueing::QueueingCurve;
//! use memsense_model::sensitivity::latency_sweep;
//! use memsense_model::system::SystemConfig;
//! use memsense_model::workload::WorkloadParams;
//!
//! let sweep = latency_sweep(
//!     &WorkloadParams::big_data_class(),
//!     &SystemConfig::paper_baseline(),
//!     &QueueingCurve::composite_default(),
//!     &[0.0, 30.0],
//! ).unwrap();
//! let loss_pct = sweep[1].cpi_increase_pct();
//! assert!(loss_pct > 5.0 && loss_pct < 12.0); // ≈ 2.5%/10 ns × 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod colocation;
pub mod cpi;
pub mod design;
pub mod hierarchy;
pub mod numa;
pub mod phases;
pub mod queueing;
pub mod sensitivity;
pub mod solver;
pub mod system;
pub mod units;
pub mod workload;

pub use queueing::QueueingCurve;
pub use solver::{solve_cpi, Regime, SolvedCpi};
pub use system::SystemConfig;
pub use workload::{Segment, WorkloadParams};

/// Error type for the analytic model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// The fixed-point iteration failed to converge.
    DidNotConverge {
        /// Number of iterations attempted.
        iterations: usize,
    },
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            ModelError::DidNotConverge { iterations } => {
                write!(f, "solver did not converge after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for ModelError {}
