//! Bandwidth demand and bandwidth-limited CPI (paper Eq. 4).
//!
//! `BW = (MPI × (1 + WBR) × LS + IOPI × IOSZ) × CPS / CPI_eff`
//!
//! Scaling the per-thread demand by the hardware-thread count gives the
//! system-wide demand; inverting the equation with `BW` set to the available
//! bandwidth gives the bandwidth-limited CPI (Sec. IV.C).

use crate::units::{GigaHertz, GigabytesPerSecond};
use crate::workload::WorkloadParams;
use crate::ModelError;

/// Eq. 4: memory bandwidth demand of a single hardware thread running at
/// `cpi_eff` with core clock `clock`.
///
/// # Examples
///
/// ```
/// use memsense_model::bandwidth::demand_per_thread;
/// use memsense_model::units::GigaHertz;
/// use memsense_model::workload::WorkloadParams;
///
/// let hpc = WorkloadParams::hpc_class();
/// let bw = demand_per_thread(&hpc, 0.75, GigaHertz(2.7));
/// // 26.7 MPKI with 27% writebacks at CPI 0.75 on a 2.7 GHz clock:
/// // ≈ 7.8 GB/s for a single hardware thread.
/// assert!((bw.value() - 7.81).abs() < 0.05);
/// ```
pub fn demand_per_thread(
    workload: &WorkloadParams,
    cpi_eff: f64,
    clock: GigaHertz,
) -> GigabytesPerSecond {
    let bytes_per_instr = workload.bytes_per_instruction().value();
    GigabytesPerSecond::from_bytes_per_second(bytes_per_instr * clock.cycles_per_second() / cpi_eff)
}

/// System-wide bandwidth demand: [`demand_per_thread`] scaled by the number
/// of hardware threads.
pub fn demand_system(
    workload: &WorkloadParams,
    cpi_eff: f64,
    clock: GigaHertz,
    hardware_threads: u32,
) -> GigabytesPerSecond {
    demand_per_thread(workload, cpi_eff, clock) * hardware_threads as f64
}

/// Inverts Eq. 4: the CPI at which the system-wide demand exactly equals
/// `available` bandwidth (the *bandwidth-limited CPI* of Sec. IV.C).
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] when `available` is not strictly
/// positive or `hardware_threads` is zero.
///
/// # Examples
///
/// ```
/// use memsense_model::bandwidth::bandwidth_limited_cpi;
/// use memsense_model::units::{GigaHertz, GigabytesPerSecond};
/// use memsense_model::workload::WorkloadParams;
///
/// let hpc = WorkloadParams::hpc_class();
/// // 16 hardware threads sharing ~42 GB/s: CPI inflates well above the
/// // infinite-cache CPI of 0.75.
/// let cpi = bandwidth_limited_cpi(&hpc, GigabytesPerSecond(42.0), GigaHertz(2.7), 16).unwrap();
/// assert!(cpi > 2.0);
/// ```
pub fn bandwidth_limited_cpi(
    workload: &WorkloadParams,
    available: GigabytesPerSecond,
    clock: GigaHertz,
    hardware_threads: u32,
) -> Result<f64, ModelError> {
    if available.value().is_nan() || available.value() <= 0.0 {
        return Err(ModelError::InvalidParameter(
            "available bandwidth must be > 0",
        ));
    }
    if hardware_threads == 0 {
        return Err(ModelError::InvalidParameter("hardware_threads must be > 0"));
    }
    let bytes_per_instr = workload.bytes_per_instruction().value();
    Ok(
        bytes_per_instr * clock.cycles_per_second() * hardware_threads as f64
            / available.bytes_per_second(),
    )
}

/// Fraction of available bandwidth consumed at a given CPI, clamped to
/// `[0, ∞)`. Values above 1.0 mean the demand is infeasible — the workload
/// would be bandwidth bound.
pub fn utilization(
    workload: &WorkloadParams,
    cpi_eff: f64,
    clock: GigaHertz,
    hardware_threads: u32,
    available: GigabytesPerSecond,
) -> f64 {
    demand_system(workload, cpi_eff, clock, hardware_threads).value() / available.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Segment;

    #[test]
    fn demand_scales_with_threads() {
        let w = WorkloadParams::big_data_class();
        let one = demand_per_thread(&w, 1.2, GigaHertz(2.7)).value();
        let sixteen = demand_system(&w, 1.2, GigaHertz(2.7), 16).value();
        assert!((sixteen - 16.0 * one).abs() < 1e-9);
    }

    #[test]
    fn demand_inverse_in_cpi() {
        let w = WorkloadParams::big_data_class();
        let fast = demand_per_thread(&w, 1.0, GigaHertz(2.7)).value();
        let slow = demand_per_thread(&w, 2.0, GigaHertz(2.7)).value();
        assert!((fast / slow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn demand_linear_in_clock() {
        let w = WorkloadParams::hpc_class();
        let low = demand_per_thread(&w, 0.75, GigaHertz(1.35)).value();
        let high = demand_per_thread(&w, 0.75, GigaHertz(2.7)).value();
        assert!((high / low - 2.0).abs() < 1e-9);
    }

    #[test]
    fn limited_cpi_consistent_with_demand() {
        // At the bandwidth-limited CPI, demand must equal supply exactly.
        let w = WorkloadParams::hpc_class();
        let avail = GigabytesPerSecond(42.0);
        let cpi = bandwidth_limited_cpi(&w, avail, GigaHertz(2.7), 16).unwrap();
        let demand = demand_system(&w, cpi, GigaHertz(2.7), 16);
        assert!((demand.value() - avail.value()).abs() < 1e-9);
    }

    #[test]
    fn hpc_class_is_bandwidth_infeasible_at_baseline() {
        // Paper Sec. VI.C.3: the HPC class is bandwidth bound on the
        // 4-channel DDR3-1867 baseline even at zero queueing delay.
        let w = WorkloadParams::hpc_class();
        let latency_limited_cpi = crate::cpi::effective_cpi(
            &w,
            crate::units::Nanoseconds(75.0).to_cycles(GigaHertz(2.7)),
        );
        let util = utilization(
            &w,
            latency_limited_cpi,
            GigaHertz(2.7),
            16,
            GigabytesPerSecond(42.0),
        );
        assert!(util > 1.0, "HPC utilization {util} must exceed supply");
    }

    #[test]
    fn enterprise_class_fits_at_baseline() {
        let w = WorkloadParams::enterprise_class();
        let cpi = crate::cpi::effective_cpi(
            &w,
            crate::units::Nanoseconds(75.0).to_cycles(GigaHertz(2.7)),
        );
        let util = utilization(&w, cpi, GigaHertz(2.7), 16, GigabytesPerSecond(42.0));
        assert!(util < 0.5, "enterprise utilization {util} should be low");
    }

    #[test]
    fn io_traffic_contributes() {
        let base = WorkloadParams::new("x", Segment::BigData, 1.0, 0.2, 5.0, 0.3).unwrap();
        let io = base.clone().with_io(0.001, 4096.0).unwrap();
        let d0 = demand_per_thread(&base, 1.0, GigaHertz(2.0)).value();
        let d1 = demand_per_thread(&io, 1.0, GigaHertz(2.0)).value();
        // 0.001 × 4096 B/instr × 2e9 instr/s = 8.192 GB/s extra.
        assert!((d1 - d0 - 8.192).abs() < 1e-6);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let w = WorkloadParams::hpc_class();
        assert!(bandwidth_limited_cpi(&w, GigabytesPerSecond(0.0), GigaHertz(2.7), 16).is_err());
        assert!(bandwidth_limited_cpi(&w, GigabytesPerSecond(-1.0), GigaHertz(2.7), 16).is_err());
        assert!(bandwidth_limited_cpi(&w, GigabytesPerSecond(42.0), GigaHertz(2.7), 0).is_err());
    }
}
