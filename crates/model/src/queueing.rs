//! Queueing delay vs. bandwidth utilization (paper Fig. 7 / Sec. VI.C.1).
//!
//! The miss penalty decomposes into the *compulsory* (unloaded) latency plus
//! a *queueing delay* that grows with memory-channel utilization. The paper
//! measures this relationship with Intel MLC for four speed/mix combinations,
//! observes they coincide below ~95% utilization, and averages them into a
//! single composite curve used for every workload class.

use crate::units::Nanoseconds;
use crate::ModelError;
use memsense_stats::PiecewiseLinear;

/// Utilization beyond which the paper stops trusting the measured curve and
/// treats the system as bandwidth bound ("some higher amount of error in the
/// area between 95% and 100%").
pub const DEFAULT_MAX_STABLE_UTILIZATION: f64 = 0.95;

/// An empirical queueing-delay curve: utilization in `[0, 1]` → delay (ns).
///
/// # Examples
///
/// ```
/// use memsense_model::queueing::QueueingCurve;
/// let q = QueueingCurve::composite_default();
/// // Queueing delay is small at low utilization and large near the knee.
/// assert!(q.delay(0.10).value() < 5.0);
/// assert!(q.delay(0.93).value() > 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueueingCurve {
    curve: PiecewiseLinear,
    max_stable_utilization: f64,
}

impl QueueingCurve {
    /// Builds a curve from `(utilization, delay_ns)` measurements.
    ///
    /// Points are sorted and duplicate utilizations averaged. The delay must
    /// be non-decreasing in utilization once merged.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidParameter`] for an empty point set, utilizations
    ///   outside `[0, 1]`, negative delays, a non-monotone curve, or a
    ///   `max_stable_utilization` outside `(0, 1]`.
    pub fn from_measurements(
        points: Vec<(f64, f64)>,
        max_stable_utilization: f64,
    ) -> Result<Self, ModelError> {
        if points.is_empty() {
            return Err(ModelError::InvalidParameter("no queueing measurements"));
        }
        if points
            .iter()
            .any(|&(u, d)| !(0.0..=1.0).contains(&u) || !d.is_finite() || d < 0.0)
        {
            return Err(ModelError::InvalidParameter(
                "utilization must be in [0,1] and delay >= 0",
            ));
        }
        if !(0.0 < max_stable_utilization && max_stable_utilization <= 1.0) {
            return Err(ModelError::InvalidParameter(
                "max_stable_utilization must be in (0, 1]",
            ));
        }
        let curve = PiecewiseLinear::from_unsorted(points, 1e-9)
            .map_err(|_| ModelError::InvalidParameter("could not build queueing curve"))?;
        if !curve.is_monotone_nondecreasing() {
            return Err(ModelError::InvalidParameter(
                "queueing delay must be non-decreasing in utilization",
            ));
        }
        Ok(QueueingCurve {
            curve,
            max_stable_utilization,
        })
    }

    /// The built-in composite curve, shaped like the average of the four
    /// Fig. 7 measurements: a roughly linear climb (~30 ns per unit of
    /// utilization) through the stable region, then a hockey-stick above
    /// ~90% as the channels saturate.
    ///
    /// [`crate::queueing::QueueingCurve::from_measurements`] should be
    /// preferred when curves measured with `memsense-mlc` are available; this
    /// constant curve makes the analytic model usable standalone.
    pub fn composite_default() -> Self {
        QueueingCurve::from_measurements(
            vec![
                (0.00, 0.0),
                (0.05, 1.0),
                (0.10, 2.5),
                (0.20, 5.5),
                (0.30, 8.7),
                (0.40, 12.0),
                (0.50, 15.0),
                (0.60, 18.0),
                (0.70, 21.5),
                (0.80, 25.0),
                (0.90, 30.0),
                (0.93, 38.0),
                (0.95, 55.0),
                (0.98, 110.0),
                (1.00, 180.0),
            ],
            DEFAULT_MAX_STABLE_UTILIZATION,
        )
        // memsense-lint: allow(no-panic-in-lib) — compile-time knot table, monotone by construction
        .expect("built-in curve is valid")
    }

    /// An analytic M/M/1-like alternative: `delay = service × u / (1 − u)`,
    /// clamped at `u = 0.99`. Used by the ablation study comparing the
    /// composite empirical curve against textbook queueing theory.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `service_time` is not
    /// strictly positive.
    pub fn mm1(service_time: Nanoseconds) -> Result<Self, ModelError> {
        if service_time.value().is_nan() || service_time.value() <= 0.0 {
            return Err(ModelError::InvalidParameter("service time must be > 0"));
        }
        let s = service_time.value();
        let points: Vec<(f64, f64)> = (0..=99)
            .map(|i| {
                let u = i as f64 / 100.0;
                (u, s * u / (1.0 - u))
            })
            .collect();
        QueueingCurve::from_measurements(points, DEFAULT_MAX_STABLE_UTILIZATION)
    }

    /// Averages several measured curves into a composite, as the paper does
    /// with its four speed/mix combinations.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `curves` is empty. The
    /// composite adopts the *minimum* `max_stable_utilization` of the inputs.
    pub fn composite(curves: &[QueueingCurve]) -> Result<Self, ModelError> {
        if curves.is_empty() {
            return Err(ModelError::InvalidParameter("no curves to composite"));
        }
        let inner: Vec<PiecewiseLinear> = curves.iter().map(|c| c.curve.clone()).collect();
        let curve = PiecewiseLinear::composite(&inner)
            .map_err(|_| ModelError::InvalidParameter("could not composite curves"))?;
        let max_stable = curves
            .iter()
            .map(|c| c.max_stable_utilization)
            .fold(f64::INFINITY, f64::min);
        Ok(QueueingCurve {
            curve,
            max_stable_utilization: max_stable,
        })
    }

    /// Queueing delay at a given utilization. Inputs are clamped to the
    /// stable region: anything above [`Self::max_stable_utilization`] returns
    /// the delay at that boundary (the "maximum stable queueing delay" the
    /// paper uses for bandwidth-bound workloads).
    pub fn delay(&self, utilization: f64) -> Nanoseconds {
        let u = utilization.clamp(0.0, self.max_stable_utilization);
        Nanoseconds(self.curve.eval(u))
    }

    /// The maximum stable queueing delay (delay at the stability boundary).
    pub fn max_stable_delay(&self) -> Nanoseconds {
        self.delay(self.max_stable_utilization)
    }

    /// Utilization beyond which the curve is not trusted.
    pub fn max_stable_utilization(&self) -> f64 {
        self.max_stable_utilization
    }

    /// The underlying knots, for rendering Fig. 7.
    pub fn knots(&self) -> &[(f64, f64)] {
        self.curve.knots()
    }
}

impl Default for QueueingCurve {
    fn default() -> Self {
        Self::composite_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_curve_monotone_and_anchored() {
        let q = QueueingCurve::composite_default();
        assert_eq!(q.delay(0.0).value(), 0.0);
        let mut last = -1.0;
        for i in 0..=100 {
            let d = q.delay(i as f64 / 100.0).value();
            assert!(d >= last, "delay must be monotone");
            last = d;
        }
    }

    #[test]
    fn delay_clamps_above_stable() {
        let q = QueueingCurve::composite_default();
        assert_eq!(q.delay(0.99), q.max_stable_delay());
        assert_eq!(q.delay(5.0), q.max_stable_delay());
        assert_eq!(q.delay(-1.0).value(), 0.0);
    }

    #[test]
    fn max_stable_delay_value() {
        let q = QueueingCurve::composite_default();
        assert_eq!(q.max_stable_delay().value(), 55.0);
        assert_eq!(q.max_stable_utilization(), 0.95);
    }

    #[test]
    fn from_measurements_rejects_bad_input() {
        assert!(QueueingCurve::from_measurements(vec![], 0.95).is_err());
        assert!(QueueingCurve::from_measurements(vec![(1.5, 0.0)], 0.95).is_err());
        assert!(QueueingCurve::from_measurements(vec![(0.5, -1.0)], 0.95).is_err());
        assert!(QueueingCurve::from_measurements(vec![(0.5, 1.0)], 0.0).is_err());
        assert!(QueueingCurve::from_measurements(vec![(0.5, 1.0)], 1.5).is_err());
        // Non-monotone:
        assert!(QueueingCurve::from_measurements(vec![(0.1, 5.0), (0.2, 1.0)], 0.95).is_err());
    }

    #[test]
    fn from_measurements_merges_duplicates() {
        let q = QueueingCurve::from_measurements(vec![(0.5, 10.0), (0.5, 20.0), (0.0, 0.0)], 0.95)
            .unwrap();
        assert_eq!(q.delay(0.5).value(), 15.0);
    }

    #[test]
    fn mm1_shape() {
        let q = QueueingCurve::mm1(Nanoseconds(10.0)).unwrap();
        assert_eq!(q.delay(0.0).value(), 0.0);
        assert!((q.delay(0.5).value() - 10.0).abs() < 0.5);
        assert!(q.delay(0.9).value() > 80.0);
        assert!(QueueingCurve::mm1(Nanoseconds(0.0)).is_err());
    }

    #[test]
    fn composite_averages_and_takes_min_stability() {
        let a = QueueingCurve::from_measurements(vec![(0.0, 0.0), (1.0, 10.0)], 0.95).unwrap();
        let b = QueueingCurve::from_measurements(vec![(0.0, 0.0), (1.0, 30.0)], 0.90).unwrap();
        let c = QueueingCurve::composite(&[a, b]).unwrap();
        assert_eq!(c.max_stable_utilization(), 0.90);
        assert!((c.delay(0.5).value() - 10.0).abs() < 1e-9);
        assert!(QueueingCurve::composite(&[]).is_err());
    }

    #[test]
    fn default_trait_matches_composite_default() {
        assert_eq!(QueueingCurve::default(), QueueingCurve::composite_default());
    }
}
