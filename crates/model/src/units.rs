//! Typed units for the performance equations.
//!
//! Eq. 4 of the paper mixes per-instruction rates, cache-line sizes, core
//! clocks, and bandwidths; getting a unit wrong silently produces garbage.
//! These zero-cost newtypes make the conversions explicit: a miss penalty in
//! nanoseconds must be converted through a [`GigaHertz`] core clock to become
//! the [`Cycles`] value Eq. 1 consumes.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw value.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` when the value is finite.
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                $name(v)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

unit!(
    /// A duration measured in core clock cycles.
    ///
    /// The miss penalty `MP` of Eq. 1 is expressed in core cycles, which is
    /// why frequency scaling changes the *apparent* memory latency: the same
    /// nanosecond latency costs more cycles on a faster core.
    Cycles,
    "cycles"
);

unit!(
    /// A duration in nanoseconds (wall-clock).
    Nanoseconds,
    "ns"
);

unit!(
    /// A clock frequency in gigahertz (`cycles / ns`).
    GigaHertz,
    "GHz"
);

unit!(
    /// A data rate in gigabytes per second (`10^9` bytes, decimal, matching
    /// DDR marketing rates and the paper's GB/s figures).
    GigabytesPerSecond,
    "GB/s"
);

unit!(
    /// Bytes of memory traffic generated per retired instruction.
    BytesPerInstruction,
    "B/instr"
);

unit!(
    /// Memory references (reads + writebacks) per core cycle — the y-axis of
    /// Fig. 6.
    RefsPerCycle,
    "refs/cycle"
);

impl Nanoseconds {
    /// Converts a wall-clock duration into core cycles at clock `freq`.
    ///
    /// # Examples
    ///
    /// ```
    /// use memsense_model::units::{GigaHertz, Nanoseconds};
    /// let mp = Nanoseconds(75.0).to_cycles(GigaHertz(2.0));
    /// assert_eq!(mp.value(), 150.0);
    /// ```
    pub fn to_cycles(self, freq: GigaHertz) -> Cycles {
        Cycles(self.0 * freq.0)
    }
}

impl Cycles {
    /// Converts a cycle count into wall-clock nanoseconds at clock `freq`.
    ///
    /// # Examples
    ///
    /// ```
    /// use memsense_model::units::{Cycles, GigaHertz};
    /// let t = Cycles(402.0).to_nanoseconds(GigaHertz(2.1));
    /// assert!((t.value() - 191.43).abs() < 0.01);
    /// ```
    pub fn to_nanoseconds(self, freq: GigaHertz) -> Nanoseconds {
        Nanoseconds(self.0 / freq.0)
    }
}

impl GigaHertz {
    /// Cycles per second (`CPS` in Eq. 4).
    pub fn cycles_per_second(self) -> f64 {
        self.0 * 1e9
    }
}

impl GigabytesPerSecond {
    /// Bytes per second.
    pub fn bytes_per_second(self) -> f64 {
        self.0 * 1e9
    }

    /// Builds a rate from raw bytes/second.
    pub fn from_bytes_per_second(bps: f64) -> Self {
        GigabytesPerSecond(bps / 1e9)
    }
}

/// Cache line size in bytes (`LS` in Eq. 4). 64 bytes on every platform the
/// paper measures.
pub const LINE_SIZE_BYTES: f64 = 64.0;

/// DDR3/DDR4 bus width in bytes: 8 bytes (64 bits) per channel transfer.
pub const DDR_BUS_BYTES: f64 = 8.0;

/// Converts a DDR transfer rate in mega-transfers/second into a per-channel
/// peak bandwidth.
///
/// # Examples
///
/// ```
/// use memsense_model::units::ddr_channel_bandwidth;
/// // DDR3-1867 moves 8 bytes per transfer: ~14.9 GB/s per channel.
/// let bw = ddr_channel_bandwidth(1866.7);
/// assert!((bw.value() - 14.93).abs() < 0.01);
/// ```
pub fn ddr_channel_bandwidth(mega_transfers_per_sec: f64) -> GigabytesPerSecond {
    GigabytesPerSecond(mega_transfers_per_sec * 1e6 * DDR_BUS_BYTES / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_to_cycles_roundtrip() {
        let f = GigaHertz(2.7);
        let ns = Nanoseconds(75.0);
        let cy = ns.to_cycles(f);
        assert!((cy.value() - 202.5).abs() < 1e-12);
        let back = cy.to_nanoseconds(f);
        assert!((back.value() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Nanoseconds(10.0) + Nanoseconds(5.0);
        assert_eq!(a, Nanoseconds(15.0));
        let b = a - Nanoseconds(5.0);
        assert_eq!(b, Nanoseconds(10.0));
        let c = b * 2.0;
        assert_eq!(c, Nanoseconds(20.0));
        let d = c / 4.0;
        assert_eq!(d, Nanoseconds(5.0));
        let ratio = Nanoseconds(10.0) / Nanoseconds(5.0);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:.1}", GigaHertz(2.7)), "2.7 GHz");
        assert_eq!(format!("{}", Cycles(402.0)), "402 cycles");
    }

    #[test]
    fn ddr_bandwidth_values() {
        // DDR3-1333: ~10.7 GB/s; DDR3-1867: ~14.9 GB/s.
        assert!((ddr_channel_bandwidth(1333.0).value() - 10.664).abs() < 1e-3);
        assert!((ddr_channel_bandwidth(1866.7).value() - 14.9336).abs() < 1e-3);
    }

    #[test]
    fn cps_conversion() {
        assert_eq!(GigaHertz(3.0).cycles_per_second(), 3e9);
    }

    #[test]
    fn gbps_bytes_roundtrip() {
        let bw = GigabytesPerSecond::from_bytes_per_second(42e9);
        assert_eq!(bw.value(), 42.0);
        assert_eq!(bw.bytes_per_second(), 42e9);
    }

    #[test]
    fn from_f64_and_finiteness() {
        let c: Cycles = 5.0.into();
        assert_eq!(c.value(), 5.0);
        assert!(c.is_finite());
        assert!(!Cycles(f64::NAN).is_finite());
    }
}
