//! Workload model parameters.
//!
//! A workload is characterized by four counter-derived quantities (paper
//! Tabs. 2, 4, 5): the infinite-cache CPI (`CPI_cache`), the blocking factor
//! (`BF`), the LLC misses per kilo-instruction (`MPKI`), and the writeback
//! rate (`WBR`, expressed as a fraction of misses — NITS exceeds 1.0 because
//! of non-temporal stores). I/O-intensive workloads additionally carry the
//! Eq. 4 I/O terms (`IOPI`, `IOSZ`).

use crate::units::BytesPerInstruction;
use crate::ModelError;

/// Usage segment a workload belongs to (paper Sec. III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Segment {
    /// Big data analytics: column stores, search, Spark (Sec. III.A).
    BigData,
    /// Enterprise: OLTP, JVM, virtualization, web caching (Sec. III.B).
    Enterprise,
    /// High-performance computing: SPECfp rate components (Sec. III.C).
    Hpc,
}

impl core::fmt::Display for Segment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Segment::BigData => write!(f, "Big Data"),
            Segment::Enterprise => write!(f, "Enterprise"),
            Segment::Hpc => write!(f, "HPC"),
        }
    }
}

impl Segment {
    /// Stable machine-readable token (snake_case), for wire formats that
    /// should not depend on the human-facing [`Display`](core::fmt::Display)
    /// text.
    pub fn token(&self) -> &'static str {
        match self {
            Segment::BigData => "big_data",
            Segment::Enterprise => "enterprise",
            Segment::Hpc => "hpc",
        }
    }

    /// Parses a segment from its [`token`](Segment::token) (or the display
    /// name), case-insensitively and tolerant of `-`/`_`/space separators.
    pub fn from_token(s: &str) -> Option<Segment> {
        match s
            .trim()
            .to_lowercase()
            .replace(['-', '_', ' '], "")
            .as_str()
        {
            "bigdata" => Some(Segment::BigData),
            "enterprise" => Some(Segment::Enterprise),
            "hpc" => Some(Segment::Hpc),
            _ => None,
        }
    }
}

/// Calibrated model parameters for one workload (or one workload class).
///
/// All rates are per retired instruction of a single hardware thread, which is
/// how the paper's counters report them.
///
/// # Examples
///
/// ```
/// use memsense_model::workload::WorkloadParams;
///
/// let sd = WorkloadParams::structured_data();
/// // Tab. 2: CPI_cache = 0.89, BF = 0.20, MPKI = 5.6, WBR = 32%.
/// assert_eq!(sd.cpi_cache, 0.89);
/// assert_eq!(sd.mpki, 5.6);
/// // Misses per instruction:
/// assert!((sd.mpi() - 0.0056).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Human-readable workload name.
    pub name: String,
    /// Usage segment the workload belongs to.
    pub segment: Segment,
    /// CPI with an infinite last-level cache (`CPI_cache`, Eq. 1 intercept).
    pub cpi_cache: f64,
    /// Blocking factor (`BF`, Eq. 1 slope): the fraction of the miss penalty
    /// that contributes to CPI, ≈ `1 / MLP` (Eq. 3).
    pub bf: f64,
    /// Last-level-cache misses (demand + prefetch) per 1000 instructions.
    pub mpki: f64,
    /// Writeback rate: dirty-victim writebacks as a fraction of misses.
    /// May exceed 1.0 in the presence of non-temporal stores (NITS, Tab. 2).
    pub wbr: f64,
    /// I/O events per instruction (`IOPI`, Eq. 4); zero for non-I/O workloads.
    pub iopi: f64,
    /// Average memory bytes read or written per I/O event (`IOSZ`, Eq. 4).
    pub iosz: f64,
}

impl WorkloadParams {
    /// Creates a parameter set, validating ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when any value is negative or
    /// non-finite, or when `cpi_cache` is zero.
    pub fn new(
        name: impl Into<String>,
        segment: Segment,
        cpi_cache: f64,
        bf: f64,
        mpki: f64,
        wbr: f64,
    ) -> Result<Self, ModelError> {
        let p = WorkloadParams {
            name: name.into(),
            segment,
            cpi_cache,
            bf,
            mpki,
            wbr,
            iopi: 0.0,
            iosz: 0.0,
        };
        p.validate()?;
        Ok(p)
    }

    /// Adds the Eq. 4 I/O traffic terms.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for negative or non-finite
    /// values.
    pub fn with_io(mut self, iopi: f64, iosz: f64) -> Result<Self, ModelError> {
        self.iopi = iopi;
        self.iosz = iosz;
        self.validate()?;
        Ok(self)
    }

    /// Builds one of the built-in paper workloads. Every call site passes
    /// constants transcribed from the paper's tables, pinned by the tier-1
    /// paper-claims tests, so construction cannot fail at runtime.
    fn from_paper(
        name: &'static str,
        segment: Segment,
        cpi_cache: f64,
        bf: f64,
        mpki: f64,
        wbr: f64,
    ) -> Self {
        // memsense-lint: allow(no-panic-in-lib) — compile-time paper constants, pinned by tests
        WorkloadParams::new(name, segment, cpi_cache, bf, mpki, wbr)
            .expect("paper constants are valid")
    }

    /// Adds paper-table I/O terms to a built-in workload (same infallibility
    /// argument as [`Self::from_paper`]).
    fn with_paper_io(self, iopi: f64, iosz: f64) -> Self {
        // memsense-lint: allow(no-panic-in-lib) — compile-time paper constants, pinned by tests
        self.with_io(iopi, iosz).expect("paper constants are valid")
    }

    fn validate(&self) -> Result<(), ModelError> {
        let finite = [
            self.cpi_cache,
            self.bf,
            self.mpki,
            self.wbr,
            self.iopi,
            self.iosz,
        ]
        .iter()
        .all(|v| v.is_finite());
        if !finite {
            return Err(ModelError::InvalidParameter(
                "non-finite workload parameter",
            ));
        }
        if self.cpi_cache <= 0.0 {
            return Err(ModelError::InvalidParameter("cpi_cache must be > 0"));
        }
        if self.bf < 0.0 || self.mpki < 0.0 || self.wbr < 0.0 || self.iopi < 0.0 || self.iosz < 0.0
        {
            return Err(ModelError::InvalidParameter(
                "workload parameters must be non-negative",
            ));
        }
        Ok(())
    }

    /// LLC misses per instruction (`MPI = MPKI / 1000`).
    pub fn mpi(&self) -> f64 {
        self.mpki / 1000.0
    }

    /// Cache-line traffic per instruction: `MPI × (1 + WBR) × LS` plus the
    /// I/O term `IOPI × IOSZ` (the numerator of Eq. 4 before the clock).
    pub fn bytes_per_instruction(&self) -> BytesPerInstruction {
        BytesPerInstruction(
            self.mpi() * (1.0 + self.wbr) * crate::units::LINE_SIZE_BYTES + self.iopi * self.iosz,
        )
    }

    /// Memory-level parallelism implied by the blocking factor under the
    /// approximation `BF ≈ 1 / MLP` (Eq. 3 with negligible overlap term).
    ///
    /// Returns `f64::INFINITY` for a zero blocking factor (perfect overlap).
    pub fn implied_mlp(&self) -> f64 {
        crate::cpi::mlp_from_blocking_factor(self.bf)
    }

    /// Intrinsic memory references (reads + writebacks) per core cycle when
    /// running at `CPI_cache` — the y-axis of Fig. 6. This is Eq. 4 with the
    /// clock, line size, and I/O terms removed and `CPI_eff` replaced by
    /// `CPI_cache` (paper Sec. VI.B).
    pub fn refs_per_cycle(&self) -> crate::units::RefsPerCycle {
        crate::units::RefsPerCycle(self.mpi() * (1.0 + self.wbr) / self.cpi_cache)
    }

    // ----- Paper Tab. 2: big data workloads -------------------------------

    /// In-memory column store running decision-support queries (Tab. 2).
    pub fn structured_data() -> Self {
        WorkloadParams::from_paper("Structured Data", Segment::BigData, 0.89, 0.20, 5.6, 0.32)
    }

    /// Needle-in-the-haystack unstructured search (Tab. 2). I/O-intensive:
    /// the paper reports >2 GB/s of storage traffic, modeled here as the
    /// Eq. 4 I/O term (~0.9 B/instr of DMA traffic).
    pub fn nits() -> Self {
        WorkloadParams::from_paper("NITS", Segment::BigData, 0.96, 0.18, 5.0, 1.17)
            .with_paper_io(0.00022, 4096.0)
    }

    /// Spark iterative graph analytics (Tab. 2).
    pub fn spark() -> Self {
        WorkloadParams::from_paper("Spark", Segment::BigData, 0.90, 0.25, 6.0, 0.64)
    }

    /// Proximity (dense) search — core bound (Tab. 2).
    pub fn proximity() -> Self {
        WorkloadParams::from_paper("Proximity", Segment::BigData, 0.93, 0.03, 0.5, 0.47)
    }

    // ----- Paper Tab. 4: enterprise workloads -----------------------------
    //
    // Tab. 4 prints only class-level means in the copy of the paper we have;
    // per-workload values are chosen to be consistent with the printed class
    // mean (CPI_cache 1.47, BF 0.41, MPKI 6.7, WBR 27%) and the qualitative
    // descriptions in Secs. V.J–V.M.

    /// OLTP brokerage workload on a commercial DBMS (Sec. V.J): high
    /// `CPI_cache`, poor prefetchability, moderate I/O.
    pub fn oltp() -> Self {
        WorkloadParams::from_paper("OLTP", Segment::Enterprise, 1.65, 0.45, 7.5, 0.25)
            .with_paper_io(0.00008, 4096.0)
    }

    /// Java middle-tier benchmark (Sec. V.K): GC pointer chasing, little I/O.
    pub fn jvm() -> Self {
        WorkloadParams::from_paper("JVM", Segment::Enterprise, 1.20, 0.38, 5.2, 0.35)
    }

    /// Virtualized server-consolidation benchmark (Sec. V.L).
    pub fn virtualization() -> Self {
        WorkloadParams::from_paper("Virtualization", Segment::Enterprise, 1.55, 0.42, 7.0, 0.24)
    }

    /// Memcached-like web-tier cache, 64 B objects, random keys (Sec. V.M).
    pub fn web_caching() -> Self {
        WorkloadParams::from_paper("Web Caching", Segment::Enterprise, 1.48, 0.39, 7.1, 0.24)
    }

    // ----- Paper Tab. 5: HPC (SPECfp rate) workloads -----------------------
    //
    // Like Tab. 4, per-component values are reconstructed around the printed
    // class mean (CPI_cache 0.75, BF 0.07, MPKI 26.7, WBR 27%): bwaves and
    // milc are the bandwidth monsters, soplex and wrf more moderate.

    /// 470.bwaves — blast-wave CFD, heavily streaming.
    pub fn bwaves() -> Self {
        WorkloadParams::from_paper("bwaves", Segment::Hpc, 0.70, 0.06, 33.0, 0.30)
    }

    /// 433.milc — lattice QCD, strided sweeps over large arrays.
    pub fn milc() -> Self {
        WorkloadParams::from_paper("milc", Segment::Hpc, 0.72, 0.08, 30.0, 0.28)
    }

    /// 450.soplex — sparse linear programming.
    pub fn soplex() -> Self {
        WorkloadParams::from_paper("soplex", Segment::Hpc, 0.80, 0.09, 21.0, 0.25)
    }

    /// 481.wrf — weather stencil.
    pub fn wrf() -> Self {
        WorkloadParams::from_paper("wrf", Segment::Hpc, 0.78, 0.05, 22.8, 0.25)
    }

    // ----- Paper Tab. 6: class means ---------------------------------------

    /// Enterprise class mean (Tab. 6): CPI_cache 1.47, BF 0.41, MPKI 6.7,
    /// WBR 27%.
    pub fn enterprise_class() -> Self {
        WorkloadParams::from_paper(
            "Enterprise class",
            Segment::Enterprise,
            1.47,
            0.41,
            6.7,
            0.27,
        )
    }

    /// Big data class mean (Tab. 6): CPI_cache 0.91, BF 0.21, MPKI 5.5,
    /// WBR 92%.
    pub fn big_data_class() -> Self {
        WorkloadParams::from_paper("Big Data class", Segment::BigData, 0.91, 0.21, 5.5, 0.92)
    }

    /// HPC class mean (Tab. 6): CPI_cache 0.75, BF 0.07, MPKI 26.7, WBR 27%.
    pub fn hpc_class() -> Self {
        WorkloadParams::from_paper("HPC class", Segment::Hpc, 0.75, 0.07, 26.7, 0.27)
    }

    /// All three Tab. 6 class means, in paper order.
    pub fn all_classes() -> Vec<WorkloadParams> {
        vec![
            Self::enterprise_class(),
            Self::big_data_class(),
            Self::hpc_class(),
        ]
    }

    /// Looks up a built-in class mean or individual workload by name,
    /// case-insensitively and tolerant of `-`/`_`/space separators.
    /// Segment shorthands (`enterprise`, `big_data`, `hpc`) resolve to the
    /// Tab. 6 class means. This is the Serialize-free entry point wire
    /// formats (e.g. `memsense-serve` request bodies) use to name workloads.
    pub fn by_name(name: &str) -> Option<WorkloadParams> {
        let canon = |s: &str| s.trim().to_lowercase().replace(['-', '_', ' '], "");
        let needle = canon(name);
        if needle.is_empty() {
            return None;
        }
        match needle.as_str() {
            "enterprise" => return Some(Self::enterprise_class()),
            "bigdata" => return Some(Self::big_data_class()),
            "hpc" => return Some(Self::hpc_class()),
            _ => {}
        }
        Self::all_classes()
            .into_iter()
            .chain(Self::all_workloads())
            .find(|w| canon(&w.name) == needle)
    }

    /// The eleven individual modeled workloads (big data + enterprise + HPC;
    /// proximity included — the classifier marks it core-bound).
    pub fn all_workloads() -> Vec<WorkloadParams> {
        vec![
            Self::structured_data(),
            Self::nits(),
            Self::spark(),
            Self::proximity(),
            Self::oltp(),
            Self::jvm(),
            Self::virtualization(),
            Self::web_caching(),
            Self::bwaves(),
            Self::milc(),
            Self::soplex(),
            Self::wrf(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab2_constants_match_paper() {
        let sd = WorkloadParams::structured_data();
        assert_eq!(
            (sd.cpi_cache, sd.bf, sd.mpki, sd.wbr),
            (0.89, 0.20, 5.6, 0.32)
        );
        let nits = WorkloadParams::nits();
        assert_eq!((nits.cpi_cache, nits.bf, nits.mpki), (0.96, 0.18, 5.0));
        assert!(
            nits.wbr > 1.0,
            "NITS WBR exceeds 100% (non-temporal writes)"
        );
        let spark = WorkloadParams::spark();
        assert_eq!(
            (spark.cpi_cache, spark.bf, spark.mpki, spark.wbr),
            (0.90, 0.25, 6.0, 0.64)
        );
        let prox = WorkloadParams::proximity();
        assert_eq!(
            (prox.cpi_cache, prox.bf, prox.mpki, prox.wbr),
            (0.93, 0.03, 0.5, 0.47)
        );
    }

    #[test]
    fn tab6_class_means_match_paper() {
        let e = WorkloadParams::enterprise_class();
        assert_eq!((e.cpi_cache, e.bf, e.mpki, e.wbr), (1.47, 0.41, 6.7, 0.27));
        let b = WorkloadParams::big_data_class();
        assert_eq!((b.cpi_cache, b.bf, b.mpki, b.wbr), (0.91, 0.21, 5.5, 0.92));
        let h = WorkloadParams::hpc_class();
        assert_eq!((h.cpi_cache, h.bf, h.mpki, h.wbr), (0.75, 0.07, 26.7, 0.27));
    }

    #[test]
    fn reconstructed_enterprise_mean_is_consistent() {
        let ws = [
            WorkloadParams::oltp(),
            WorkloadParams::jvm(),
            WorkloadParams::virtualization(),
            WorkloadParams::web_caching(),
        ];
        let n = ws.len() as f64;
        let mean_cpi = ws.iter().map(|w| w.cpi_cache).sum::<f64>() / n;
        let mean_bf = ws.iter().map(|w| w.bf).sum::<f64>() / n;
        let mean_mpki = ws.iter().map(|w| w.mpki).sum::<f64>() / n;
        let mean_wbr = ws.iter().map(|w| w.wbr).sum::<f64>() / n;
        assert!((mean_cpi - 1.47).abs() < 0.02, "CPI_cache mean {mean_cpi}");
        assert!((mean_bf - 0.41).abs() < 0.02, "BF mean {mean_bf}");
        assert!((mean_mpki - 6.7).abs() < 0.2, "MPKI mean {mean_mpki}");
        assert!((mean_wbr - 0.27).abs() < 0.02, "WBR mean {mean_wbr}");
    }

    #[test]
    fn reconstructed_hpc_mean_is_consistent() {
        let ws = [
            WorkloadParams::bwaves(),
            WorkloadParams::milc(),
            WorkloadParams::soplex(),
            WorkloadParams::wrf(),
        ];
        let n = ws.len() as f64;
        let mean_cpi = ws.iter().map(|w| w.cpi_cache).sum::<f64>() / n;
        let mean_bf = ws.iter().map(|w| w.bf).sum::<f64>() / n;
        let mean_mpki = ws.iter().map(|w| w.mpki).sum::<f64>() / n;
        let mean_wbr = ws.iter().map(|w| w.wbr).sum::<f64>() / n;
        assert!((mean_cpi - 0.75).abs() < 0.01, "CPI_cache mean {mean_cpi}");
        assert!((mean_bf - 0.07).abs() < 0.005, "BF mean {mean_bf}");
        assert!((mean_mpki - 26.7).abs() < 0.3, "MPKI mean {mean_mpki}");
        assert!((mean_wbr - 0.27).abs() < 0.01, "WBR mean {mean_wbr}");
    }

    #[test]
    fn mpi_and_bytes_per_instruction() {
        let b = WorkloadParams::big_data_class();
        assert!((b.mpi() - 0.0055).abs() < 1e-12);
        // 0.0055 × 1.92 × 64 = 0.67584 B/instr
        assert!((b.bytes_per_instruction().value() - 0.67584).abs() < 1e-9);
    }

    #[test]
    fn io_terms_add_bandwidth() {
        let no_io = WorkloadParams::structured_data();
        let with_io = no_io.clone().with_io(0.0001, 4096.0).unwrap();
        let delta = with_io.bytes_per_instruction().value() - no_io.bytes_per_instruction().value();
        assert!((delta - 0.4096).abs() < 1e-9);
    }

    #[test]
    fn refs_per_cycle_hpc_dominates() {
        let h = WorkloadParams::hpc_class().refs_per_cycle().value();
        let e = WorkloadParams::enterprise_class().refs_per_cycle().value();
        let b = WorkloadParams::big_data_class().refs_per_cycle().value();
        assert!(
            h > b && b > e,
            "Fig. 6 ordering: HPC {h} > big data {b} > enterprise {e}"
        );
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(WorkloadParams::new("x", Segment::Hpc, 0.0, 0.1, 1.0, 0.1).is_err());
        assert!(WorkloadParams::new("x", Segment::Hpc, 1.0, -0.1, 1.0, 0.1).is_err());
        assert!(WorkloadParams::new("x", Segment::Hpc, 1.0, 0.1, -1.0, 0.1).is_err());
        assert!(WorkloadParams::new("x", Segment::Hpc, f64::NAN, 0.1, 1.0, 0.1).is_err());
        assert!(WorkloadParams::new("x", Segment::Hpc, 1.0, 0.1, 1.0, 0.1)
            .unwrap()
            .with_io(-1.0, 10.0)
            .is_err());
    }

    #[test]
    fn implied_mlp_inverse_of_bf() {
        let sd = WorkloadParams::structured_data();
        assert!((sd.implied_mlp() - 5.0).abs() < 1e-12);
        let core_bound = WorkloadParams::new("cb", Segment::BigData, 1.0, 0.0, 0.1, 0.0).unwrap();
        assert!(core_bound.implied_mlp().is_infinite());
    }

    #[test]
    fn all_workloads_has_all_segments() {
        let ws = WorkloadParams::all_workloads();
        assert_eq!(ws.len(), 12);
        for seg in [Segment::BigData, Segment::Enterprise, Segment::Hpc] {
            assert!(ws.iter().any(|w| w.segment == seg));
        }
    }

    #[test]
    fn segment_display() {
        assert_eq!(Segment::BigData.to_string(), "Big Data");
        assert_eq!(Segment::Hpc.to_string(), "HPC");
    }

    #[test]
    fn segment_tokens_round_trip() {
        for seg in [Segment::BigData, Segment::Enterprise, Segment::Hpc] {
            assert_eq!(Segment::from_token(seg.token()), Some(seg));
            assert_eq!(Segment::from_token(&seg.to_string()), Some(seg));
        }
        assert_eq!(Segment::from_token("Big-Data"), Some(Segment::BigData));
        assert_eq!(Segment::from_token("warehouse"), None);
    }

    #[test]
    fn by_name_resolves_classes_workloads_and_shorthands() {
        assert_eq!(
            WorkloadParams::by_name("Enterprise class"),
            Some(WorkloadParams::enterprise_class())
        );
        assert_eq!(
            WorkloadParams::by_name("big_data"),
            Some(WorkloadParams::big_data_class())
        );
        assert_eq!(
            WorkloadParams::by_name("HPC"),
            Some(WorkloadParams::hpc_class())
        );
        assert_eq!(
            WorkloadParams::by_name("structured-data"),
            Some(WorkloadParams::structured_data())
        );
        assert_eq!(
            WorkloadParams::by_name("  BWAVES "),
            Some(WorkloadParams::bwaves())
        );
        assert_eq!(WorkloadParams::by_name("no such workload"), None);
        assert_eq!(WorkloadParams::by_name(""), None);
    }
}
