//! Design-space exploration (paper Sec. VI.D).
//!
//! "If an architect has a choice between improving latency or bandwidth,
//! which would be the better choice for performance?" The paper answers
//! with the equivalence table; this module generalizes the answer into a
//! search: enumerate memory-system design points (channel count × speed ×
//! compulsory latency), score each against a *weighted mix* of workload
//! classes, attach a relative cost, and report the Pareto frontier —
//! "ideally, system architects will create designs that provide sufficient
//! bandwidth for target workloads before turning their attention to latency
//! reduction", now checkable per mix.

use crate::queueing::QueueingCurve;
use crate::solver::solve_cpi;
use crate::system::SystemConfig;
use crate::units::Nanoseconds;
use crate::workload::WorkloadParams;
use crate::ModelError;

/// One candidate memory design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Memory channels per socket.
    pub channels: u32,
    /// Channel transfer rate (MT/s).
    pub mega_transfers: f64,
    /// Compulsory latency (ns).
    pub unloaded_ns: f64,
    /// Relative cost of the design (baseline ≈ 1.0).
    pub cost: f64,
}

impl DesignPoint {
    /// Short display form, e.g. `"4ch-1867 @75ns"`.
    pub fn label(&self) -> String {
        format!(
            "{}ch-{:.0} @{:.0}ns",
            self.channels, self.mega_transfers, self.unloaded_ns
        )
    }
}

/// A workload mix: classes with relative importance weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Mix {
    classes: Vec<(WorkloadParams, f64)>,
}

impl Mix {
    /// Builds a mix; weights must be positive.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for an empty mix or
    /// non-positive weights.
    pub fn new(classes: Vec<(WorkloadParams, f64)>) -> Result<Self, ModelError> {
        if classes.is_empty() {
            return Err(ModelError::InvalidParameter("mix must not be empty"));
        }
        if classes.iter().any(|(_, w)| !(w.is_finite() && *w > 0.0)) {
            return Err(ModelError::InvalidParameter("weights must be positive"));
        }
        Ok(Mix { classes })
    }

    /// Equal-weight mix of the paper's three Tab. 6 classes.
    pub fn balanced() -> Self {
        Mix::new(
            WorkloadParams::all_classes()
                .into_iter()
                .map(|c| (c, 1.0))
                .collect(),
        )
        // memsense-lint: allow(no-panic-in-lib) — all_classes() always yields three positive-weight entries
        .expect("non-empty")
    }

    /// A mix dominated by one class (weight 8 vs 1 for the others).
    pub fn dominated_by(class: WorkloadParams) -> Self {
        let mut classes: Vec<(WorkloadParams, f64)> = WorkloadParams::all_classes()
            .into_iter()
            .filter(|c| c.name != class.name)
            .map(|c| (c, 1.0))
            .collect();
        classes.push((class, 8.0));
        // memsense-lint: allow(no-panic-in-lib) — classes just gained a positive-weight entry
        Mix::new(classes).expect("non-empty")
    }
}

/// An evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// The design.
    pub point: DesignPoint,
    /// Weighted relative throughput across the mix (baseline design = 1.0
    /// when evaluated against the same baseline).
    pub throughput: f64,
    /// Throughput per unit cost.
    pub efficiency: f64,
}

/// Enumerates the default design grid around the paper's baseline:
/// channels {2, 4, 6, 8} × speeds {1333, 1867, 2400} × latency {60, 75, 95}.
/// Cost grows with channel count and speed and shrinks weakly with latency.
pub fn default_grid() -> Vec<DesignPoint> {
    let mut grid = Vec::new();
    for &channels in &[2u32, 4, 6, 8] {
        for &mts in &[1333.0, 1866.7, 2400.0] {
            for &lat in &[60.0, 75.0, 95.0] {
                // A simple additive cost model: channels are the dominant
                // cost (pins/board), speed next (signal integrity), and low
                // latency carries a premium.
                let cost =
                    0.25 + 0.15 * channels as f64 + 0.10 * (mts / 1866.7) + 0.20 * (75.0 / lat);
                grid.push(DesignPoint {
                    channels,
                    mega_transfers: mts,
                    unloaded_ns: lat,
                    cost,
                });
            }
        }
    }
    grid
}

/// Evaluates each design point against the mix: weighted harmonic-style
/// throughput (instructions/s relative to the first point in the grid).
///
/// # Errors
///
/// Propagates solver and configuration failures.
pub fn evaluate(
    grid: &[DesignPoint],
    mix: &Mix,
    baseline: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Vec<Evaluated>, ModelError> {
    if grid.is_empty() {
        return Err(ModelError::InvalidParameter("empty design grid"));
    }
    let total_w: f64 = mix.classes.iter().map(|(_, w)| w).sum();
    let mut out = Vec::with_capacity(grid.len());
    for point in grid {
        let sys = baseline
            .clone()
            .with_channels(point.channels)?
            .with_channel_speed(point.mega_transfers)?
            .with_unloaded_latency(Nanoseconds(point.unloaded_ns))?;
        // Weighted throughput: sum of weight × (clock / CPI).
        let mut throughput = 0.0;
        for (class, weight) in &mix.classes {
            let solved = solve_cpi(class, &sys, curve)?;
            throughput += weight / total_w * sys.core_clock().value() / solved.cpi_eff;
        }
        out.push(Evaluated {
            point: point.clone(),
            throughput,
            efficiency: throughput / point.cost,
        });
    }
    // Normalize throughput to the first grid point for readability.
    let norm = out[0].throughput;
    for e in &mut out {
        e.throughput /= norm;
        e.efficiency = e.throughput / e.point.cost;
    }
    Ok(out)
}

/// Comparison slack for Pareto dominance: differences at or below this are
/// treated as ties so float noise cannot manufacture frontier points.
pub const PARETO_EPS: f64 = 1e-12;

/// True when `a = (cost, value)` strictly dominates `b`: strictly cheaper
/// *and* strictly better, beyond [`PARETO_EPS`] in both coordinates.
pub fn strictly_dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 < b.0 - PARETO_EPS && a.1 > b.1 + PARETO_EPS
}

/// Generic Pareto primitive over `(cost ↓, value ↑)` pairs: returns the
/// indices of points on the frontier, ordered by ascending cost then
/// descending value. Among points with identical cost and value the lowest
/// index wins, so callers that pre-sort their inputs by content get
/// permutation-stable frontiers regardless of how candidates were produced.
pub fn pareto_indices(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[b].1.total_cmp(&points[a].1))
            .then(a.cmp(&b))
    });
    let mut frontier = Vec::new();
    let mut best = f64::MIN;
    for i in order {
        if points[i].1 > best + PARETO_EPS {
            best = points[i].1;
            frontier.push(i);
        }
    }
    frontier
}

/// The Pareto frontier of (cost ↓, throughput ↑): designs not dominated by
/// any cheaper-and-faster alternative, sorted by cost. Ties in both cost and
/// throughput are broken by design-point content (channels, then speed, then
/// latency), so the frontier is invariant under input permutation.
pub fn pareto_frontier(evaluated: &[Evaluated]) -> Vec<Evaluated> {
    let mut sorted: Vec<Evaluated> = evaluated.to_vec();
    sorted.sort_by(|a, b| {
        a.point
            .cost
            .total_cmp(&b.point.cost)
            .then(b.throughput.total_cmp(&a.throughput))
            .then(a.point.channels.cmp(&b.point.channels))
            .then(a.point.mega_transfers.total_cmp(&b.point.mega_transfers))
            .then(a.point.unloaded_ns.total_cmp(&b.point.unloaded_ns))
    });
    let mut frontier: Vec<Evaluated> = Vec::new();
    let mut best = f64::MIN;
    for e in sorted {
        if e.throughput > best + PARETO_EPS {
            best = e.throughput;
            frontier.push(e);
        }
    }
    frontier
}

/// The paper's closing guidance, checked for a mix: does the best
/// *affordable* upgrade from the baseline add bandwidth (channels/speed)
/// before cutting latency? Returns the single highest-efficiency design.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn best_per_cost(
    mix: &Mix,
    baseline: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Evaluated, ModelError> {
    let evaluated = evaluate(&default_grid(), mix, baseline, curve)?;
    evaluated
        .into_iter()
        .max_by(|a, b| a.efficiency.total_cmp(&b.efficiency))
        .ok_or(ModelError::InvalidParameter("empty design grid"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SystemConfig, QueueingCurve) {
        (
            SystemConfig::paper_baseline(),
            QueueingCurve::composite_default(),
        )
    }

    #[test]
    fn grid_has_expected_size_and_labels() {
        let grid = default_grid();
        assert_eq!(grid.len(), 4 * 3 * 3);
        assert!(grid.iter().any(|p| p.label() == "4ch-1867 @75ns"));
        // Costs are positive and increase with channels at fixed speed/lat.
        let cost = |ch: u32| {
            grid.iter()
                .find(|p| p.channels == ch && p.mega_transfers == 1866.7 && p.unloaded_ns == 75.0)
                .unwrap()
                .cost
        };
        assert!(cost(8) > cost(4) && cost(4) > cost(2));
    }

    #[test]
    fn evaluation_normalizes_and_orders() {
        let (sys, curve) = setup();
        let grid = default_grid();
        let ev = evaluate(&grid, &Mix::balanced(), &sys, &curve).unwrap();
        assert_eq!(ev.len(), grid.len());
        assert!(
            (ev[0].throughput - 1.0).abs() < 1e-12,
            "normalized to first point"
        );
        // More of everything (8ch, 2400, 60ns) beats less (2ch, 1333, 95ns).
        let best = ev
            .iter()
            .find(|e| {
                e.point.channels == 8
                    && e.point.mega_transfers == 2400.0
                    && e.point.unloaded_ns == 60.0
            })
            .unwrap();
        let worst = ev
            .iter()
            .find(|e| {
                e.point.channels == 2
                    && e.point.mega_transfers == 1333.0
                    && e.point.unloaded_ns == 95.0
            })
            .unwrap();
        assert!(best.throughput > worst.throughput);
    }

    #[test]
    fn pareto_frontier_is_nondominated_and_monotone() {
        let (sys, curve) = setup();
        let ev = evaluate(&default_grid(), &Mix::balanced(), &sys, &curve).unwrap();
        let frontier = pareto_frontier(&ev);
        assert!(!frontier.is_empty() && frontier.len() < ev.len());
        // Monotone: increasing cost and increasing throughput.
        for w in frontier.windows(2) {
            assert!(w[1].point.cost >= w[0].point.cost);
            assert!(w[1].throughput > w[0].throughput);
        }
        // No evaluated point dominates a frontier point.
        for f in &frontier {
            assert!(
                !ev.iter()
                    .any(|e| e.point.cost < f.point.cost - 1e-12
                        && e.throughput > f.throughput + 1e-12),
                "dominated frontier point {:?}",
                f.point.label()
            );
        }
    }

    #[test]
    fn hpc_mix_buys_bandwidth_enterprise_mix_buys_latency() {
        let (sys, curve) = setup();
        let hpc_pick = best_per_cost(
            &Mix::dominated_by(WorkloadParams::hpc_class()),
            &sys,
            &curve,
        )
        .unwrap();
        let ent_pick = best_per_cost(
            &Mix::dominated_by(WorkloadParams::enterprise_class()),
            &sys,
            &curve,
        )
        .unwrap();
        // The HPC-heavy mix picks at least as many channels as the
        // enterprise-heavy one, and the enterprise-heavy mix never picks a
        // slower-latency part than the HPC one.
        assert!(
            hpc_pick.point.channels >= ent_pick.point.channels,
            "HPC {:?} vs enterprise {:?}",
            hpc_pick.point.label(),
            ent_pick.point.label()
        );
        assert!(
            ent_pick.point.unloaded_ns <= hpc_pick.point.unloaded_ns,
            "enterprise favors latency: {:?} vs {:?}",
            ent_pick.point.label(),
            hpc_pick.point.label()
        );
    }

    #[test]
    fn mix_validation() {
        assert!(Mix::new(vec![]).is_err());
        assert!(Mix::new(vec![(WorkloadParams::hpc_class(), 0.0)]).is_err());
        assert!(Mix::new(vec![(WorkloadParams::hpc_class(), f64::NAN)]).is_err());
    }

    #[test]
    fn evaluate_rejects_empty_grid() {
        let (sys, curve) = setup();
        assert!(evaluate(&[], &Mix::balanced(), &sys, &curve).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Quantized (cost, value) pairs: a coarse grid manufactures exact
        /// ties, which is where the ordering/tie-break bugs live.
        fn points() -> impl Strategy<Value = Vec<(f64, f64)>> {
            proptest::collection::vec(
                (0u8..12, 0u8..12).prop_map(|(c, v)| (c as f64 * 0.25, v as f64 * 0.25)),
                1..40,
            )
        }

        /// Random evaluated designs over a coarse grid (many exact
        /// (cost, throughput) ties).
        fn evaluated() -> impl Strategy<Value = Vec<Evaluated>> {
            let one = (1u32..=8, 0usize..3, 0usize..3, 0u8..8, 0u8..8).prop_map(
                |(channels, mts, lat, cost, thr)| Evaluated {
                    point: DesignPoint {
                        channels,
                        mega_transfers: [1333.0, 1866.7, 2400.0][mts],
                        unloaded_ns: [60.0, 75.0, 95.0][lat],
                        cost: cost as f64 * 0.5,
                    },
                    throughput: thr as f64 * 0.5,
                    efficiency: 0.0,
                },
            );
            proptest::collection::vec(one, 1..30)
        }

        /// A seeded Fisher–Yates shuffle: a deterministic permutation of
        /// `items` for each `seed`.
        fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
            let mut rng = TestRng::new(seed);
            let mut out = items.to_vec();
            for i in (1..out.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                out.swap(i, j);
            }
            out
        }

        /// The checks behind `no_frontier_point_is_dominated…` — kept out of
        /// the `proptest!` block, whose token-tree recursion cannot absorb
        /// nested loops.
        fn check_nondominated_and_complete(points: &[(f64, f64)]) -> Result<(), TestCaseError> {
            let frontier = pareto_indices(points);
            prop_assert!(!frontier.is_empty());
            for &i in &frontier {
                for (j, &p) in points.iter().enumerate() {
                    prop_assert!(
                        !strictly_dominates(p, points[i]),
                        "input point {j} {:?} dominates frontier point {i} {:?}",
                        p,
                        points[i]
                    );
                }
            }
            // Completeness: every skipped point is covered by a frontier
            // point that is at most as expensive and at least as good.
            for (j, &p) in points.iter().enumerate() {
                if frontier.contains(&j) {
                    continue;
                }
                prop_assert!(
                    frontier
                        .iter()
                        .any(|&i| points[i].0 <= p.0 && points[i].1 >= p.1 - PARETO_EPS),
                    "skipped point {j} {p:?} has no covering frontier point"
                );
            }
            Ok(())
        }

        /// Selected (cost, value) pairs, in frontier order.
        fn frontier_values(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
            pareto_indices(points)
                .into_iter()
                .map(|i| points[i])
                .collect()
        }

        proptest! {
            #[test]
            fn no_frontier_point_is_dominated_or_uncovered(points in points()) {
                check_nondominated_and_complete(&points)?;
            }
        }

        proptest! {
            #[test]
            fn frontier_is_invariant_under_input_permutation(
                original in points(),
                seed in 0u64..=u64::MAX,
            ) {
                let permuted = shuffled(&original, seed);
                // Indices differ across permutations; the selected (cost,
                // value) sequence must not.
                prop_assert_eq!(frontier_values(&original), frontier_values(&permuted));
            }
        }

        proptest! {
            #[test]
            fn evaluated_frontier_is_invariant_under_input_permutation(
                original in evaluated(),
                seed in 0u64..=u64::MAX,
            ) {
                let permuted = shuffled(&original, seed);
                // The content tie-break (channels, speed, latency) makes the
                // full Evaluated frontier permutation-stable even when many
                // designs share a (cost, throughput) cell.
                prop_assert_eq!(pareto_frontier(&original), pareto_frontier(&permuted));
            }
        }
    }
}
