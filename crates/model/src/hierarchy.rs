//! Multi-level memory hierarchies (paper Eq. 5 / Sec. VII).
//!
//! Emerging memory technologies are slower and lower-bandwidth than DRAM but
//! much larger; the paper proposes tiering them behind a faster tier and
//! extends Eq. 1 to
//! `CPI_eff = CPI_cache + (MPI_i × MP_i + MPI_ii × MP_ii + …) × BF`.
//! This module models such tiered systems and answers the Sec. VII questions:
//! how good must the near tier's hit rate be for a slow far tier to break
//! even with flat DRAM?

use crate::units::{Cycles, GigaHertz, Nanoseconds};
use crate::workload::WorkloadParams;
use crate::ModelError;

/// One level of the memory hierarchy behind the LLC.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryTier {
    /// Human-readable tier name ("DRAM cache", "NVM", …).
    pub name: String,
    /// Fraction of LLC misses satisfied by this tier, in `[0, 1]`.
    /// Fractions across tiers must sum to 1.
    pub hit_fraction: f64,
    /// Loaded latency of this tier.
    pub latency: Nanoseconds,
}

impl MemoryTier {
    /// Creates a tier.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `hit_fraction` is
    /// outside `[0, 1]` or `latency` is negative/non-finite.
    pub fn new(
        name: impl Into<String>,
        hit_fraction: f64,
        latency: Nanoseconds,
    ) -> Result<Self, ModelError> {
        if !(0.0..=1.0).contains(&hit_fraction) {
            return Err(ModelError::InvalidParameter(
                "hit_fraction must be in [0, 1]",
            ));
        }
        if !(latency.value() >= 0.0 && latency.is_finite()) {
            return Err(ModelError::InvalidParameter("latency must be >= 0"));
        }
        Ok(MemoryTier {
            name: name.into(),
            hit_fraction,
            latency,
        })
    }
}

/// A memory hierarchy: an ordered list of tiers whose hit fractions sum to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredMemory {
    tiers: Vec<MemoryTier>,
}

impl TieredMemory {
    /// Builds a hierarchy, checking that hit fractions sum to 1 (±1e-6).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for an empty tier list or
    /// fractions not summing to one.
    pub fn new(tiers: Vec<MemoryTier>) -> Result<Self, ModelError> {
        if tiers.is_empty() {
            return Err(ModelError::InvalidParameter("at least one tier required"));
        }
        let sum: f64 = tiers.iter().map(|t| t.hit_fraction).sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ModelError::InvalidParameter(
                "tier hit fractions must sum to 1",
            ));
        }
        Ok(TieredMemory { tiers })
    }

    /// A single flat tier — equivalent to the base Eq. 1 model.
    ///
    /// # Errors
    ///
    /// Propagates tier validation errors (negative latency).
    pub fn flat(latency: Nanoseconds) -> Result<Self, ModelError> {
        TieredMemory::new(vec![MemoryTier::new("flat", 1.0, latency)?])
    }

    /// A two-tier near/far hierarchy: `near_hit` of misses land in the near
    /// tier, the rest in the far tier.
    ///
    /// # Errors
    ///
    /// Propagates tier validation errors.
    pub fn two_tier(
        near_hit: f64,
        near_latency: Nanoseconds,
        far_latency: Nanoseconds,
    ) -> Result<Self, ModelError> {
        TieredMemory::new(vec![
            MemoryTier::new("near", near_hit, near_latency)?,
            MemoryTier::new("far", 1.0 - near_hit, far_latency)?,
        ])
    }

    /// The tiers in order.
    pub fn tiers(&self) -> &[MemoryTier] {
        &self.tiers
    }

    /// The average miss latency across tiers:
    /// `Σ hit_fraction_k × latency_k`.
    pub fn average_latency(&self) -> Nanoseconds {
        Nanoseconds(
            self.tiers
                .iter()
                .map(|t| t.hit_fraction * t.latency.value())
                .sum(),
        )
    }

    /// The Eq. 5 per-instruction miss-latency term
    /// `Σ MPI_k × MP_k` in core cycles, where `MPI_k = MPI × hit_fraction_k`.
    pub fn miss_latency_per_instruction(&self, mpi: f64, clock: GigaHertz) -> Cycles {
        Cycles(
            self.tiers
                .iter()
                .map(|t| mpi * t.hit_fraction * t.latency.to_cycles(clock).value())
                .sum(),
        )
    }
}

/// Eq. 5: effective CPI over a tiered memory hierarchy.
///
/// # Examples
///
/// ```
/// use memsense_model::hierarchy::{hierarchical_cpi, TieredMemory};
/// use memsense_model::units::{GigaHertz, Nanoseconds};
/// use memsense_model::workload::WorkloadParams;
///
/// let big = WorkloadParams::big_data_class();
/// // A 2x-slower far tier fronted by a near tier catching 80% of misses:
/// let tiered = TieredMemory::two_tier(0.8, Nanoseconds(75.0), Nanoseconds(150.0)).unwrap();
/// let cpi = hierarchical_cpi(&big, &tiered, GigaHertz(2.7));
/// assert!(cpi > big.cpi_cache);
/// ```
pub fn hierarchical_cpi(workload: &WorkloadParams, memory: &TieredMemory, clock: GigaHertz) -> f64 {
    workload.cpi_cache
        + memory
            .miss_latency_per_instruction(workload.mpi(), clock)
            .value()
            * workload.bf
}

/// Finds the near-tier hit fraction at which a two-tier hierarchy matches
/// the CPI of a flat memory at `flat_latency` — the break-even point for
/// deploying a slower (e.g. non-volatile) far tier behind a DRAM cache.
///
/// Returns `None` when even a 100% near-tier hit rate cannot reach the flat
/// CPI (the near tier itself is slower than flat memory), or when the far
/// tier alone is already at least as fast.
///
/// # Errors
///
/// Propagates tier validation errors.
///
/// # Examples
///
/// ```
/// use memsense_model::hierarchy::break_even_near_hit;
/// use memsense_model::units::{GigaHertz, Nanoseconds};
/// use memsense_model::workload::WorkloadParams;
///
/// let w = WorkloadParams::big_data_class();
/// let h = break_even_near_hit(
///     &w,
///     Nanoseconds(75.0),  // near tier: DRAM-like
///     Nanoseconds(300.0), // far tier: 4x slower NVM
///     Nanoseconds(75.0),  // must match flat DRAM
///     GigaHertz(2.7),
/// ).unwrap();
/// // Only a perfect near tier matches flat DRAM when near == flat.
/// assert_eq!(h, Some(1.0));
/// ```
pub fn break_even_near_hit(
    workload: &WorkloadParams,
    near_latency: Nanoseconds,
    far_latency: Nanoseconds,
    flat_latency: Nanoseconds,
    clock: GigaHertz,
) -> Result<Option<f64>, ModelError> {
    let flat = hierarchical_cpi(workload, &TieredMemory::flat(flat_latency)?, clock);
    // CPI is linear in the near-hit fraction h:
    //   cpi(h) = cpi(0) + h × (cpi(1) − cpi(0))
    let cpi0 = hierarchical_cpi(
        workload,
        &TieredMemory::two_tier(0.0, near_latency, far_latency)?,
        clock,
    );
    let cpi1 = hierarchical_cpi(
        workload,
        &TieredMemory::two_tier(1.0, near_latency, far_latency)?,
        clock,
    );
    if cpi0 <= flat {
        // Far tier alone already fast enough: break-even at h = 0.
        return Ok(Some(0.0));
    }
    if cpi1 > flat + 1e-12 {
        return Ok(None);
    }
    let h = (cpi0 - flat) / (cpi0 - cpi1);
    Ok(Some(h.clamp(0.0, 1.0)))
}

/// Sec. VII's prefetching observation, quantified: the blocking-factor
/// reduction required for a slower memory to break even with a faster one.
/// Solves `CPI_cache + MPI × MP_slow × BF' = CPI_cache + MPI × MP_fast × BF`
/// for `BF'`.
pub fn break_even_blocking_factor(
    workload: &WorkloadParams,
    fast_latency: Nanoseconds,
    slow_latency: Nanoseconds,
    clock: GigaHertz,
) -> f64 {
    if slow_latency.value() == 0.0 {
        return workload.bf;
    }
    workload.bf * fast_latency.to_cycles(clock).value() / slow_latency.to_cycles(clock).value()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big() -> WorkloadParams {
        WorkloadParams::big_data_class()
    }

    #[test]
    fn flat_hierarchy_matches_eq1() {
        let clock = GigaHertz(2.7);
        let mem = TieredMemory::flat(Nanoseconds(75.0)).unwrap();
        let via_eq5 = hierarchical_cpi(&big(), &mem, clock);
        let via_eq1 = crate::cpi::effective_cpi(&big(), Nanoseconds(75.0).to_cycles(clock));
        assert!((via_eq5 - via_eq1).abs() < 1e-12);
    }

    #[test]
    fn hit_fractions_must_sum_to_one() {
        let t1 = MemoryTier::new("a", 0.5, Nanoseconds(75.0)).unwrap();
        let t2 = MemoryTier::new("b", 0.4, Nanoseconds(150.0)).unwrap();
        assert!(TieredMemory::new(vec![t1, t2]).is_err());
        assert!(TieredMemory::new(vec![]).is_err());
    }

    #[test]
    fn tier_validation() {
        assert!(MemoryTier::new("x", -0.1, Nanoseconds(10.0)).is_err());
        assert!(MemoryTier::new("x", 1.1, Nanoseconds(10.0)).is_err());
        assert!(MemoryTier::new("x", 0.5, Nanoseconds(-1.0)).is_err());
    }

    #[test]
    fn average_latency_weighted() {
        let mem = TieredMemory::two_tier(0.8, Nanoseconds(75.0), Nanoseconds(375.0)).unwrap();
        assert!((mem.average_latency().value() - 135.0).abs() < 1e-9);
    }

    #[test]
    fn cpi_monotone_in_near_hit() {
        let clock = GigaHertz(2.7);
        let mut last = f64::INFINITY;
        for h in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mem = TieredMemory::two_tier(h, Nanoseconds(75.0), Nanoseconds(300.0)).unwrap();
            let cpi = hierarchical_cpi(&big(), &mem, clock);
            assert!(cpi <= last, "CPI must fall as near hit rate rises");
            last = cpi;
        }
    }

    #[test]
    fn break_even_interior_point() {
        // Near tier faster than flat: an interior break-even hit rate exists.
        let h = break_even_near_hit(
            &big(),
            Nanoseconds(40.0),
            Nanoseconds(300.0),
            Nanoseconds(75.0),
            GigaHertz(2.7),
        )
        .unwrap()
        .expect("reachable");
        assert!(h > 0.5 && h < 1.0, "h = {h}");
        // Verify: CPI at break-even equals flat CPI.
        let mem = TieredMemory::two_tier(h, Nanoseconds(40.0), Nanoseconds(300.0)).unwrap();
        let flat = TieredMemory::flat(Nanoseconds(75.0)).unwrap();
        let clock = GigaHertz(2.7);
        assert!(
            (hierarchical_cpi(&big(), &mem, clock) - hierarchical_cpi(&big(), &flat, clock)).abs()
                < 1e-9
        );
    }

    #[test]
    fn break_even_unreachable() {
        // Near tier slower than flat: no hit rate can match.
        let h = break_even_near_hit(
            &big(),
            Nanoseconds(100.0),
            Nanoseconds(300.0),
            Nanoseconds(75.0),
            GigaHertz(2.7),
        )
        .unwrap();
        assert_eq!(h, None);
    }

    #[test]
    fn break_even_trivial_when_far_fast() {
        let h = break_even_near_hit(
            &big(),
            Nanoseconds(40.0),
            Nanoseconds(60.0),
            Nanoseconds(75.0),
            GigaHertz(2.7),
        )
        .unwrap();
        assert_eq!(h, Some(0.0));
    }

    #[test]
    fn break_even_bf_scales_with_latency_ratio() {
        let bf = break_even_blocking_factor(
            &big(),
            Nanoseconds(75.0),
            Nanoseconds(150.0),
            GigaHertz(2.7),
        );
        assert!((bf - big().bf / 2.0).abs() < 1e-12);
        // Verify equality of CPIs with the reduced BF.
        let clock = GigaHertz(2.7);
        let fast_cpi = crate::cpi::effective_cpi_raw(
            big().cpi_cache,
            big().mpi(),
            Nanoseconds(75.0).to_cycles(clock),
            big().bf,
        );
        let slow_cpi = crate::cpi::effective_cpi_raw(
            big().cpi_cache,
            big().mpi(),
            Nanoseconds(150.0).to_cycles(clock),
            bf,
        );
        assert!((fast_cpi - slow_cpi).abs() < 1e-12);
    }

    #[test]
    fn three_tier_hierarchy() {
        let mem = TieredMemory::new(vec![
            MemoryTier::new("hbm", 0.5, Nanoseconds(40.0)).unwrap(),
            MemoryTier::new("dram", 0.3, Nanoseconds(80.0)).unwrap(),
            MemoryTier::new("nvm", 0.2, Nanoseconds(350.0)).unwrap(),
        ])
        .unwrap();
        assert!((mem.average_latency().value() - (20.0 + 24.0 + 70.0)).abs() < 1e-9);
        let cpi = hierarchical_cpi(&big(), &mem, GigaHertz(2.7));
        assert!(cpi > big().cpi_cache);
    }
}
