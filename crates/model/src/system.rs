//! Platform configuration (paper Sec. VI.C.2 baseline and its variations).
//!
//! A [`SystemConfig`] captures everything the model needs to know about the
//! machine: cores and threads, core clock, memory channels (count, transfer
//! rate, efficiency), and the compulsory (unloaded) memory latency.

use crate::units::{ddr_channel_bandwidth, GigaHertz, GigabytesPerSecond, Nanoseconds};
use crate::ModelError;

/// A modeled platform.
///
/// # Examples
///
/// The paper's sensitivity baseline — one socket, eight cores with
/// Hyper-Threading, four channels of DDR3-1867 at ~70% efficiency, 75 ns
/// compulsory latency:
///
/// ```
/// use memsense_model::system::SystemConfig;
/// let sys = SystemConfig::paper_baseline();
/// assert_eq!(sys.hardware_threads(), 16);
/// // ~42 GB/s effective, ~5.25 GB/s per core (Sec. VI.C.2).
/// assert!((sys.effective_bandwidth().value() - 41.8).abs() < 0.5);
/// assert!((sys.bandwidth_per_core().value() - 5.2).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    sockets: u32,
    cores_per_socket: u32,
    threads_per_core: u32,
    core_clock: GigaHertz,
    channels_per_socket: u32,
    channel_mega_transfers: f64,
    efficiency: f64,
    unloaded_latency: Nanoseconds,
}

impl SystemConfig {
    /// Creates a configuration, validating every field.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for zero counts, non-positive
    /// clock/transfer rates, an efficiency outside `(0, 1]`, or a negative
    /// unloaded latency.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sockets: u32,
        cores_per_socket: u32,
        threads_per_core: u32,
        core_clock: GigaHertz,
        channels_per_socket: u32,
        channel_mega_transfers: f64,
        efficiency: f64,
        unloaded_latency: Nanoseconds,
    ) -> Result<Self, ModelError> {
        if sockets == 0 || cores_per_socket == 0 || threads_per_core == 0 {
            return Err(ModelError::InvalidParameter(
                "sockets, cores, and threads must be > 0",
            ));
        }
        if channels_per_socket == 0 {
            return Err(ModelError::InvalidParameter("channels must be > 0"));
        }
        if !(core_clock.value() > 0.0 && core_clock.is_finite()) {
            return Err(ModelError::InvalidParameter("core clock must be > 0"));
        }
        if !(channel_mega_transfers > 0.0 && channel_mega_transfers.is_finite()) {
            return Err(ModelError::InvalidParameter("channel rate must be > 0"));
        }
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(ModelError::InvalidParameter("efficiency must be in (0, 1]"));
        }
        if !unloaded_latency.is_finite() || unloaded_latency.value() < 0.0 {
            return Err(ModelError::InvalidParameter(
                "unloaded latency must be >= 0",
            ));
        }
        Ok(SystemConfig {
            sockets,
            cores_per_socket,
            threads_per_core,
            core_clock,
            channels_per_socket,
            channel_mega_transfers,
            efficiency,
            unloaded_latency,
        })
    }

    /// The paper's sensitivity-study baseline (Sec. VI.C.2): single socket,
    /// 8 cores × 2 hardware threads at 2.7 GHz, four channels of DDR3-1867
    /// at 70% efficiency, 75 ns compulsory latency.
    pub fn paper_baseline() -> Self {
        SystemConfig::new(1, 8, 2, GigaHertz(2.7), 4, 1866.7, 0.70, Nanoseconds(75.0))
            // memsense-lint: allow(no-panic-in-lib) — compile-time paper constants, pinned by tests
            .expect("paper baseline is valid")
    }

    /// A dual-socket Xeon E5-2600-like characterization platform
    /// (paper Sec. V.B): 2 × 8 cores × 2 threads, 4 channels/socket.
    pub fn characterization_platform() -> Self {
        SystemConfig::new(2, 8, 2, GigaHertz(2.7), 4, 1600.0, 0.70, Nanoseconds(80.0))
            // memsense-lint: allow(no-panic-in-lib) — compile-time paper constants, pinned by tests
            .expect("platform is valid")
    }

    // ----- Accessors -------------------------------------------------------

    /// Number of sockets.
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// Physical cores across all sockets.
    pub fn cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Hardware threads (logical processors) across all sockets.
    pub fn hardware_threads(&self) -> u32 {
        self.cores() * self.threads_per_core
    }

    /// Core clock frequency.
    pub fn core_clock(&self) -> GigaHertz {
        self.core_clock
    }

    /// Compulsory (unloaded) memory latency.
    pub fn unloaded_latency(&self) -> Nanoseconds {
        self.unloaded_latency
    }

    /// Memory channels across all sockets.
    pub fn channels(&self) -> u32 {
        self.sockets * self.channels_per_socket
    }

    /// Channel transfer rate in mega-transfers per second.
    pub fn channel_mega_transfers(&self) -> f64 {
        self.channel_mega_transfers
    }

    /// Fraction of peak channel bandwidth that is achievable (~0.70 measured
    /// for the paper's DDR3-1867 baseline).
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Peak (theoretical) memory bandwidth across all channels.
    pub fn peak_bandwidth(&self) -> GigabytesPerSecond {
        ddr_channel_bandwidth(self.channel_mega_transfers) * self.channels() as f64
    }

    /// Effective (deliverable) bandwidth: peak × efficiency.
    pub fn effective_bandwidth(&self) -> GigabytesPerSecond {
        self.peak_bandwidth() * self.efficiency
    }

    /// Effective bandwidth per physical core — the normalization of Figs. 8/9.
    pub fn bandwidth_per_core(&self) -> GigabytesPerSecond {
        self.effective_bandwidth() / self.cores() as f64
    }

    // ----- Variations (consuming builder-style) ----------------------------

    /// Returns a copy with a different core clock.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a non-positive clock.
    pub fn with_core_clock(mut self, clock: GigaHertz) -> Result<Self, ModelError> {
        if !(clock.value() > 0.0 && clock.is_finite()) {
            return Err(ModelError::InvalidParameter("core clock must be > 0"));
        }
        self.core_clock = clock;
        Ok(self)
    }

    /// Returns a copy with a different compulsory latency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a negative latency.
    pub fn with_unloaded_latency(mut self, latency: Nanoseconds) -> Result<Self, ModelError> {
        if !(latency.value() >= 0.0 && latency.is_finite()) {
            return Err(ModelError::InvalidParameter(
                "unloaded latency must be >= 0",
            ));
        }
        self.unloaded_latency = latency;
        Ok(self)
    }

    /// Returns a copy with a different channel count per socket.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for zero channels.
    pub fn with_channels(mut self, channels_per_socket: u32) -> Result<Self, ModelError> {
        if channels_per_socket == 0 {
            return Err(ModelError::InvalidParameter("channels must be > 0"));
        }
        self.channels_per_socket = channels_per_socket;
        Ok(self)
    }

    /// Returns a copy with a different channel transfer rate (MT/s).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a non-positive rate.
    pub fn with_channel_speed(mut self, mega_transfers: f64) -> Result<Self, ModelError> {
        if !(mega_transfers > 0.0 && mega_transfers.is_finite()) {
            return Err(ModelError::InvalidParameter("channel rate must be > 0"));
        }
        self.channel_mega_transfers = mega_transfers;
        Ok(self)
    }

    /// Returns a copy with a different bandwidth efficiency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for an efficiency outside
    /// `(0, 1]`.
    pub fn with_efficiency(mut self, efficiency: f64) -> Result<Self, ModelError> {
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(ModelError::InvalidParameter("efficiency must be in (0, 1]"));
        }
        self.efficiency = efficiency;
        Ok(self)
    }

    /// Returns a copy whose *effective* bandwidth is scaled so that the
    /// per-core bandwidth changes by `delta` (possibly negative). Used to
    /// walk the x-axis of Fig. 8 without enumerating channel/speed variants.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when the resulting bandwidth
    /// would be non-positive.
    pub fn with_bandwidth_per_core_delta(
        mut self,
        delta: GigabytesPerSecond,
    ) -> Result<Self, ModelError> {
        let new_total = self.effective_bandwidth().value() + delta.value() * self.cores() as f64;
        if new_total.is_nan() || new_total <= 0.0 {
            return Err(ModelError::InvalidParameter(
                "bandwidth delta drives effective bandwidth to zero",
            ));
        }
        // Fold the change into the efficiency-free channel rate so peak and
        // effective bandwidth stay consistent.
        let scale = new_total / self.effective_bandwidth().value();
        self.channel_mega_transfers *= scale;
        Ok(self)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_numbers() {
        let sys = SystemConfig::paper_baseline();
        assert_eq!(sys.cores(), 8);
        assert_eq!(sys.hardware_threads(), 16);
        assert_eq!(sys.channels(), 4);
        // Peak: 4 × 14.93 GB/s ≈ 59.7; effective ≈ 41.8 ("~42 GB/s").
        assert!((sys.peak_bandwidth().value() - 59.73).abs() < 0.05);
        assert!((sys.effective_bandwidth().value() - 41.81).abs() < 0.05);
        // "~5.25 GB/s per core"
        assert!((sys.bandwidth_per_core().value() - 5.23).abs() < 0.05);
        assert_eq!(sys.unloaded_latency(), Nanoseconds(75.0));
    }

    #[test]
    fn dual_socket_counts() {
        let sys = SystemConfig::characterization_platform();
        assert_eq!(sys.sockets(), 2);
        assert_eq!(sys.cores(), 16);
        assert_eq!(sys.hardware_threads(), 32);
        assert_eq!(sys.channels(), 8);
    }

    #[test]
    fn invalid_configs_rejected() {
        let ok = SystemConfig::paper_baseline();
        assert!(
            SystemConfig::new(0, 8, 2, GigaHertz(2.7), 4, 1866.7, 0.7, Nanoseconds(75.0)).is_err()
        );
        assert!(
            SystemConfig::new(1, 8, 2, GigaHertz(0.0), 4, 1866.7, 0.7, Nanoseconds(75.0)).is_err()
        );
        assert!(
            SystemConfig::new(1, 8, 2, GigaHertz(2.7), 0, 1866.7, 0.7, Nanoseconds(75.0)).is_err()
        );
        assert!(
            SystemConfig::new(1, 8, 2, GigaHertz(2.7), 4, 1866.7, 1.5, Nanoseconds(75.0)).is_err()
        );
        assert!(
            SystemConfig::new(1, 8, 2, GigaHertz(2.7), 4, 1866.7, 0.7, Nanoseconds(-1.0)).is_err()
        );
        assert!(ok.clone().with_core_clock(GigaHertz(-1.0)).is_err());
        assert!(ok.clone().with_unloaded_latency(Nanoseconds(-5.0)).is_err());
        assert!(ok.clone().with_channels(0).is_err());
        assert!(ok.clone().with_channel_speed(0.0).is_err());
        assert!(ok.with_efficiency(0.0).is_err());
    }

    #[test]
    fn variations_change_bandwidth() {
        let base = SystemConfig::paper_baseline();
        let faster = base.clone().with_channel_speed(2133.0).unwrap();
        assert!(faster.effective_bandwidth().value() > base.effective_bandwidth().value());
        let fewer = base.clone().with_channels(2).unwrap();
        assert!(
            (fewer.effective_bandwidth().value() - base.effective_bandwidth().value() / 2.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn bandwidth_delta_per_core() {
        let base = SystemConfig::paper_baseline();
        let reduced = base
            .clone()
            .with_bandwidth_per_core_delta(GigabytesPerSecond(-2.0))
            .unwrap();
        let delta = reduced.bandwidth_per_core().value() - base.bandwidth_per_core().value();
        assert!((delta + 2.0).abs() < 1e-9);
        // Driving bandwidth to zero is rejected.
        assert!(base
            .with_bandwidth_per_core_delta(GigabytesPerSecond(-10.0))
            .is_err());
    }

    #[test]
    fn frequency_variation_preserves_memory() {
        let base = SystemConfig::paper_baseline();
        let slowed = base.clone().with_core_clock(GigaHertz(2.1)).unwrap();
        assert_eq!(slowed.effective_bandwidth(), base.effective_bandwidth());
        assert_eq!(slowed.unloaded_latency(), base.unloaded_latency());
        assert_eq!(slowed.core_clock(), GigaHertz(2.1));
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(SystemConfig::default(), SystemConfig::paper_baseline());
    }
}
