//! Multi-socket (NUMA) extension of the model (paper Sec. VIII).
//!
//! The paper notes the model "can be extended in a straightforward way to
//! model additional memory architectures such as multi-socket". On a
//! multi-socket machine a fraction of LLC misses is served by a remote
//! socket over the interconnect, adding hop latency and consuming remote
//! bandwidth. This module implements that extension: the miss penalty
//! becomes a mix of local and remote loaded latencies, and each socket's
//! channels serve local demand plus incoming remote traffic.

use crate::bandwidth;
use crate::cpi;
use crate::queueing::QueueingCurve;
use crate::system::SystemConfig;
use crate::units::Nanoseconds;
use crate::workload::WorkloadParams;
use crate::ModelError;

/// NUMA traffic description for a symmetric multi-socket system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumaConfig {
    /// Fraction of LLC misses served by a *remote* socket, in `[0, 1]`.
    /// Well-tuned software (the paper's one-JVM-per-socket setup) keeps this
    /// near zero; naive placement on two sockets approaches 0.5.
    pub remote_fraction: f64,
    /// One-way interconnect hop latency added to remote accesses (ns).
    /// QPI-era links cost ~50–60 ns per round trip.
    pub hop_latency: Nanoseconds,
}

impl NumaConfig {
    /// Creates a config, validating ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a fraction outside
    /// `[0, 1]` or a negative hop latency.
    pub fn new(remote_fraction: f64, hop_latency: Nanoseconds) -> Result<Self, ModelError> {
        if !(0.0..=1.0).contains(&remote_fraction) {
            return Err(ModelError::InvalidParameter(
                "remote_fraction must be in [0, 1]",
            ));
        }
        if !(hop_latency.value() >= 0.0 && hop_latency.is_finite()) {
            return Err(ModelError::InvalidParameter("hop latency must be >= 0"));
        }
        Ok(NumaConfig {
            remote_fraction,
            hop_latency,
        })
    }

    /// Perfect locality: everything served by the local socket.
    pub fn local_only() -> Self {
        NumaConfig {
            remote_fraction: 0.0,
            hop_latency: Nanoseconds(0.0),
        }
    }
}

/// Converged NUMA operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct NumaSolved {
    /// Effective CPI under the mixed local/remote miss penalty.
    pub cpi_eff: f64,
    /// Loaded latency of a local miss (ns).
    pub local_latency: Nanoseconds,
    /// Loaded latency of a remote miss (ns), including the hop.
    pub remote_latency: Nanoseconds,
    /// Average miss penalty across the local/remote mix (ns).
    pub avg_miss_penalty: Nanoseconds,
    /// Per-socket channel utilization (symmetric workload: each socket
    /// serves its locals plus the remote traffic from the peer).
    pub utilization: f64,
}

/// Solves the symmetric two-socket case: every socket runs the same
/// workload on all its threads; `numa.remote_fraction` of each socket's
/// misses cross to the peer. By symmetry, each socket's memory serves the
/// same total request rate it would serve with perfect locality — remote
/// traffic changes *latency* (the hop) but not per-socket *bandwidth*.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] if `system` has fewer than two
/// sockets; propagates solver failures.
///
/// # Examples
///
/// ```
/// use memsense_model::numa::{solve_numa, NumaConfig};
/// use memsense_model::queueing::QueueingCurve;
/// use memsense_model::system::SystemConfig;
/// use memsense_model::units::Nanoseconds;
/// use memsense_model::workload::WorkloadParams;
///
/// let sys = SystemConfig::characterization_platform(); // 2 sockets
/// let curve = QueueingCurve::composite_default();
/// let w = WorkloadParams::enterprise_class();
///
/// let local = solve_numa(&w, &sys, &curve,
///     &NumaConfig::local_only()).unwrap();
/// let naive = solve_numa(&w, &sys, &curve,
///     &NumaConfig::new(0.5, Nanoseconds(60.0)).unwrap()).unwrap();
/// assert!(naive.cpi_eff > local.cpi_eff, "NUMA misses cost CPI");
/// ```
pub fn solve_numa(
    workload: &WorkloadParams,
    system: &SystemConfig,
    curve: &QueueingCurve,
    numa: &NumaConfig,
) -> Result<NumaSolved, ModelError> {
    if system.sockets() < 2 && numa.remote_fraction > 0.0 {
        return Err(ModelError::InvalidParameter(
            "remote traffic requires at least two sockets",
        ));
    }
    let clock = system.core_clock();
    // Per-socket view: threads and bandwidth of one socket.
    let threads = system.hardware_threads() / system.sockets().max(1);
    let available = system.effective_bandwidth() / system.sockets().max(1) as f64;
    let unloaded = system.unloaded_latency();
    let max_util = curve.max_stable_utilization();

    // Same bisection structure as the flat solver, with the mixed-latency
    // miss penalty. Residual is decreasing in the queueing delay q.
    let mixed_mp = |q: f64| -> (f64, f64, f64) {
        let local = unloaded.value() + q;
        let remote = unloaded.value() + q + numa.hop_latency.value();
        let avg = (1.0 - numa.remote_fraction) * local + numa.remote_fraction * remote;
        (local, remote, avg)
    };
    let util_at = |q: f64| -> f64 {
        let (_, _, avg) = mixed_mp(q);
        let cpi = cpi::effective_cpi(workload, Nanoseconds(avg).to_cycles(clock));
        bandwidth::utilization(workload, cpi, clock, threads, available)
    };

    let residual = |q: f64| -> f64 { curve.delay(util_at(q)).value() - q };
    let mut lo = 0.0;
    let mut hi = curve.max_stable_delay().value().max(1.0);
    if residual(lo) <= 0.0 {
        hi = lo;
    } else {
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if residual(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    let q = 0.5 * (lo + hi);
    let (local, remote, avg) = mixed_mp(q);
    let mut cpi_eff = cpi::effective_cpi(workload, Nanoseconds(avg).to_cycles(clock));
    let mut utilization = util_at(q);

    if utilization > max_util {
        // Bandwidth bound per socket: Eq. 4 with BW = per-socket available.
        let bw_cpi = bandwidth::bandwidth_limited_cpi(workload, available, clock, threads)?;
        cpi_eff = bw_cpi.max(cpi_eff);
        utilization = 1.0;
    }

    Ok(NumaSolved {
        cpi_eff,
        local_latency: Nanoseconds(local),
        remote_latency: Nanoseconds(remote),
        avg_miss_penalty: Nanoseconds(avg),
        utilization,
    })
}

/// The NUMA penalty: CPI ratio of a given placement vs perfect locality.
///
/// # Errors
///
/// Propagates [`solve_numa`] failures.
pub fn numa_penalty(
    workload: &WorkloadParams,
    system: &SystemConfig,
    curve: &QueueingCurve,
    numa: &NumaConfig,
) -> Result<f64, ModelError> {
    let local = solve_numa(workload, system, curve, &NumaConfig::local_only())?;
    let mixed = solve_numa(workload, system, curve, numa)?;
    Ok(mixed.cpi_eff / local.cpi_eff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SystemConfig, QueueingCurve) {
        (
            SystemConfig::characterization_platform(),
            QueueingCurve::composite_default(),
        )
    }

    #[test]
    fn local_only_matches_flat_solver_per_socket() {
        let (sys, curve) = setup();
        let w = WorkloadParams::enterprise_class();
        let numa = solve_numa(&w, &sys, &curve, &NumaConfig::local_only()).unwrap();
        // A single socket of the 2S platform is itself a valid system.
        let one_socket = SystemConfig::new(
            1,
            8,
            2,
            sys.core_clock(),
            4,
            sys.channel_mega_transfers(),
            sys.efficiency(),
            sys.unloaded_latency(),
        )
        .unwrap();
        let flat = crate::solver::solve_cpi(&w, &one_socket, &curve).unwrap();
        assert!((numa.cpi_eff - flat.cpi_eff).abs() < 1e-6);
    }

    #[test]
    fn remote_fraction_monotonically_hurts() {
        let (sys, curve) = setup();
        let w = WorkloadParams::big_data_class();
        let mut last = 0.0;
        for frac in [0.0, 0.1, 0.25, 0.5, 1.0] {
            let s = solve_numa(
                &w,
                &sys,
                &curve,
                &NumaConfig::new(frac, Nanoseconds(60.0)).unwrap(),
            )
            .unwrap();
            assert!(s.cpi_eff >= last, "CPI must grow with remote fraction");
            last = s.cpi_eff;
        }
    }

    #[test]
    fn enterprise_pays_more_than_hpc_for_numa() {
        // Latency-sensitive classes suffer from remote hops; the
        // bandwidth-bound HPC class does not (per-socket bandwidth is
        // unchanged in the symmetric case).
        let (sys, curve) = setup();
        let numa = NumaConfig::new(0.5, Nanoseconds(60.0)).unwrap();
        let ent = numa_penalty(&WorkloadParams::enterprise_class(), &sys, &curve, &numa).unwrap();
        let hpc = numa_penalty(&WorkloadParams::hpc_class(), &sys, &curve, &numa).unwrap();
        assert!(ent > 1.05, "enterprise NUMA penalty {ent}");
        assert!(hpc < ent, "HPC penalty {hpc} below enterprise {ent}");
        assert!((hpc - 1.0).abs() < 0.01, "HPC unaffected: {hpc}");
    }

    #[test]
    fn hop_latency_scales_penalty() {
        let (sys, curve) = setup();
        let w = WorkloadParams::enterprise_class();
        let short = numa_penalty(
            &w,
            &sys,
            &curve,
            &NumaConfig::new(0.5, Nanoseconds(30.0)).unwrap(),
        )
        .unwrap();
        let long = numa_penalty(
            &w,
            &sys,
            &curve,
            &NumaConfig::new(0.5, Nanoseconds(120.0)).unwrap(),
        )
        .unwrap();
        assert!(long > short);
    }

    #[test]
    fn remote_latency_includes_hop() {
        let (sys, curve) = setup();
        let numa = NumaConfig::new(0.3, Nanoseconds(55.0)).unwrap();
        let s = solve_numa(&WorkloadParams::big_data_class(), &sys, &curve, &numa).unwrap();
        assert!((s.remote_latency.value() - s.local_latency.value() - 55.0).abs() < 1e-9);
        let expect_avg = 0.7 * s.local_latency.value() + 0.3 * s.remote_latency.value();
        assert!((s.avg_miss_penalty.value() - expect_avg).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(NumaConfig::new(-0.1, Nanoseconds(10.0)).is_err());
        assert!(NumaConfig::new(1.1, Nanoseconds(10.0)).is_err());
        assert!(NumaConfig::new(0.5, Nanoseconds(-1.0)).is_err());
        let single = SystemConfig::paper_baseline();
        let curve = QueueingCurve::composite_default();
        assert!(solve_numa(
            &WorkloadParams::big_data_class(),
            &single,
            &curve,
            &NumaConfig::new(0.5, Nanoseconds(60.0)).unwrap()
        )
        .is_err());
    }
}
