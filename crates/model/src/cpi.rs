//! The CPI equations (paper Eqs. 1–3).
//!
//! Eq. 1 is the working model: `CPI_eff = CPI_cache + MPI × MP × BF`.
//! Eq. 2 is Chou's MLP formulation it is derived from, and Eq. 3 relates the
//! blocking factor to memory-level parallelism and the core/miss overlap.

use crate::units::Cycles;
use crate::workload::WorkloadParams;

/// Eq. 1: effective CPI under the latency-limited model.
///
/// `miss_penalty` is the *loaded* memory latency in core cycles.
///
/// # Examples
///
/// Reproduces the first column of Tab. 3 (Structured Data at 2.1 GHz):
///
/// ```
/// use memsense_model::cpi::effective_cpi;
/// use memsense_model::units::Cycles;
/// use memsense_model::workload::WorkloadParams;
///
/// let mut sd = WorkloadParams::structured_data();
/// sd.mpki = 5.6; // MPI = 0.0056 as measured in Tab. 3
/// let cpi = effective_cpi(&sd, Cycles(402.0));
/// assert!((cpi - 1.34).abs() < 0.02); // paper computes 1.33
/// ```
pub fn effective_cpi(workload: &WorkloadParams, miss_penalty: Cycles) -> f64 {
    effective_cpi_raw(
        workload.cpi_cache,
        workload.mpi(),
        miss_penalty,
        workload.bf,
    )
}

/// Eq. 1 with explicit components: `CPI_cache + MPI × MP × BF`.
pub fn effective_cpi_raw(cpi_cache: f64, mpi: f64, miss_penalty: Cycles, bf: f64) -> f64 {
    cpi_cache + mpi * miss_penalty.value() * bf
}

/// Eq. 2 (Chou): `CPI_eff = CPI_cache × (1 − Overlap_cm) + MPI × MP / MLP`.
///
/// `overlap_cm` is the fraction of infinite-cache execution that overlaps
/// with outstanding cache misses; `mlp` is the average number of
/// simultaneously outstanding misses.
pub fn chou_cpi(cpi_cache: f64, overlap_cm: f64, mpi: f64, miss_penalty: Cycles, mlp: f64) -> f64 {
    cpi_cache * (1.0 - overlap_cm) + mpi * miss_penalty.value() / mlp
}

/// Eq. 3: the blocking factor that makes Eq. 1 equal Eq. 2:
/// `BF = 1/MLP − CPI_cache × Overlap_cm / (MPI × MP)`.
///
/// As the paper notes, the second term shrinks as the miss penalty grows, so
/// `BF → 1/MLP` for memory-bound operation — the justification for treating
/// `BF` as a constant.
pub fn blocking_factor(
    cpi_cache: f64,
    overlap_cm: f64,
    mpi: f64,
    miss_penalty: Cycles,
    mlp: f64,
) -> f64 {
    1.0 / mlp - cpi_cache * overlap_cm / (mpi * miss_penalty.value())
}

/// The large-miss-penalty limit of Eq. 3: `BF ≈ 1 / MLP`.
pub fn blocking_factor_from_mlp(mlp: f64) -> f64 {
    1.0 / mlp
}

/// Inverse of [`blocking_factor_from_mlp`]; returns `f64::INFINITY` when the
/// blocking factor is zero (a fully overlapped, core-bound workload).
pub fn mlp_from_blocking_factor(bf: f64) -> f64 {
    if bf == 0.0 {
        f64::INFINITY
    } else {
        1.0 / bf
    }
}

/// The additional CPI contributed by memory stalls under Eq. 1
/// (`MPI × MP × BF`).
pub fn memory_cpi_component(workload: &WorkloadParams, miss_penalty: Cycles) -> f64 {
    workload.mpi() * miss_penalty.value() * workload.bf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Segment;

    fn structured_data_tab3() -> WorkloadParams {
        WorkloadParams::new("sd", Segment::BigData, 0.89, 0.20, 5.6, 0.32).unwrap()
    }

    #[test]
    fn tab3_all_columns_reproduce() {
        // Tab. 3 of the paper: (MPI, MP cycles, computed CPI).
        let rows = [
            (0.0056, 402.0, 1.33),
            (0.0056, 462.0, 1.39),
            (0.0059, 543.0, 1.52),
            (0.0057, 631.0, 1.60),
            (0.0056, 383.0, 1.31),
            (0.0056, 448.0, 1.38),
            (0.0055, 502.0, 1.43),
            (0.0055, 598.0, 1.53),
        ];
        for (mpi, mp, expected) in rows {
            let got = effective_cpi_raw(0.89, mpi, Cycles(mp), 0.20);
            // The paper's table prints MPI rounded to 4 decimals but computes
            // with unrounded counter values, so allow ±0.02 CPI.
            assert!(
                (got - expected).abs() <= 0.02,
                "MPI={mpi} MP={mp}: got {got}, paper {expected}"
            );
        }
    }

    #[test]
    fn zero_miss_penalty_gives_cpi_cache() {
        let w = structured_data_tab3();
        assert_eq!(effective_cpi(&w, Cycles(0.0)), 0.89);
    }

    #[test]
    fn cpi_monotone_in_miss_penalty() {
        let w = structured_data_tab3();
        let mut last = 0.0;
        for mp in [0.0, 100.0, 200.0, 400.0, 800.0] {
            let c = effective_cpi(&w, Cycles(mp));
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn core_bound_workload_insensitive() {
        let w = WorkloadParams::new("cb", Segment::BigData, 0.93, 0.0, 0.5, 0.47).unwrap();
        assert_eq!(
            effective_cpi(&w, Cycles(0.0)),
            effective_cpi(&w, Cycles(1000.0))
        );
    }

    #[test]
    fn eq1_equals_eq2_with_eq3_bf() {
        // For any (overlap, mlp) pair, Eq. 1 with the Eq. 3 BF must equal
        // Eq. 2 exactly — they are algebraically identical.
        let cpi_cache = 1.2;
        let mpi = 0.004;
        let mp = Cycles(350.0);
        for &(overlap, mlp) in &[(0.0, 2.0), (0.3, 4.0), (0.8, 8.0), (0.5, 1.5)] {
            let bf = blocking_factor(cpi_cache, overlap, mpi, mp, mlp);
            let via_eq1 = effective_cpi_raw(cpi_cache, mpi, mp, bf);
            let via_eq2 = chou_cpi(cpi_cache, overlap, mpi, mp, mlp);
            assert!(
                (via_eq1 - via_eq2).abs() < 1e-12,
                "overlap={overlap} mlp={mlp}"
            );
        }
    }

    #[test]
    fn bf_tends_to_reciprocal_mlp_at_large_mp() {
        let bf_small = blocking_factor(1.0, 0.4, 0.005, Cycles(100.0), 4.0);
        let bf_large = blocking_factor(1.0, 0.4, 0.005, Cycles(100_000.0), 4.0);
        assert!((bf_large - 0.25).abs() < 0.01);
        assert!((bf_large - 0.25).abs() < (bf_small - 0.25).abs());
    }

    #[test]
    fn mlp_bf_roundtrip() {
        assert_eq!(blocking_factor_from_mlp(5.0), 0.2);
        assert_eq!(mlp_from_blocking_factor(0.2), 5.0);
        assert!(mlp_from_blocking_factor(0.0).is_infinite());
    }

    #[test]
    fn memory_component_matches_difference() {
        let w = structured_data_tab3();
        let mp = Cycles(402.0);
        let total = effective_cpi(&w, mp);
        let mem = memory_cpi_component(&w, mp);
        assert!((total - w.cpi_cache - mem).abs() < 1e-12);
    }
}
