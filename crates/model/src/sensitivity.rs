//! Sensitivity sweeps and design-tradeoff analysis (paper Sec. VI.C–D).
//!
//! These functions regenerate the quantitative results of the paper:
//!
//! * [`bandwidth_sweep`] — Fig. 8: CPI increase vs. per-core bandwidth
//!   reduction.
//! * [`bandwidth_derivative`] — Fig. 9: marginal CPI impact per GB/s/core.
//! * [`latency_sweep`] — Fig. 10: CPI vs. compulsory latency.
//! * [`latency_derivative`] — Fig. 11: CPI impact per +10 ns step.
//! * [`equivalence`] — Tab. 7: the bandwidth increase worth the same as a
//!   10 ns latency reduction, and vice versa.

use crate::queueing::QueueingCurve;
use crate::solver::{solve_cpi, SolvedCpi};
use crate::system::SystemConfig;
use crate::units::{GigabytesPerSecond, Nanoseconds};
use crate::workload::WorkloadParams;
use crate::ModelError;

/// One point of a bandwidth or latency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept quantity: per-core bandwidth delta (GB/s, negative =
    /// reduction) for bandwidth sweeps, or added compulsory latency (ns) for
    /// latency sweeps.
    pub delta: f64,
    /// Per-core effective bandwidth (GB/s) at this point.
    pub bandwidth_per_core: f64,
    /// Compulsory latency (ns) at this point.
    pub unloaded_latency_ns: f64,
    /// Converged operating point.
    pub solved: SolvedCpi,
    /// CPI relative to the sweep's baseline (`cpi / cpi_baseline`).
    pub cpi_ratio: f64,
}

impl SweepPoint {
    /// CPI increase over the baseline, as a percentage.
    pub fn cpi_increase_pct(&self) -> f64 {
        (self.cpi_ratio - 1.0) * 100.0
    }
}

/// Fig. 8: sweeps per-core available bandwidth by `deltas` (GB/s per core,
/// typically `0.0` down to `-3.5`) and reports the CPI at each point.
///
/// # Errors
///
/// Propagates [`ModelError`] from the solver or from an infeasible
/// configuration (a delta that drives bandwidth to zero).
pub fn bandwidth_sweep(
    workload: &WorkloadParams,
    baseline: &SystemConfig,
    curve: &QueueingCurve,
    deltas: &[f64],
) -> Result<Vec<SweepPoint>, ModelError> {
    let base = solve_cpi(workload, baseline, curve)?;
    deltas
        .iter()
        .map(|&d| {
            let sys = baseline
                .clone()
                .with_bandwidth_per_core_delta(GigabytesPerSecond(d))?;
            let solved = solve_cpi(workload, &sys, curve)?;
            Ok(SweepPoint {
                delta: d,
                bandwidth_per_core: sys.bandwidth_per_core().value(),
                unloaded_latency_ns: sys.unloaded_latency().value(),
                cpi_ratio: solved.cpi_eff / base.cpi_eff,
                solved,
            })
        })
        .collect()
}

/// The default Fig. 8 x-axis: 0 to −3.5 GB/s/core in 0.5 GB/s steps.
pub fn default_bandwidth_deltas() -> Vec<f64> {
    // `0.0 - x` keeps the first point at +0.0; `-0.5 * 0` would produce the
    // negative zero, which leaks a spurious "-0.0" into tables and wire
    // formats that canonicalize the sign away.
    (0..=7).map(|i| 0.0 - 0.5 * f64::from(i)).collect()
}

/// The default Fig. 10 x-axis: +0 ns to +60 ns in 10 ns steps.
pub fn default_latency_steps() -> Vec<f64> {
    (0..=6).map(|i| 10.0 * i as f64).collect()
}

/// One point of the Fig. 9 / Fig. 11 derivative plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivativePoint {
    /// X position: available per-core bandwidth (Fig. 9) or compulsory
    /// latency in ns (Fig. 11) at the *midpoint* of the pair.
    pub at: f64,
    /// Percent CPI change per unit (per 1 GB/s/core or per 10 ns step).
    pub pct_per_unit: f64,
}

/// Fig. 9: the discrete derivative of a Fig. 8 sweep — percent CPI increase
/// per GB/s/core of bandwidth removed, plotted against the available
/// bandwidth per core. "The performance impact of bandwidth reduction is
/// based on the starting configuration."
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] for sweeps with fewer than two
/// points.
pub fn bandwidth_derivative(sweep: &[SweepPoint]) -> Result<Vec<DerivativePoint>, ModelError> {
    if sweep.len() < 2 {
        return Err(ModelError::InvalidParameter(
            "need at least two sweep points",
        ));
    }
    Ok(sweep
        .windows(2)
        .map(|w| {
            let dbw = (w[0].bandwidth_per_core - w[1].bandwidth_per_core).abs();
            let dcpi_pct = (w[1].cpi_ratio - w[0].cpi_ratio) * 100.0;
            DerivativePoint {
                at: (w[0].bandwidth_per_core + w[1].bandwidth_per_core) / 2.0,
                pct_per_unit: dcpi_pct / dbw,
            }
        })
        .collect())
}

/// Fig. 10: sweeps the compulsory latency by `added_ns` steps over the
/// baseline latency.
///
/// # Errors
///
/// Propagates solver errors.
pub fn latency_sweep(
    workload: &WorkloadParams,
    baseline: &SystemConfig,
    curve: &QueueingCurve,
    added_ns: &[f64],
) -> Result<Vec<SweepPoint>, ModelError> {
    let base = solve_cpi(workload, baseline, curve)?;
    added_ns
        .iter()
        .map(|&d| {
            let sys = baseline
                .clone()
                .with_unloaded_latency(Nanoseconds(baseline.unloaded_latency().value() + d))?;
            let solved = solve_cpi(workload, &sys, curve)?;
            Ok(SweepPoint {
                delta: d,
                bandwidth_per_core: sys.bandwidth_per_core().value(),
                unloaded_latency_ns: sys.unloaded_latency().value(),
                cpi_ratio: solved.cpi_eff / base.cpi_eff,
                solved,
            })
        })
        .collect()
}

/// Fig. 11: percent CPI increase per 10 ns of added compulsory latency,
/// computed between consecutive points of a Fig. 10 sweep.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] for sweeps with fewer than two
/// points or non-uniform steps of zero width.
pub fn latency_derivative(sweep: &[SweepPoint]) -> Result<Vec<DerivativePoint>, ModelError> {
    if sweep.len() < 2 {
        return Err(ModelError::InvalidParameter(
            "need at least two sweep points",
        ));
    }
    sweep
        .windows(2)
        .map(|w| {
            let dns = w[1].unloaded_latency_ns - w[0].unloaded_latency_ns;
            if dns == 0.0 {
                return Err(ModelError::InvalidParameter("zero-width latency step"));
            }
            let dcpi_pct = (w[1].cpi_ratio - w[0].cpi_ratio) * 100.0;
            Ok(DerivativePoint {
                at: (w[0].unloaded_latency_ns + w[1].unloaded_latency_ns) / 2.0,
                pct_per_unit: dcpi_pct / dns * 10.0,
            })
        })
        .collect()
}

/// Tab. 7: the latency ⇄ bandwidth equivalence for one workload class.
#[derive(Debug, Clone, PartialEq)]
pub struct Equivalence {
    /// Performance benefit of 1 GB/s/core (8 GB/s/socket) of bandwidth:
    /// the percent CPI increase suffered when that bandwidth is removed from
    /// the baseline (Tab. 7's "difference of 8 GB/s/socket").
    pub benefit_of_bandwidth_pct: f64,
    /// Performance benefit of 10 ns of compulsory latency: the percent CPI
    /// increase suffered when 10 ns is added to the baseline.
    pub benefit_of_latency_pct: f64,
    /// Total bandwidth increase (GB/s, system-wide) delivering the same
    /// benefit as a 10 ns latency reduction. `None` when no finite bandwidth
    /// increase can match it; `Some(0.0)` when the latency reduction itself
    /// is worthless (the HPC case).
    pub bandwidth_equivalent_of_10ns: Option<f64>,
    /// Latency reduction (ns) delivering the same benefit as +1 GB/s/core.
    /// `None` when no physically meaningful reduction (≤ the full compulsory
    /// latency) can match it — the paper's "no amount of latency reduction
    /// can compensate for bandwidth constraints" HPC observation.
    pub latency_equivalent_of_bandwidth: Option<f64>,
}

/// Computes the Tab. 7 equivalences for a workload class on a baseline.
///
/// The bandwidth side asks: what system-wide bandwidth increase produces the
/// same CPI as reducing the compulsory latency by 10 ns? The latency side
/// asks the mirror question for a +1 GB/s/core bandwidth increase. Both are
/// answered by bisection on the solver, which is monotone in each knob.
///
/// # Errors
///
/// Propagates solver errors.
pub fn equivalence(
    workload: &WorkloadParams,
    baseline: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Equivalence, ModelError> {
    let base = solve_cpi(workload, baseline, curve)?;

    // Tab. 7 quantifies the benefit as "performance compared to our baseline
    // for a difference of 8 GB/s/socket of bandwidth or 10 ns of compulsory
    // latency": the speedup the baseline enjoys over the degraded
    // configuration (removing 1 GB/s/core gives the ~24% HPC number).
    let minus_bw = baseline
        .clone()
        .with_bandwidth_per_core_delta(GigabytesPerSecond(-1.0))?;
    let cpi_minus_bw = solve_cpi(workload, &minus_bw, curve)?.cpi_eff;
    let benefit_bw = (cpi_minus_bw / base.cpi_eff - 1.0) * 100.0;

    // Benefit of 10 ns: baseline vs. baseline + 10 ns.
    let plus_lat = baseline
        .clone()
        .with_unloaded_latency(Nanoseconds(baseline.unloaded_latency().value() + 10.0))?;
    let cpi_plus_lat = solve_cpi(workload, &plus_lat, curve)?.cpi_eff;
    let benefit_lat = (cpi_plus_lat / base.cpi_eff - 1.0) * 100.0;

    // The equivalences are the paper's ratio construction: "improving
    // latency by 10 ns gives the same performance benefit, on average, as
    // X GB/s improvement in bandwidth", where X scales the 8 GB/s/socket
    // marginal benefit by the ratio of the two benefits.
    let bw_step = 8.0 * baseline.sockets() as f64; // GB/s, system-wide

    let bandwidth_equivalent_of_10ns = if benefit_lat <= 1e-9 {
        // A latency change buys nothing (bandwidth-bound HPC): equivalent to
        // zero bandwidth.
        Some(0.0)
    } else if benefit_bw <= 1e-9 {
        // Bandwidth buys nothing, so no finite increase matches 10 ns.
        None
    } else {
        Some(benefit_lat / benefit_bw * bw_step)
    };

    let latency_equivalent_of_bandwidth = if benefit_bw <= 1e-9 {
        Some(0.0)
    } else if benefit_lat <= 1e-9 {
        // Paper Sec. VI.D: "no amount of latency reduction can compensate
        // for bandwidth constraints for our HPC mix".
        None
    } else {
        Some(benefit_bw / benefit_lat * 10.0)
    };

    Ok(Equivalence {
        benefit_of_bandwidth_pct: benefit_bw,
        benefit_of_latency_pct: benefit_lat,
        bandwidth_equivalent_of_10ns,
        latency_equivalent_of_bandwidth,
    })
}

/// A class with its Fig. 8 bandwidth sweep and Fig. 10 latency sweep.
pub type ClassSweeps = (WorkloadParams, Vec<SweepPoint>, Vec<SweepPoint>);

/// Convenience: runs Fig. 8–11 sweeps for the three Tab. 6 classes.
///
/// Returns `(class, bandwidth_sweep, latency_sweep)` triples in the paper's
/// order (enterprise, big data, HPC).
///
/// # Errors
///
/// Propagates solver errors.
pub fn class_sweeps(
    baseline: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<Vec<ClassSweeps>, ModelError> {
    WorkloadParams::all_classes()
        .into_iter()
        .map(|class| {
            let bw = bandwidth_sweep(&class, baseline, curve, &default_bandwidth_deltas())?;
            let lat = latency_sweep(&class, baseline, curve, &default_latency_steps())?;
            Ok((class, bw, lat))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Regime;

    fn setup() -> (SystemConfig, QueueingCurve) {
        (
            SystemConfig::paper_baseline(),
            QueueingCurve::composite_default(),
        )
    }

    #[test]
    fn fig8_hpc_hit_hardest_by_bandwidth_loss() {
        let (sys, curve) = setup();
        let deltas = default_bandwidth_deltas();
        let hpc = bandwidth_sweep(&WorkloadParams::hpc_class(), &sys, &curve, &deltas).unwrap();
        let ent =
            bandwidth_sweep(&WorkloadParams::enterprise_class(), &sys, &curve, &deltas).unwrap();
        let big =
            bandwidth_sweep(&WorkloadParams::big_data_class(), &sys, &curve, &deltas).unwrap();
        // At the largest reduction, HPC suffers most, enterprise least.
        let last = deltas.len() - 1;
        assert!(hpc[last].cpi_increase_pct() > big[last].cpi_increase_pct());
        assert!(big[last].cpi_increase_pct() > ent[last].cpi_increase_pct());
        // Paper: HPC is bandwidth bound at every point — CPI rises steadily.
        for w in hpc.windows(2) {
            assert!(w[1].cpi_ratio > w[0].cpi_ratio);
        }
        // Enterprise sees only small, slowly-growing impact.
        assert!(
            ent[last].cpi_increase_pct() < 10.0,
            "{}",
            ent[last].cpi_increase_pct()
        );
    }

    #[test]
    fn fig8_big_data_has_a_knee() {
        // "Big data can tolerate some bandwidth reduction, but does show
        // significant impact when peak bandwidth is reduced by more than
        // 2.5 GB/s per core."
        let (sys, curve) = setup();
        let sweep = bandwidth_sweep(
            &WorkloadParams::big_data_class(),
            &sys,
            &curve,
            &default_bandwidth_deltas(),
        )
        .unwrap();
        let at = |d: f64| {
            sweep
                .iter()
                .find(|p| (p.delta - d).abs() < 1e-9)
                .expect("delta present")
        };
        assert!(at(-1.0).cpi_increase_pct() < 5.0, "tolerates small cuts");
        assert!(
            at(-3.5).cpi_increase_pct() > 15.0,
            "significant impact past the knee: {}",
            at(-3.5).cpi_increase_pct()
        );
        assert_eq!(at(-3.5).solved.regime, Regime::BandwidthBound);
    }

    #[test]
    fn fig9_derivative_grows_as_bandwidth_shrinks() {
        let (sys, curve) = setup();
        let sweep = bandwidth_sweep(
            &WorkloadParams::hpc_class(),
            &sys,
            &curve,
            &default_bandwidth_deltas(),
        )
        .unwrap();
        let deriv = bandwidth_derivative(&sweep).unwrap();
        assert_eq!(deriv.len(), sweep.len() - 1);
        // Marginal impact is larger at lower available bandwidth.
        assert!(deriv.last().unwrap().pct_per_unit > deriv.first().unwrap().pct_per_unit);
        assert!(bandwidth_derivative(&sweep[..1]).is_err());
    }

    #[test]
    fn fig10_latency_ordering_matches_paper() {
        let (sys, curve) = setup();
        let steps = default_latency_steps();
        let ent = latency_sweep(&WorkloadParams::enterprise_class(), &sys, &curve, &steps).unwrap();
        let big = latency_sweep(&WorkloadParams::big_data_class(), &sys, &curve, &steps).unwrap();
        let hpc = latency_sweep(&WorkloadParams::hpc_class(), &sys, &curve, &steps).unwrap();
        let last = steps.len() - 1;
        // Enterprise most latency sensitive, then big data, HPC flat.
        assert!(ent[last].cpi_increase_pct() > big[last].cpi_increase_pct());
        assert!(big[last].cpi_increase_pct() > 5.0);
        assert!(
            hpc[last].cpi_increase_pct().abs() < 1e-6,
            "HPC shows no latency sensitivity"
        );
    }

    #[test]
    fn fig11_per_10ns_magnitudes_match_paper() {
        // Paper: ~3.5%/10 ns enterprise, ~2.5%/10 ns big data, 0 for HPC.
        let (sys, curve) = setup();
        let steps = default_latency_steps();
        let ent = latency_derivative(
            &latency_sweep(&WorkloadParams::enterprise_class(), &sys, &curve, &steps).unwrap(),
        )
        .unwrap();
        let big = latency_derivative(
            &latency_sweep(&WorkloadParams::big_data_class(), &sys, &curve, &steps).unwrap(),
        )
        .unwrap();
        let ent_avg = ent.iter().map(|d| d.pct_per_unit).sum::<f64>() / ent.len() as f64;
        let big_avg = big.iter().map(|d| d.pct_per_unit).sum::<f64>() / big.len() as f64;
        assert!((ent_avg - 3.5).abs() < 0.7, "enterprise {ent_avg}%/10ns");
        assert!((big_avg - 2.5).abs() < 0.7, "big data {big_avg}%/10ns");
        // Near-constant steps ("the impact is nearly constant").
        let spread = ent
            .iter()
            .map(|d| (d.pct_per_unit - ent_avg).abs())
            .fold(0.0, f64::max);
        assert!(
            spread < 0.5,
            "Fig. 11 steps nearly constant, spread {spread}"
        );
    }

    #[test]
    fn tab7_equivalences_match_paper_shape() {
        let (sys, curve) = setup();
        let ent = equivalence(&WorkloadParams::enterprise_class(), &sys, &curve).unwrap();
        let big = equivalence(&WorkloadParams::big_data_class(), &sys, &curve).unwrap();
        let hpc = equivalence(&WorkloadParams::hpc_class(), &sys, &curve).unwrap();

        // Enterprise / big data: under ~1% from bandwidth, ~3% from latency.
        assert!(ent.benefit_of_bandwidth_pct < 1.5);
        assert!(big.benefit_of_bandwidth_pct < 3.0);
        assert!((ent.benefit_of_latency_pct - 3.5).abs() < 1.0);
        assert!((big.benefit_of_latency_pct - 2.5).abs() < 1.0);
        // HPC: ~24% from bandwidth, nothing from latency.
        assert!(
            (hpc.benefit_of_bandwidth_pct - 24.0).abs() < 5.0,
            "HPC bandwidth benefit {}",
            hpc.benefit_of_bandwidth_pct
        );
        assert!(hpc.benefit_of_latency_pct.abs() < 1e-6);

        // Equivalences: 10 ns is worth tens of GB/s for the latency-bound
        // classes (paper: 39.7 and 27.1 GB/s), nothing for HPC.
        let ent_bw = ent
            .bandwidth_equivalent_of_10ns
            .expect("finite for enterprise");
        let big_bw = big
            .bandwidth_equivalent_of_10ns
            .expect("finite for big data");
        assert!(ent_bw > big_bw, "enterprise 10 ns worth more bandwidth");
        assert!((15.0..90.0).contains(&ent_bw), "enterprise {ent_bw} GB/s");
        assert!((10.0..60.0).contains(&big_bw), "big data {big_bw} GB/s");
        assert_eq!(hpc.bandwidth_equivalent_of_10ns, Some(0.0));

        // +1 GB/s/core is worth a few ns for enterprise/big data
        // (paper: 2.0 ns and 2.9 ns), unmatched by latency for HPC.
        let ent_ns = ent.latency_equivalent_of_bandwidth.expect("finite");
        let big_ns = big.latency_equivalent_of_bandwidth.expect("finite");
        assert!((0.5..6.0).contains(&ent_ns), "enterprise {ent_ns} ns");
        assert!((0.5..8.0).contains(&big_ns), "big data {big_ns} ns");
        assert!(
            big_ns > ent_ns,
            "big data values bandwidth more in latency terms"
        );
        assert_eq!(hpc.latency_equivalent_of_bandwidth, None);
    }

    #[test]
    fn class_sweeps_cover_three_classes() {
        let (sys, curve) = setup();
        let all = class_sweeps(&sys, &curve).unwrap();
        assert_eq!(all.len(), 3);
        for (_, bw, lat) in &all {
            assert_eq!(bw.len(), default_bandwidth_deltas().len());
            assert_eq!(lat.len(), default_latency_steps().len());
        }
    }
}
