//! Phase-weighted modeling (paper Sec. IV.D).
//!
//! "We can apply our model to multiple program phases independently …
//! provided we are able to apply a weight to each phase based on the
//! relative number of instructions contained in that phase." A
//! [`PhasedWorkload`] is a set of `(WorkloadParams, weight)` pairs; solving
//! it solves each phase at its own operating point and combines the CPIs by
//! instruction weight.

use crate::queueing::QueueingCurve;
use crate::solver::{solve_cpi, SolvedCpi};
use crate::system::SystemConfig;
use crate::workload::WorkloadParams;
use crate::ModelError;

/// A workload composed of weighted phases.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedWorkload {
    /// Display name.
    pub name: String,
    phases: Vec<(WorkloadParams, f64)>,
}

impl PhasedWorkload {
    /// Builds a phased workload from `(params, instruction_weight)` pairs.
    /// Weights are normalized internally; they must be positive.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for an empty phase list or
    /// non-positive/non-finite weights.
    pub fn new(
        name: impl Into<String>,
        phases: Vec<(WorkloadParams, f64)>,
    ) -> Result<Self, ModelError> {
        if phases.is_empty() {
            return Err(ModelError::InvalidParameter("at least one phase required"));
        }
        if phases.iter().any(|(_, w)| !(w.is_finite() && *w > 0.0)) {
            return Err(ModelError::InvalidParameter(
                "phase weights must be positive",
            ));
        }
        Ok(PhasedWorkload {
            name: name.into(),
            phases,
        })
    }

    /// The phases and their (unnormalized) weights.
    pub fn phases(&self) -> &[(WorkloadParams, f64)] {
        &self.phases
    }

    /// Instruction-weighted mean of a per-phase quantity.
    fn weighted<F: Fn(&WorkloadParams) -> f64>(&self, f: F) -> f64 {
        let total: f64 = self.phases.iter().map(|(_, w)| w).sum();
        self.phases.iter().map(|(p, w)| f(p) * w).sum::<f64>() / total
    }

    /// The *aggregate* single-phase approximation: instruction-weighted
    /// means of every parameter. Used to quantify the error of ignoring
    /// phase structure.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation.
    pub fn collapsed(&self) -> Result<WorkloadParams, ModelError> {
        let seg = self.phases[0].0.segment;
        WorkloadParams::new(
            format!("{} (collapsed)", self.name),
            seg,
            self.weighted(|p| p.cpi_cache),
            self.weighted(|p| p.bf),
            self.weighted(|p| p.mpki),
            self.weighted(|p| p.wbr),
        )
    }
}

/// Result of solving a phased workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedSolved {
    /// Instruction-weighted effective CPI across phases.
    pub cpi_eff: f64,
    /// Per-phase operating points, in phase order.
    pub phases: Vec<SolvedCpi>,
    /// CPI of the collapsed single-phase approximation, for comparison.
    pub collapsed_cpi: f64,
}

impl PhasedSolved {
    /// Relative error of collapsing phases into one:
    /// `(collapsed − phased) / phased`.
    pub fn collapse_error(&self) -> f64 {
        (self.collapsed_cpi - self.cpi_eff) / self.cpi_eff
    }
}

/// Solves each phase at its own operating point and combines by weight.
///
/// # Errors
///
/// Propagates solver failures.
pub fn solve_phased(
    workload: &PhasedWorkload,
    system: &SystemConfig,
    curve: &QueueingCurve,
) -> Result<PhasedSolved, ModelError> {
    let total: f64 = workload.phases.iter().map(|(_, w)| w).sum();
    let mut phases = Vec::with_capacity(workload.phases.len());
    let mut cpi = 0.0;
    for (params, weight) in &workload.phases {
        let solved = solve_cpi(params, system, curve)?;
        cpi += solved.cpi_eff * weight / total;
        phases.push(solved);
    }
    let collapsed_cpi = solve_cpi(&workload.collapsed()?, system, curve)?.cpi_eff;
    Ok(PhasedSolved {
        cpi_eff: cpi,
        phases,
        collapsed_cpi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Segment;

    fn two_phase() -> PhasedWorkload {
        // A Spark-like job: memory-heavy shuffle phase + compute-heavy map.
        let shuffle =
            WorkloadParams::new("shuffle", Segment::BigData, 0.85, 0.30, 9.0, 0.8).unwrap();
        let map = WorkloadParams::new("map", Segment::BigData, 1.0, 0.10, 1.5, 0.3).unwrap();
        PhasedWorkload::new("spark job", vec![(shuffle, 1.0), (map, 3.0)]).unwrap()
    }

    #[test]
    fn weighted_cpi_between_phase_extremes() {
        let sys = SystemConfig::paper_baseline();
        let curve = QueueingCurve::composite_default();
        let solved = solve_phased(&two_phase(), &sys, &curve).unwrap();
        let cpis: Vec<f64> = solved.phases.iter().map(|p| p.cpi_eff).collect();
        let lo = cpis.iter().cloned().fold(f64::MAX, f64::min);
        let hi = cpis.iter().cloned().fold(f64::MIN, f64::max);
        assert!(solved.cpi_eff >= lo && solved.cpi_eff <= hi);
    }

    #[test]
    fn single_phase_equals_flat_solver() {
        let sys = SystemConfig::paper_baseline();
        let curve = QueueingCurve::composite_default();
        let params = WorkloadParams::big_data_class();
        let phased = PhasedWorkload::new("one", vec![(params.clone(), 5.0)]).unwrap();
        let a = solve_phased(&phased, &sys, &curve).unwrap().cpi_eff;
        let b = solve_cpi(&params, &sys, &curve).unwrap().cpi_eff;
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn weights_matter() {
        let sys = SystemConfig::paper_baseline();
        let curve = QueueingCurve::composite_default();
        let w = two_phase();
        let heavy_shuffle = PhasedWorkload::new(
            "job",
            vec![
                (w.phases()[0].0.clone(), 3.0),
                (w.phases()[1].0.clone(), 1.0),
            ],
        )
        .unwrap();
        let balanced = solve_phased(&w, &sys, &curve).unwrap().cpi_eff;
        let shuffled = solve_phased(&heavy_shuffle, &sys, &curve).unwrap().cpi_eff;
        // Shuffle has higher CPI under memory pressure, so weighting it
        // more must raise the aggregate.
        assert!(shuffled > balanced);
    }

    #[test]
    fn collapse_error_reported() {
        let sys = SystemConfig::paper_baseline();
        let curve = QueueingCurve::composite_default();
        let solved = solve_phased(&two_phase(), &sys, &curve).unwrap();
        // The collapsed approximation is close but not exact (the model is
        // nonlinear through the queueing coupling).
        assert!(solved.collapse_error().abs() < 0.10);
    }

    #[test]
    fn validation() {
        assert!(PhasedWorkload::new("x", vec![]).is_err());
        let p = WorkloadParams::big_data_class();
        assert!(PhasedWorkload::new("x", vec![(p.clone(), 0.0)]).is_err());
        assert!(PhasedWorkload::new("x", vec![(p, f64::NAN)]).is_err());
    }
}
